#!/usr/bin/env python
"""Checkpoint smoke for CI: SIGKILL mid-run, resume, byte-identical.

Two crash-resume ladders over the golden corpus:

* ``repro simulate --checkpoint-every`` on ``nested.c`` is SIGKILLed
  once the first snapshot lands on disk; a ``--resume-from latest``
  re-run must print the same simulation lines as an uninterrupted run
  (modulo the snapshot bookkeeping lines themselves).
* ``repro batch --jobs 4 --resume`` over the whole corpus is SIGKILLed
  once the journal holds at least one finished entry; the resumed run
  must exit 0, report journal-resumed programs, and write a manifest
  **byte-identical** (``cmp``-equal) to an uninterrupted run's.

On any failure the working directory (journals, snapshots, manifests)
is copied to ``checkpoint-smoke-artifacts/`` for the CI artifact
upload, then the script exits non-zero.
"""

import glob
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

CORPUS = os.path.join("tests", "golden", "corpus")
ARTIFACTS = "checkpoint-smoke-artifacts"


def fail(tmp, message):
    if os.path.isdir(ARTIFACTS):
        shutil.rmtree(ARTIFACTS)
    shutil.copytree(tmp, ARTIFACTS)
    sys.exit(f"FAIL: {message}  (state copied to {ARTIFACTS}/)")


def run(cmd, check=True):
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    if check and proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
    return proc


def kill_when(process, condition, timeout_s=60.0):
    """SIGKILL ``process`` as soon as ``condition()`` holds; returns
    True if the kill landed before the process finished on its own."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if process.poll() is not None:
            return False
        if condition():
            process.kill()
            process.wait()
            return True
        time.sleep(0.01)
    process.kill()
    process.wait()
    return False


def sim_lines(stdout):
    """The simulation-outcome lines, dropping snapshot bookkeeping."""
    return [
        line
        for line in stdout.splitlines()
        if not line.startswith(("snapshots saved", "resumed from snapshot"))
    ]


def simulate_smoke(tmp):
    program = os.path.join(CORPUS, "nested.c")
    ckpt = os.path.join(tmp, "sim-ckpt")
    base = [
        sys.executable, "-m", "repro", "simulate", program,
        "--config", "best", "--args", "96",
    ]
    clean = sim_lines(run(base).stdout)

    snap_cmd = base + [
        "--checkpoint-every", "200", "--checkpoint-dir", ckpt,
    ]
    process = subprocess.Popen(
        snap_cmd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    killed = kill_when(
        process,
        lambda: bool(glob.glob(os.path.join(ckpt, "v1", "*", "*", "*.json"))),
    )
    if not killed:
        # The run finished before a snapshot landed; snapshots are still
        # on disk, so the resume leg below remains meaningful.
        print("checkpoint smoke: simulate finished before SIGKILL landed")

    resumed = run(snap_cmd + ["--resume-from", "latest"])
    if "resumed from snapshot" not in resumed.stdout:
        fail(tmp, "resumed simulate did not report a snapshot restore")
    if sim_lines(resumed.stdout) != clean:
        fail(tmp, "resumed simulate output differs from uninterrupted run")
    print(
        f"checkpoint smoke OK: simulate SIGKILL(killed={killed}) + resume "
        f"reproduced {len(clean)} output lines"
    )


def batch_smoke(tmp):
    journal_dir = os.path.join(tmp, "journal")
    reference = os.path.join(tmp, "manifest-reference.json")
    resumed_path = os.path.join(tmp, "manifest-resumed.json")
    base = [
        sys.executable, "-m", "repro", "batch", CORPUS,
        "--jobs", "4", "--args", "96", "--no-cache",
    ]
    run(base + ["--manifest", reference])

    resume_cmd = base + [
        "--resume", "--journal-dir", journal_dir,
        "--manifest", resumed_path,
    ]
    killed = False
    for _ in range(5):
        process = subprocess.Popen(
            resume_cmd, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        journals = lambda: glob.glob(  # noqa: E731
            os.path.join(journal_dir, "v1", "*.journal")
        )
        killed = kill_when(
            process,
            lambda: any(
                os.path.getsize(path) > 0 for path in journals()
            ),
        )
        if killed:
            break
        # Finished before the kill landed: wipe and try a fresh journal.
        for path in journals():
            os.remove(path)
        if os.path.exists(resumed_path):
            os.remove(resumed_path)
    if not killed:
        print("checkpoint smoke: batch kept finishing before SIGKILL")

    proc = run(resume_cmd)
    if killed and "resumed from journal" not in proc.stdout:
        fail(tmp, "resumed batch did not report journal-resumed programs")
    if run(["cmp", reference, resumed_path], check=False).returncode != 0:
        fail(
            tmp,
            "resumed batch manifest is not byte-identical to the "
            "uninterrupted run's",
        )
    print(
        f"checkpoint smoke OK: batch SIGKILL(killed={killed}) + --resume, "
        f"manifest byte-identical"
    )


def main():
    with tempfile.TemporaryDirectory() as tmp:
        simulate_smoke(tmp)
        batch_smoke(tmp)
    print("checkpoint smoke passed")


if __name__ == "__main__":
    main()
