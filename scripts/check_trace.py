#!/usr/bin/env python
"""Validate a Chrome trace-event file produced by ``--trace-out``.

Usage::

    python scripts/check_trace.py trace.json [--require-phase NAME ...]

Checks (exit 0 = valid, 1 = invalid, 2 = usage):

* the file parses as JSON and has a ``traceEvents`` array;
* every record carries the required trace-event keys with sane types
  (non-negative timestamps, complete events with non-negative ``dur``);
* records are sorted by timestamp;
* same-thread complete events nest properly (no partial overlap);
* every required pipeline phase appears as a complete event.  By
  default the phases ``compile_spt`` always emits are required; pass
  ``--require-phase`` to override the list.

Used by CI as a smoke test on a benchsuite compilation, and handy
locally before loading a trace into a viewer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

#: Phases compile_spt emits on every run (svp/region_splits/analyze_loop
#: are config- and program-dependent, so they are not required).
DEFAULT_PHASES = ["unroll", "ssa", "profile", "pass1", "selection", "transform"]

REQUIRED_KEYS = {"name", "ph", "ts", "pid", "tid"}


def check_trace(path: str, require_phases: List[str]) -> List[str]:
    """All problems found with the trace at ``path`` (empty = valid)."""
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]

    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["no traceEvents array"]
    if not events:
        return ["traceEvents is empty"]

    last_ts = None
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        missing = REQUIRED_KEYS - set(event)
        if missing:
            problems.append(f"{where}: missing keys {sorted(missing)}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"{where}: timestamps not sorted ({ts} < {last_ts})")
        last_ts = ts
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event with bad dur {dur!r}")

    # Same-thread complete events must strictly nest.
    complete = [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]
    spans = sorted(
        (e for e in complete if isinstance(e.get("dur"), (int, float))),
        key=lambda e: (e["ts"], -e["dur"]),
    )
    stack: List[dict] = []
    for event in spans:
        start, end = event["ts"], event["ts"] + event["dur"]
        while stack and stack[-1]["ts"] + stack[-1]["dur"] <= start:
            stack.pop()
        if stack:
            outer_end = stack[-1]["ts"] + stack[-1]["dur"]
            if end > outer_end + 1e-6:
                problems.append(
                    f"span {event['name']!r} [{start}, {end}] partially "
                    f"overlaps {stack[-1]['name']!r} (ends {outer_end})"
                )
                continue
        stack.append(event)

    names = {e["name"] for e in complete}
    for phase in require_phases:
        if phase not in names:
            problems.append(f"required phase {phase!r} has no complete event")
    return problems


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument(
        "--require-phase",
        action="append",
        default=None,
        metavar="NAME",
        help="phase that must appear as a complete event "
             "(repeatable; default: the always-on pipeline phases)",
    )
    args = parser.parse_args(argv)
    phases = args.require_phase
    if phases is None:
        phases = DEFAULT_PHASES

    problems = check_trace(args.trace, phases)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    with open(args.trace) as handle:
        count = len(json.load(handle)["traceEvents"])
    print(f"OK: {args.trace} valid ({count} events, "
          f"phases: {', '.join(phases)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
