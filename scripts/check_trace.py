#!/usr/bin/env python
"""Validate observability output: Chrome traces and JSONL span logs.

Usage::

    python scripts/check_trace.py trace.json [--require-phase NAME ...]
    python scripts/check_trace.py run.jsonl   # --log-out span log

``*.jsonl`` inputs (or ``--format jsonl``) are validated as structured
``--log-out`` logs; anything else as a ``--trace-out`` Chrome
trace-event document.

Chrome trace checks (exit 0 = valid, 1 = invalid, 2 = usage):

* the file parses as JSON and has a ``traceEvents`` array;
* every record carries the required trace-event keys with sane types
  (non-negative timestamps, complete events with non-negative ``dur``);
* records are sorted by timestamp;
* same-thread complete events nest properly (no partial overlap);
* every required pipeline phase appears as a complete event.  By
  default the phases ``compile_spt`` always emits are required; pass
  ``--require-phase`` to override the list.

JSONL log checks:

* every line parses as a JSON object with a known ``type``;
* span records carry monotonic, non-negative ``start <= end``
  timestamps and close in monotonic end order;
* the span parent/child links form a forest: every non-null ``parent``
  names a known span id, ``depth`` is the parent chain length, and
  each child's ``[start, end]`` interval lies inside its parent's.

Used by CI as a smoke test on a benchsuite compilation, and handy
locally before loading a trace into a viewer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

#: Phases compile_spt emits on every run (svp/region_splits/analyze_loop
#: are config- and program-dependent, so they are not required).
DEFAULT_PHASES = ["unroll", "ssa", "profile", "pass1", "selection", "transform"]

REQUIRED_KEYS = {"name", "ph", "ts", "pid", "tid"}


def check_trace(path: str, require_phases: List[str]) -> List[str]:
    """All problems found with the trace at ``path`` (empty = valid)."""
    problems: List[str] = []
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"cannot load {path}: {exc}"]

    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["no traceEvents array"]
    if not events:
        return ["traceEvents is empty"]

    last_ts = None
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        missing = REQUIRED_KEYS - set(event)
        if missing:
            problems.append(f"{where}: missing keys {sorted(missing)}")
            continue
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"{where}: timestamps not sorted ({ts} < {last_ts})")
        last_ts = ts
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event with bad dur {dur!r}")

    # Same-thread complete events must strictly nest.
    complete = [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]
    spans = sorted(
        (e for e in complete if isinstance(e.get("dur"), (int, float))),
        key=lambda e: (e["ts"], -e["dur"]),
    )
    stack: List[dict] = []
    for event in spans:
        start, end = event["ts"], event["ts"] + event["dur"]
        while stack and stack[-1]["ts"] + stack[-1]["dur"] <= start:
            stack.pop()
        if stack:
            outer_end = stack[-1]["ts"] + stack[-1]["dur"]
            if end > outer_end + 1e-6:
                problems.append(
                    f"span {event['name']!r} [{start}, {end}] partially "
                    f"overlaps {stack[-1]['name']!r} (ends {outer_end})"
                )
                continue
        stack.append(event)

    names = {e["name"] for e in complete}
    for phase in require_phases:
        if phase not in names:
            problems.append(f"required phase {phase!r} has no complete event")
    return problems


KNOWN_JSONL_TYPES = {"span", "event", "counter", "gauge", "histogram"}


def check_jsonl(path: str) -> List[str]:
    """All problems found with the ``--log-out`` JSONL log at ``path``
    (empty = valid): well-formed lines, monotonic timestamps, and a
    consistent span parent/child forest."""
    problems: List[str] = []
    spans: List[dict] = []
    try:
        with open(path) as handle:
            lines = handle.readlines()
    except OSError as exc:
        return [f"cannot load {path}: {exc}"]
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            problems.append(f"line {number}: blank line")
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            problems.append(f"line {number}: not JSON ({exc})")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {number}: not an object")
            continue
        kind = record.get("type")
        if kind not in KNOWN_JSONL_TYPES:
            problems.append(f"line {number}: unknown record type {kind!r}")
            continue
        if kind != "span":
            continue
        where = f"line {number}: span {record.get('name')!r}"
        start = record.get("start")
        duration = record.get("duration")
        if not isinstance(start, (int, float)) or start < 0:
            problems.append(f"{where}: bad start {start!r}")
            continue
        if not isinstance(duration, (int, float)) or duration < 0:
            problems.append(f"{where}: bad duration {duration!r}")
            continue
        if not isinstance(record.get("span_id"), int):
            problems.append(f"{where}: bad span_id {record.get('span_id')!r}")
            continue
        spans.append(record)

    if not spans:
        problems.append("no span records")
        return problems

    # Spans are written as they close: end timestamps must be monotonic.
    last_end = None
    for record in spans:
        end = record["start"] + record["duration"]
        if last_end is not None and end < last_end - 1e-9:
            problems.append(
                f"span {record['name']!r} closed out of order "
                f"(end {end:.9f} < previous {last_end:.9f})"
            )
        last_end = end

    # Parent/child links must form a forest with consistent depths and
    # containment: a child opens and closes inside its parent.
    by_id = {record["span_id"]: record for record in spans}
    if len(by_id) != len(spans):
        problems.append("duplicate span_id values")
    for record in spans:
        parent_id = record.get("parent")
        name = f"span {record['name']!r} (id {record['span_id']})"
        if parent_id is None:
            if record.get("depth") != 0:
                problems.append(
                    f"{name}: root span with depth {record.get('depth')!r}"
                )
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            problems.append(f"{name}: unknown parent id {parent_id!r}")
            continue
        if record.get("depth") != parent.get("depth", 0) + 1:
            problems.append(
                f"{name}: depth {record.get('depth')!r} != parent depth "
                f"{parent.get('depth')!r} + 1"
            )
        child_start = record["start"]
        child_end = child_start + record["duration"]
        parent_start = parent["start"]
        parent_end = parent_start + parent["duration"]
        if child_start < parent_start - 1e-9 or child_end > parent_end + 1e-9:
            problems.append(
                f"{name}: interval [{child_start:.9f}, {child_end:.9f}] "
                f"escapes parent {parent['name']!r} "
                f"[{parent_start:.9f}, {parent_end:.9f}]"
            )
    return problems


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trace", help="Chrome trace-event JSON file or --log-out JSONL log"
    )
    parser.add_argument(
        "--require-phase",
        action="append",
        default=None,
        metavar="NAME",
        help="phase that must appear as a complete event "
             "(repeatable; default: the always-on pipeline phases)",
    )
    parser.add_argument(
        "--format",
        choices=["auto", "trace", "jsonl"],
        default="auto",
        help="input format (auto: by file extension)",
    )
    args = parser.parse_args(argv)
    phases = args.require_phase
    if phases is None:
        phases = DEFAULT_PHASES
    fmt = args.format
    if fmt == "auto":
        fmt = "jsonl" if args.trace.endswith(".jsonl") else "trace"

    if fmt == "jsonl":
        problems = check_jsonl(args.trace)
    else:
        problems = check_trace(args.trace, phases)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    if fmt == "jsonl":
        with open(args.trace) as handle:
            count = sum(1 for line in handle if line.strip())
        print(f"OK: {args.trace} valid JSONL log ({count} records, "
              f"span tree consistent)")
    else:
        with open(args.trace) as handle:
            count = len(json.load(handle)["traceEvents"])
        print(f"OK: {args.trace} valid ({count} events, "
              f"phases: {', '.join(phases)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
