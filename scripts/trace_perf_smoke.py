#!/usr/bin/env python
"""Trace-interp smoke for CI: traces must be invisible and not slow.

Two independent checks:

1. **Manifest identity.** Compiles the golden corpus through
   ``run_batch`` twice -- once with hot-trace compilation and the
   vectorized timing engine (the default), once with both disabled --
   and asserts both runs succeed with **byte-identical** manifests:
   the fast paths cannot change any analysis result, and the flags
   are excluded from the config fingerprint.

2. **Speedup floor.** Times the sequential timing measurement (the
   path the fig14-fig19 replication runs) on one benchsuite workload:
   block-compiled interpretation with a per-op ``TimingTracer``
   versus trace-compiled execution with a ``VectorTimingEngine``, and
   asserts the traced side is at least ``MIN_SPEEDUP`` faster with
   bitwise-identical ticks.  The floor is deliberately generous --
   well under the ~5x aggregate recorded in
   ``benchmarks/results/BENCH_interp.json`` -- because shared CI
   runners cannot measure benchmark-grade ratios reliably; it guards
   against the trace layer degenerating into pure overhead.

Rounds are interleaved and best-of-N per side, so load drift on the
runner hits both configurations equally.
"""

import sys
import time

from repro.batch.driver import run_batch
from repro.batch.manifest import manifest_to_bytes

CORPUS = "tests/golden/corpus"
BATCH_ARGS = (96,)
ROUNDS = 3
MIN_SPEEDUP = 1.5


def check_manifest_identity() -> bool:
    manifests = {}
    for trace_on in (True, False):
        overrides = None if trace_on else {
            "trace_interp": False,
            "vector_timing": False,
        }
        result = run_batch(
            [CORPUS], args=BATCH_ARGS, jobs=1, use_cache=False,
            config_overrides=overrides,
        )
        if not result.ok:
            print(f"FAIL: batch failed (trace_on={trace_on})")
            return False
        manifests[trace_on] = manifest_to_bytes(result.manifest)
    if manifests[True] != manifests[False]:
        print("FAIL: manifests differ between trace_interp on/off")
        return False
    print("manifest identity OK: trace_interp on/off are byte-identical")
    return True


def check_timing_speedup() -> bool:
    from repro.benchsuite import SUITE
    from repro.benchsuite.runner import _build_clean_module
    from repro.machine.timing import TimingModel, TimingTracer
    from repro.machine.vector_timing import VectorTimingEngine
    from repro.profiling.compiled import CompiledMachine

    bench = next(b for b in SUITE if b.name == "bzip2")
    module = _build_clean_module(bench)
    n = bench.eval_n

    def run_base():
        tracer = TimingTracer(TimingModel())
        machine = CompiledMachine(module)
        machine.add_tracer(tracer)
        machine.run("main", [n])
        return tracer

    def run_trace():
        engine = VectorTimingEngine(TimingModel())
        machine = CompiledMachine(module, trace=True, timing_engine=engine)
        machine.run("main", [n])
        engine.flush()
        return engine

    base = run_base()
    trace = run_trace()
    if trace.ticks != base.ticks or trace.instructions != base.instructions:
        print("FAIL: trace-engine accounting diverges from per-op tracer")
        return False

    base_s = trace_s = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run_base()
        base_s = min(base_s, time.perf_counter() - start)
        start = time.perf_counter()
        run_trace()
        trace_s = min(trace_s, time.perf_counter() - start)
    speedup = base_s / trace_s
    print(
        f"timing speedup: base={base_s:.3f}s traced={trace_s:.3f}s "
        f"speedup={speedup:.2f}x (floor {MIN_SPEEDUP}x)"
    )
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x below floor {MIN_SPEEDUP}x")
        return False
    return True


def main() -> int:
    ok = check_manifest_identity()
    ok = check_timing_speedup() and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
