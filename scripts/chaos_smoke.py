#!/usr/bin/env python
"""Chaos smoke for CI: the compiler must never abort under injected faults.

Runs the golden corpus through ``repro batch --jobs 4`` (and one
``repro compile``) under a ``$REPRO_FAULT`` matrix -- raise and hang
faults in the search, transform and profiling phases -- and asserts:

* every invocation exits 0 (faults are contained, never fatal);
* the manifest has an entry for every corpus program;
* the stats document reports ``degradations > 0`` (each injected
  fault became a typed DegradationRecord, not silence).

Hang faults run with a phase deadline armed, so the watchdog -- not
the injector's give-up cap -- is what breaks them.

A second matrix targets the checkpoint IO sites (``checkpoint.save``,
``checkpoint.restore``; raise, hang and torn modes): ``repro compile
--checkpoint-phases`` and ``repro simulate --checkpoint-every`` must
exit 0 under every fault, and the faulted simulate must print the same
result line as a clean run -- a checkpoint that cannot be saved or
read degrades to recompute/cold start, never to a wrong answer.
"""

import json
import os
import subprocess
import sys
import tempfile

CORPUS = os.path.join("tests", "golden", "corpus")

#: (fault spec, extra CLI flags) -- raise and hang in each phase the
#: acceptance matrix names.
MATRIX = [
    ("search:raise", []),
    ("transform:raise", []),
    ("profile:raise", []),
    ("search:hang", ["--phase-deadline-ms", "250"]),
    ("transform:hang", ["--phase-deadline-ms", "250"]),
    ("profile:hang", ["--phase-deadline-ms", "250"]),
]


#: Checkpoint IO faults: every one must be contained (exit 0) and the
#: simulated result must match the clean run.  Hangs at checkpoint
#: sites have no phase watchdog, so the injector's give-up cap (kept
#: short here) is what breaks them.
CHECKPOINT_MATRIX = [
    ("checkpoint.save:raise", "10"),
    ("checkpoint.save:torn", "10"),
    ("checkpoint.save:hang", "0.2"),
    ("checkpoint.restore:raise", "10"),
]


def run(cmd, fault, hang_s="10", capture=False):
    env = dict(os.environ)
    if fault is not None:
        env["REPRO_FAULT"] = fault
    # Backstop only: the armed phase deadline should break every hang
    # long before the injector gives up on its own.
    env["REPRO_FAULT_HANG_S"] = hang_s
    proc = subprocess.run(
        cmd, env=env, timeout=600, capture_output=capture, text=capture
    )
    if proc.returncode != 0:
        sys.exit(
            f"FAIL [{fault}]: {' '.join(cmd)} exited {proc.returncode}"
        )
    return proc.stdout if capture else None


def result_line(stdout, label):
    for line in stdout.splitlines():
        if line.startswith("result"):
            return line
    sys.exit(f"FAIL [{label}]: simulate printed no result line")


def checkpoint_chaos():
    """Checkpoint IO faults: contained, and never a wrong answer."""
    # nested.c selects SPT loops under the best config, so the
    # simulate runs exercise real snapshot traffic.
    program = os.path.join(CORPUS, "nested.c")
    with tempfile.TemporaryDirectory() as tmp:
        clean = result_line(
            run(
                [
                    sys.executable, "-m", "repro", "simulate", program,
                    "--config", "best", "--args", "96",
                ],
                None, capture=True,
            ),
            "clean",
        )
        for fault, hang_s in CHECKPOINT_MATRIX:
            ckpt = os.path.join(tmp, fault.replace(":", "-"))
            compile_cmd = [
                sys.executable, "-m", "repro", "compile", program,
                "--config", "best", "--args", "96", "--checkpoint-phases",
                "--checkpoint-dir", ckpt,
            ]
            run(compile_cmd, fault, hang_s=hang_s)  # cold: saves faulted
            run(compile_cmd, fault, hang_s=hang_s)  # warm: restores faulted
            sim = result_line(
                run(
                    [
                        sys.executable, "-m", "repro", "simulate",
                        program, "--config", "best", "--args", "96",
                        "--checkpoint-every", "500",
                        "--checkpoint-dir", ckpt,
                    ],
                    fault, hang_s=hang_s, capture=True,
                ),
                fault,
            )
            if sim != clean:
                sys.exit(
                    f"FAIL [{fault}]: faulted simulate result {sim!r} "
                    f"!= clean {clean!r}"
                )
            resumed = result_line(
                run(
                    [
                        sys.executable, "-m", "repro", "simulate",
                        program, "--config", "best", "--args", "96",
                        "--checkpoint-every", "500",
                        "--resume-from", "latest",
                        "--checkpoint-dir", ckpt,
                    ],
                    fault, hang_s=hang_s, capture=True,
                ),
                fault,
            )
            if resumed != clean:
                sys.exit(
                    f"FAIL [{fault}]: faulted resume result {resumed!r} "
                    f"!= clean {clean!r}"
                )
            print(f"chaos OK [{fault}]: compile x2 + simulate + resume")


def main():
    programs = sorted(
        name for name in os.listdir(CORPUS) if name.endswith(".c")
    )
    if not programs:
        sys.exit(f"no corpus programs under {CORPUS}")

    for fault, extra in MATRIX:
        with tempfile.TemporaryDirectory() as tmp:
            manifest_path = os.path.join(tmp, "manifest.json")
            stats_path = os.path.join(tmp, "stats.json")
            run(
                [
                    sys.executable, "-m", "repro", "batch", CORPUS,
                    "--jobs", "4", "--args", "96", "--no-cache",
                    "--manifest", manifest_path,
                    "--stats-out", stats_path,
                ] + extra,
                fault,
            )
            manifest = json.load(open(manifest_path))
            stats = json.load(open(stats_path))

        entries = {p["path"] for p in manifest["programs"]}
        missing = [name for name in programs if name not in entries]
        if missing:
            sys.exit(f"FAIL [{fault}]: no manifest entry for {missing}")
        degradations = stats.get("degradations", 0)
        if degradations <= 0:
            sys.exit(
                f"FAIL [{fault}]: expected contained degradations in "
                f"stats, got {degradations}"
            )
        print(
            f"chaos OK [{fault}]: {len(entries)} programs, "
            f"{degradations} contained degradation(s)"
        )

    # Single-program path: repro compile must also survive the chaos.
    run(
        [
            sys.executable, "-m", "repro", "compile",
            os.path.join(CORPUS, "histogram.c"), "--args", "96",
        ],
        "search:raise",
    )
    print("chaos OK [search:raise]: repro compile exited 0")

    checkpoint_chaos()
    print(
        f"chaos smoke passed: {len(MATRIX) + len(CHECKPOINT_MATRIX)} "
        f"fault specs"
    )


if __name__ == "__main__":
    main()
