#!/usr/bin/env python
"""Chaos smoke for CI: the compiler must never abort under injected faults.

Runs the golden corpus through ``repro batch --jobs 4`` (and one
``repro compile``) under a ``$REPRO_FAULT`` matrix -- raise and hang
faults in the search, transform and profiling phases -- and asserts:

* every invocation exits 0 (faults are contained, never fatal);
* the manifest has an entry for every corpus program;
* the stats document reports ``degradations > 0`` (each injected
  fault became a typed DegradationRecord, not silence).

Hang faults run with a phase deadline armed, so the watchdog -- not
the injector's give-up cap -- is what breaks them.
"""

import json
import os
import subprocess
import sys
import tempfile

CORPUS = os.path.join("tests", "golden", "corpus")

#: (fault spec, extra CLI flags) -- raise and hang in each phase the
#: acceptance matrix names.
MATRIX = [
    ("search:raise", []),
    ("transform:raise", []),
    ("profile:raise", []),
    ("search:hang", ["--phase-deadline-ms", "250"]),
    ("transform:hang", ["--phase-deadline-ms", "250"]),
    ("profile:hang", ["--phase-deadline-ms", "250"]),
]


def run(cmd, fault):
    env = dict(os.environ)
    env["REPRO_FAULT"] = fault
    # Backstop only: the armed phase deadline should break every hang
    # long before the injector gives up on its own.
    env["REPRO_FAULT_HANG_S"] = "10"
    proc = subprocess.run(cmd, env=env, timeout=600)
    if proc.returncode != 0:
        sys.exit(
            f"FAIL [{fault}]: {' '.join(cmd)} exited {proc.returncode}"
        )


def main():
    programs = sorted(
        name for name in os.listdir(CORPUS) if name.endswith(".c")
    )
    if not programs:
        sys.exit(f"no corpus programs under {CORPUS}")

    for fault, extra in MATRIX:
        with tempfile.TemporaryDirectory() as tmp:
            manifest_path = os.path.join(tmp, "manifest.json")
            stats_path = os.path.join(tmp, "stats.json")
            run(
                [
                    sys.executable, "-m", "repro", "batch", CORPUS,
                    "--jobs", "4", "--args", "96", "--no-cache",
                    "--manifest", manifest_path,
                    "--stats-out", stats_path,
                ] + extra,
                fault,
            )
            manifest = json.load(open(manifest_path))
            stats = json.load(open(stats_path))

        entries = {p["path"] for p in manifest["programs"]}
        missing = [name for name in programs if name not in entries]
        if missing:
            sys.exit(f"FAIL [{fault}]: no manifest entry for {missing}")
        degradations = stats.get("degradations", 0)
        if degradations <= 0:
            sys.exit(
                f"FAIL [{fault}]: expected contained degradations in "
                f"stats, got {degradations}"
            )
        print(
            f"chaos OK [{fault}]: {len(entries)} programs, "
            f"{degradations} contained degradation(s)"
        )

    # Single-program path: repro compile must also survive the chaos.
    run(
        [
            sys.executable, "-m", "repro", "compile",
            os.path.join(CORPUS, "histogram.c"), "--args", "96",
        ],
        "search:raise",
    )
    print("chaos OK [search:raise]: repro compile exited 0")
    print(f"chaos smoke passed: {len(MATRIX)} fault specs")


if __name__ == "__main__":
    main()
