#!/usr/bin/env python
"""Serve smoke for CI: the daemon must match the CLI and stay warm.

The end-to-end acceptance check for compilation-as-a-service:

1. build the CLI reference manifest (a real ``repro batch --manifest``
   subprocess over the golden corpus);
2. start a ``repro serve`` daemon (4 warm workers, fresh caches) and
   run the corpus through it **twice**;
3. assemble both served passes into canonical manifests and ``cmp``
   them byte-for-byte against the CLI manifest;
4. assert the second pass was served warm: every request answered from
   the memory tier, cache hit rate >= 90%;
5. shut the daemon down gracefully and assert exit code 0.

Writes ``serve_manifest.json`` (the served manifest, for the CI
artifact) next to the CLI's ``manifest1.json`` siblings.
"""

import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
if SRC_DIR not in sys.path:
    sys.path.insert(0, SRC_DIR)

from repro.batch import build_manifest, manifest_to_bytes  # noqa: E402
from repro.core.config import best_config  # noqa: E402
from repro.serve.client import start_daemon  # noqa: E402

CORPUS = os.path.join("tests", "golden", "corpus")
CONFIG = "best"
ARGS = [96]
ENTRY = "main"
FUEL = 50_000_000
WORKERS = 4


def daemon_env():
    python_path = SRC_DIR
    inherited = os.environ.get("PYTHONPATH")
    if inherited:
        python_path = python_path + os.pathsep + inherited
    return {
        "PYTHONPATH": python_path,
        "REPRO_FAULT": "",
        "REPRO_BATCH_CRASH_ON": "",
        "REPRO_SERVE_CRASH_ON": "",
        "REPRO_CACHE_DIR": "",
    }


def corpus_requests():
    requests = []
    for name in sorted(os.listdir(CORPUS)):
        if not name.endswith(".c"):
            continue
        with open(os.path.join(CORPUS, name), encoding="utf-8") as handle:
            source = handle.read()
        requests.append(
            {
                "source": source,
                "path": name,
                "config": CONFIG,
                "entry": ENTRY,
                "args": list(ARGS),
                "fuel": FUEL,
            }
        )
    return requests


def served_manifest_bytes(responses):
    entries = [response["entry"] for response in responses]
    return manifest_to_bytes(
        build_manifest(
            entries, CONFIG, best_config().fingerprint(), ENTRY, ARGS, FUEL
        )
    )


def main():
    requests = corpus_requests()
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as scratch:
        cli_manifest_path = os.path.join(scratch, "cli_manifest.json")
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro", "batch", CORPUS,
                "--jobs", "2",
                "--config", CONFIG,
                "--args", ",".join(str(a) for a in ARGS),
                "--cache-dir", os.path.join(scratch, "cli-cache"),
                "--manifest", cli_manifest_path,
                "--quiet",
            ],
            timeout=600,
        )
        if completed.returncode != 0:
            sys.exit("FAIL: CLI reference batch exited nonzero")
        with open(cli_manifest_path, "rb") as handle:
            cli_manifest = handle.read()

        with start_daemon(
            workers=WORKERS,
            cache_dir=os.path.join(scratch, "serve-cache"),
            env=daemon_env(),
        ) as daemon:
            first = [daemon.client.compile(params) for params in requests]
            second = [daemon.client.compile(params) for params in requests]
            health = daemon.client.healthz()
        exit_code = daemon.returncode

    for label, responses in (("cold", first), ("warm", second)):
        served = served_manifest_bytes(responses)
        if served != cli_manifest:
            sys.exit(
                f"FAIL: {label} served manifest differs from the CLI "
                f"manifest (byte identity broken)"
            )

    warm_tiers = [response["serve"]["tier"] for response in second]
    warm_hits = [tier for tier in warm_tiers if tier in ("memory", "disk")]
    hit_rate = len(warm_hits) / len(warm_tiers)
    if hit_rate < 0.9:
        sys.exit(
            f"FAIL: warm hit rate {hit_rate:.2f} < 0.9 "
            f"(tiers: {warm_tiers})"
        )
    if health["pool"]["crashes"] != 0:
        sys.exit(f"FAIL: unexpected worker crashes: {health['pool']}")
    if exit_code != 0:
        sys.exit(f"FAIL: daemon exited {exit_code}, not 0")

    with open("serve_manifest.json", "wb") as handle:
        handle.write(served_manifest_bytes(second))
    warm_ms = [response["serve"]["wall_ms"] for response in second]
    print(
        "serve smoke OK: served manifests byte-identical to CLI "
        f"({len(requests)} programs x 2 passes), warm hit rate "
        f"{hit_rate:.2f}, warm mean {sum(warm_ms) / len(warm_ms):.2f} ms, "
        f"clean shutdown (exit 0)"
    )
    print(json.dumps(health["pool"], sort_keys=True))


if __name__ == "__main__":
    main()
