"""Explore the SPT partition space of one loop.

Shows what the branch-and-bound search (paper §5) sees: every
violation candidate, the legality closure each drags along, and the
misspeculation cost / pre-fork size of every downward-closed candidate
subset — with the optimum the search picks highlighted.

Run:  python examples/partition_explorer.py
"""

from itertools import combinations

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig
from repro.core.costgraph import build_cost_graph
from repro.core.costmodel import misspeculation_cost
from repro.core.partition import find_optimal_partition
from repro.core.vcdep import VCDepGraph
from repro.core.violation import find_violation_candidates
from repro.frontend import compile_minic
from repro.ir import format_instr
from repro.ssa import build_ssa

SOURCE = """
global int data[1024];

int main(int n) {
    int sum = 0;
    int weight = 1;
    int mix = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i & 1023];
        int y = x * weight;
        mix = (mix << 1) ^ y;
        sum += y & 255;
        weight = (weight * 3 + 1) & 63;
    }
    return sum + mix + weight;
}
"""


def main() -> None:
    module = compile_minic(SOURCE, name="explorer")
    func = module.function("main")
    build_ssa(func)
    nest = LoopNest.build(func)
    loop = nest.loops[0]
    graph = build_dep_graph(module, func, loop)

    candidates = find_violation_candidates(graph)
    vcdep = VCDepGraph(graph, candidates)
    cost_graph = build_cost_graph(graph, candidates)
    config = SptConfig(prefork_fraction=0.5)
    body_size = loop.body_size(func)
    threshold = config.prefork_size_threshold(body_size)

    print(f"loop body size: {body_size} ops; "
          f"pre-fork size threshold: {threshold:.1f}\n")
    print("violation candidates (program order):")
    for index, vc in enumerate(vcdep.candidates):
        closure = vcdep.closures[index]
        closure_text = ", ".join(
            sorted(format_instr(i) for i in closure if i.cost > 0)
        )
        deps = sorted(vcdep.preds[index])
        print(f"  [{index}] {format_instr(vc.instr)}")
        print(f"      violation prob {vc.violation_prob:.2f}, "
              f"closure size {vcdep.partition_size([index]):.1f}"
              + (f", needs {deps}" if deps else ""))
        print(f"      closure: {closure_text}")

    print("\nall legal (downward-closed) pre-fork subsets:")
    n = len(vcdep)
    rows = []
    for size in range(n + 1):
        for combo in combinations(range(n), size):
            subset = set(combo)
            if not vcdep.downward_closed(subset):
                continue
            keys = {vcdep.candidates[i].instr for i in subset}
            cost = misspeculation_cost(cost_graph, keys)
            region = vcdep.partition_size(subset)
            rows.append((subset, cost, region))
    for subset, cost, region in sorted(rows, key=lambda r: (len(r[0]), r[1])):
        label = "{" + ",".join(str(i) for i in sorted(subset)) + "}"
        flag = "  (over size threshold)" if region > threshold else ""
        print(f"  {label:12s} cost={cost:7.2f}  prefork={region:5.1f}{flag}")

    result = find_optimal_partition(graph, config, candidates=candidates)
    chosen_ids = {id(vc.instr) for vc in result.prefork_vcs}
    chosen = sorted(
        index
        for index, vc in enumerate(vcdep.candidates)
        if id(vc.instr) in chosen_ids
    )
    print(f"\nbranch-and-bound optimum: {{{','.join(map(str, chosen))}}} "
          f"cost={result.cost:.2f} prefork={result.prefork_size:.1f} "
          f"({result.search_nodes} subsets visited)")


if __name__ == "__main__":
    main()
