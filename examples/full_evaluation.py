"""Regenerate the paper's full evaluation (Table 1, Figures 14-19).

This compiles and simulates all ten synthetic SPEC2000Int-like
benchmarks under the basic, best, and anticipated configurations --
expect a few minutes of runtime.

Run:  python examples/full_evaluation.py [--quick]

``--quick`` restricts the suite to three benchmarks for a fast look.
"""

import sys


def main() -> None:
    if "--quick" in sys.argv:
        import repro.report.experiments as experiments
        from repro.benchsuite.programs import BY_NAME

        experiments.SUITE = [BY_NAME["bzip2"], BY_NAME["gap"], BY_NAME["vpr"]]

    from repro.report import (
        figure14_text,
        figure15_text,
        figure16_text,
        figure17_text,
        figure18_text,
        figure19_text,
        table1_text,
    )

    for block in (
        table1_text(),
        figure14_text(),
        figure15_text(),
        figure16_text(),
        figure17_text(),
        figure18_text(),
        figure19_text(),
    ):
        print()
        print(block)


if __name__ == "__main__":
    main()
