"""Dependence profiling vs. static disambiguation (paper §7.3).

The histogram loop ``freq[b]++`` looks hopeless to static analysis --
every iteration may read what the previous one wrote -- but profiling
shows consecutive iterations almost never hit the same bucket, so the
dependence probability is tiny and the loop becomes speculation-
friendly.

Run:  python examples/dependence_profiling.py
"""

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig
from repro.core.partition import find_optimal_partition
from repro.frontend import compile_minic
from repro.profiling import DependenceProfile, run_module
from repro.ssa import build_ssa

SOURCE = """
global int data[4096] aliased;
global int freq[256];

int main(int n) {
    for (int i = 0; i < n; i++) {
        data[i] = (i * 40961 + 17) & 255;
    }
    for (int i = 0; i < n; i++) {
        int b = data[i];
        int shifted = (b * 3 + 1) & 255;
        freq[shifted] = freq[shifted] + 1;
    }
    return freq[7];
}
"""


def main() -> None:
    module = compile_minic(SOURCE, name="histogram")
    profile = DependenceProfile(module)
    run_module(module, args=[1500], tracers=[profile])

    func = module.function("main")
    build_ssa(func)
    nest = LoopNest.build(func)
    histogram_loop = nest.loops[-1]

    config = SptConfig()

    static_graph = build_dep_graph(module, func, histogram_loop)
    static_partition = find_optimal_partition(static_graph, config)

    view = profile.view("main", histogram_loop)
    profiled_graph = build_dep_graph(module, func, histogram_loop, dep_profile=view)
    profiled_partition = find_optimal_partition(profiled_graph, config)

    print("== Histogram loop: freq[b]++ ==")
    print("cross-iteration memory edges (static analysis):")
    for edge in static_graph.cross_true_edges():
        if edge.carrier == "mem":
            print(f"  p={edge.prob:.3f}  {edge.src!r} -> {edge.dst!r}")
    print("cross-iteration memory edges (profiled):")
    for edge in profiled_graph.cross_true_edges():
        if edge.carrier == "mem":
            print(f"  p={edge.prob:.3f}  {edge.src!r} -> {edge.dst!r}")

    print(f"\noptimal misspeculation cost, static:   "
          f"{static_partition.cost:.2f} (ratio {static_partition.cost_ratio:.2f})")
    print(f"optimal misspeculation cost, profiled: "
          f"{profiled_partition.cost:.2f} (ratio {profiled_partition.cost_ratio:.2f})")
    threshold = config.cost_threshold(static_partition.body_size)
    print(f"selection threshold: {threshold:.2f}")
    print("\nThe basic (static) compilation must reject the loop; with the")
    print("profile it becomes a speculative parallelization candidate --")
    print("the paper's \"best\" compilation in miniature.")


if __name__ == "__main__":
    main()
