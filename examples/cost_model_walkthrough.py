"""The paper's worked cost-model example (§4.2.5, Figures 5-9).

Builds the dependence/cost graph of Figure 5/6 by hand, reproduces the
re-execution probabilities and the misspeculation cost of 0.58 for the
partition {D}, then enumerates the whole partition search space the way
Figure 8 draws it.

Run:  python examples/cost_model_walkthrough.py
"""

from itertools import combinations

from repro.core.costgraph import CostGraph
from repro.core.costmodel import misspeculation_cost, reexecution_probabilities


def build_figure6_graph() -> CostGraph:
    """Violation candidates D, E, F; operations A..F with unit cost."""
    cg = CostGraph()
    for vc in ("D", "E", "F"):
        cg.add_pseudo(vc, 1.0)  # no branches: violation probability 1
    for node in ("A", "B", "C", "D", "E", "F"):
        cg.add_node(node, 1.0)
    cg.add_edge_from_pseudo("D", "A", 0.2)
    cg.add_edge_from_pseudo("E", "B", 0.1)
    cg.add_edge_from_pseudo("F", "C", 0.2)
    cg.add_edge("B", "C", 0.5)
    cg.add_edge("C", "E", 1.0)
    return cg


def main() -> None:
    cg = build_figure6_graph()

    print("== Figure 6 cost graph, partition {D} pre-fork ==")
    v = reexecution_probabilities(cg, prefork={"D"})
    for node in ("A", "B", "C", "D", "E", "F"):
        print(f"  v({node}) = {v[node]:.2f}")
    cost = misspeculation_cost(cg, prefork={"D"})
    print(f"  misspeculation cost = {cost:.2f}   (paper: 0.58)")

    print("\n== Figure 8 search space: every pre-fork region ==")
    # The VC-dep graph (Figure 7) has one edge D -> E: E may only be
    # moved pre-fork together with D.
    def legal(subset) -> bool:
        return "E" not in subset or "D" in subset

    subsets = []
    for size in range(4):
        for combo in combinations(("D", "E", "F"), size):
            if legal(set(combo)):
                subsets.append(set(combo))
    for subset in subsets:
        label = "{" + ", ".join(sorted(subset)) + "}" if subset else "{}"
        print(f"  pre-fork {label:12s} cost = {misspeculation_cost(cg, subset):.2f}")

    print("\nMonotonicity (the basis of the Figure 9 pruning): adding a")
    print("candidate to the pre-fork region never increases the cost.")


if __name__ == "__main__":
    main()
