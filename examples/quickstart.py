"""Quickstart: compile a small program with the cost-driven SPT
framework and watch what the compiler does.

Run:  python examples/quickstart.py
"""

from repro.core import SptConfig, Workload, compile_spt
from repro.frontend import compile_minic
from repro.ir import format_function
from repro.machine.spt_sim import SptTraceCollector, simulate_spt_loop
from repro.machine.timing import TimingModel
from repro.analysis.loops import LoopNest
from repro.profiling import Machine

SOURCE = """
global int data[2048];
global int out[2048];

int main(int n) {
    // Fill the input with a deterministic pattern.
    for (int i = 0; i < n; i++) {
        data[i] = (i * 2654435761) & 1023;
    }
    // The hot loop: heavy per-element compute, no real carried
    // dependence except the induction variable.
    int total = 0;
    for (int i = 0; i < n; i++) {
        int x = data[i];
        int a = x * 3 + 7;
        int b = a * a + x;
        int c = (b << 2) ^ a;
        int d = c * 5 + b;
        int e = (d << 1) ^ c;
        out[i] = e & 4095;
        total += e & 63;
    }
    return total;
}
"""


def main() -> None:
    module = compile_minic(SOURCE, name="quickstart")
    config = SptConfig()
    workload = Workload(entry="main", args=(500,))

    print("== Two-pass SPT compilation ==")
    result = compile_spt(module, config, workload)

    print(f"loop candidates evaluated: {len(result.candidates)}")
    for candidate in result.candidates:
        partition = candidate.partition
        line = (
            f"  {candidate.loop.header:16s} {candidate.category:22s} "
            f"size={candidate.dynamic_body_size:6.1f} "
            f"trip={candidate.trip_count:7.1f}"
        )
        if partition is not None and not partition.skipped_too_many_vcs:
            line += (
                f" cost={partition.cost:6.2f}"
                f" prefork={partition.prefork_size:5.1f}"
            )
        print(line)

    print(f"\nselected SPT loops: {[i.header for i in result.spt_loops]}")

    print("\n== Transformed main (SPT_FORK/SPT_KILL inserted) ==")
    print(format_function(module.function("main")))

    if result.spt_loops:
        info = result.spt_loops[0]
        func = module.function("main")
        nest = LoopNest.build(func)
        loop = next(l for l in nest.loops if l.header == info.header)
        collector = SptTraceCollector(
            "main", loop.header, loop.body, info.loop_id, TimingModel()
        )
        machine = Machine(module)
        machine.add_tracer(collector)
        machine.run("main", [2000])
        stats = simulate_spt_loop(collector)
        print("\n== SPT machine simulation of the selected loop ==")
        print(f"iterations:            {stats.iterations}")
        print(f"sequential cycles:     {stats.seq_cycles:.0f}")
        print(f"SPT cycles:            {stats.spt_cycles:.0f}")
        print(f"loop speedup:          {stats.loop_speedup:.2f}x")
        print(f"misspeculation ratio:  {stats.misspeculation_ratio:.3f}")


if __name__ == "__main__":
    main()
