"""Software value prediction on the paper's Figure 13 loop.

``x = bar(x)`` is a carried dependence through an opaque call: code
reordering cannot move it pre-fork, so the loop looks hopeless to the
cost model.  Value profiling reveals bar() usually adds 2; the SVP
transformation carries a *prediction* instead and checks/recovers at
the end of each iteration.

Run:  python examples/value_prediction.py
"""

from repro.analysis.depgraph import build_dep_graph
from repro.analysis.loops import LoopNest
from repro.core.config import SptConfig
from repro.core.costgraph import build_cost_graph
from repro.core.partition import find_optimal_partition
from repro.core.svp import apply_svp, critical_candidates
from repro.core.violation import find_violation_candidates
from repro.frontend import compile_minic
from repro.ir import format_function
from repro.profiling import DependenceProfile, ValueProfile, run_module
from repro.ssa import build_ssa

SOURCE = """
extern int observe(int v);

int bar(int x) {
    return x + 2;
}

int main(int n) {
    int x = 0;
    for (int i = 0; i < n; i++) {
        int f = x * 3 + i;
        observe(f);
        x = bar(x);
    }
    return x;
}
"""

SINK = {"observe": lambda machine, v: 0}


def main() -> None:
    module = compile_minic(SOURCE, name="fig13")
    func = module.function("main")
    build_ssa(func)
    nest = LoopNest.build(func)
    loop = nest.loops[0]

    # Dependence profiling first: it discharges the call's conservative
    # memory aliasing, leaving the register recurrence as the problem.
    dep = DependenceProfile(module)
    run_module(module, args=[60], tracers=[dep], intrinsics=SINK)
    graph = build_dep_graph(
        module, func, loop, dep_profile=dep.view("main", loop)
    )
    before = find_optimal_partition(graph, SptConfig())
    print(f"misspeculation cost before SVP: {before.cost:.2f} "
          f"(ratio {before.cost_ratio:.2f})")

    cost_graph = build_cost_graph(graph, before.candidates)
    critical = critical_candidates(before, cost_graph)
    print("critical violation candidates:")
    for vc, contribution in critical:
        print(f"  {vc.instr!r}  contributes {contribution:.2f}")

    target = critical[0][0]
    profile = ValueProfile([target.instr])
    run_module(module, args=[60], tracers=[profile], intrinsics=SINK)
    pattern = profile.pattern_for(target.instr)
    print(f"\nvalue profile of {target.instr!r}: {pattern}")

    info = apply_svp(module, func, loop, target, pattern)
    print(f"applied: {info}")

    nest2 = LoopNest.build(func)
    loop2 = next(l for l in nest2.loops if l.header == loop.header)
    graph2 = build_dep_graph(
        module, func, loop2, dep_profile=dep.view("main", loop2)
    )
    after = find_optimal_partition(graph2, SptConfig())
    print(f"\nmisspeculation cost after SVP: {after.cost:.2f} "
          f"(ratio {after.cost_ratio:.2f})")

    print("\n== Transformed loop (prediction + check-and-recovery) ==")
    print(format_function(func))

    # Semantics are untouched regardless of prediction quality.
    got, _ = run_module(module, args=[25], intrinsics=SINK)
    print(f"\nresult check: main(25) = {got} (expected {2 * 25})")


if __name__ == "__main__":
    main()
