"""Live batch progress: heartbeat bookkeeping, the one-line status
display, and the machine-readable ``progress.json`` document.

Workers send ``{"kind": "heartbeat", "worker": w, "index": i}``
messages over the result queue while a program is in flight (the
``start`` claim message counts as the first heartbeat).  The driver
feeds every queue message into one :class:`ProgressTracker`, renders
:meth:`ProgressTracker.status_line` for humans, and serializes
:meth:`ProgressTracker.snapshot` -- schema ``repro-batch-progress/1``
-- for external watchers (CI tails, dashboards, the future ``repro
serve`` admission controller).

The tracker is also the liveness authority: the driver's stall
backstop asks :meth:`ProgressTracker.seconds_since_heartbeat` instead
of inferring stalls from result-queue silence, so a slow-but-alive
worker (still heartbeating) never trips the backstop, while a pool
that lost its workers (no heartbeats, no results) still does.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.util.atomicio import atomic_write_json

__all__ = ["PROGRESS_SCHEMA", "ProgressTracker", "validate_progress"]

PROGRESS_SCHEMA = "repro-batch-progress/1"


class ProgressTracker:
    """Aggregates worker start/heartbeat/done messages into batch state."""

    def __init__(self, total: int, jobs: int, clock=time.monotonic):
        self.total = total
        self.jobs = jobs
        self._clock = clock
        self._started = clock()
        self.done = 0
        self.ok = 0
        self.failed = 0
        self.cached = 0
        self.heartbeats = 0
        #: worker id -> {"index", "path", "since", "last_beat"}
        self.in_flight: Dict[int, Dict] = {}
        #: per-worker heartbeat counts (includes the start message).
        self.worker_beats: Dict[int, int] = {}
        self._last_beat = clock()

    # -- message intake -------------------------------------------------

    def on_start(self, worker: int, index: int, path: str) -> None:
        now = self._clock()
        self.in_flight[worker] = {
            "index": index,
            "path": path,
            "since": now,
            "last_beat": now,
        }
        self.worker_beats[worker] = self.worker_beats.get(worker, 0) + 1
        self.heartbeats += 1
        self._last_beat = now

    def on_heartbeat(self, worker: int, index: int) -> None:
        now = self._clock()
        state = self.in_flight.get(worker)
        if state is not None and state["index"] == index:
            state["last_beat"] = now
        self.worker_beats[worker] = self.worker_beats.get(worker, 0) + 1
        self.heartbeats += 1
        self._last_beat = now

    def on_done(self, worker: Optional[int], entry: Dict) -> None:
        self.done += 1
        if entry.get("status") == "ok":
            self.ok += 1
        else:
            self.failed += 1
        if entry.get("cached"):
            self.cached += 1
        if worker is not None:
            self.in_flight.pop(worker, None)
        self._last_beat = self._clock()

    def on_worker_dead(self, worker: int) -> None:
        self.in_flight.pop(worker, None)

    def note_activity(self) -> None:
        """Reset the liveness clock for driver-side progress (e.g. a
        crashed worker was attributed and respawned)."""
        self._last_beat = self._clock()

    # -- liveness -------------------------------------------------------

    def seconds_since_heartbeat(self) -> float:
        """Seconds since the pool last showed any sign of life (a
        start, heartbeat, or finished result)."""
        return self._clock() - self._last_beat

    # -- rendering ------------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        return self._clock() - self._started

    def eta_s(self) -> Optional[float]:
        """Naive remaining-time estimate from the mean completion rate."""
        if not self.done or self.done >= self.total:
            return None
        return self.elapsed_s / self.done * (self.total - self.done)

    def status_line(self) -> str:
        parts = [
            f"batch {self.done}/{self.total}",
            f"ok {self.ok}",
        ]
        if self.failed:
            parts.append(f"failed {self.failed}")
        if self.cached:
            parts.append(f"cached {self.cached}")
        parts.append(f"in-flight {len(self.in_flight)}")
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        parts.append(f"[{self.elapsed_s:.1f}s]")
        return " | ".join(parts)

    def snapshot(self) -> Dict:
        """The ``progress.json`` document (schema
        :data:`PROGRESS_SCHEMA`)."""
        now = self._clock()
        return {
            "schema": PROGRESS_SCHEMA,
            "total": self.total,
            "jobs": self.jobs,
            "done": self.done,
            "ok": self.ok,
            "failed": self.failed,
            "cached": self.cached,
            "heartbeats": self.heartbeats,
            "elapsed_s": round(self.elapsed_s, 3),
            "eta_s": (
                None if self.eta_s() is None else round(self.eta_s(), 3)
            ),
            "in_flight": [
                {
                    "worker": worker,
                    "index": state["index"],
                    "path": state["path"],
                    "running_s": round(now - state["since"], 3),
                    "heartbeat_age_s": round(now - state["last_beat"], 3),
                }
                for worker, state in sorted(self.in_flight.items())
            ],
        }

    def write(self, path: str) -> None:
        """Atomically (re)write the ``progress.json`` document."""
        # fsync=False: progress is advisory and rewritten every tick.
        atomic_write_json(path, self.snapshot(), indent=2, fsync=False)


def validate_progress(document: Dict) -> List[str]:
    """Schema problems in a ``progress.json`` document ([] when valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["progress document is not an object"]
    if document.get("schema") != PROGRESS_SCHEMA:
        problems.append(
            f"schema {document.get('schema')!r} != {PROGRESS_SCHEMA!r}"
        )
    for field in ("total", "jobs", "done", "ok", "failed", "cached",
                  "heartbeats"):
        value = document.get(field)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{field} must be a non-negative int, got"
                            f" {value!r}")
    for field in ("elapsed_s",):
        value = document.get(field)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{field} must be a non-negative number, got"
                            f" {value!r}")
    eta = document.get("eta_s")
    if eta is not None and (not isinstance(eta, (int, float)) or eta < 0):
        problems.append(f"eta_s must be null or a non-negative number, got"
                        f" {eta!r}")
    in_flight = document.get("in_flight")
    if not isinstance(in_flight, list):
        problems.append("in_flight must be a list")
        in_flight = []
    for slot in in_flight:
        if not isinstance(slot, dict):
            problems.append(f"in_flight entry is not an object: {slot!r}")
            continue
        for field in ("worker", "index"):
            if not isinstance(slot.get(field), int):
                problems.append(
                    f"in_flight.{field} must be an int, got"
                    f" {slot.get(field)!r}"
                )
        if not isinstance(slot.get("path"), str):
            problems.append(
                f"in_flight.path must be a string, got {slot.get('path')!r}"
            )
    if isinstance(document.get("done"), int) and isinstance(
        document.get("total"), int
    ):
        if document["done"] > document["total"]:
            problems.append("done exceeds total")
        if isinstance(document.get("ok"), int) and isinstance(
            document.get("failed"), int
        ):
            if document["ok"] + document["failed"] != document["done"]:
                problems.append("ok + failed != done")
    return problems
