"""The batch manifest: one machine-readable document per batch run.

The manifest is the CI-diffable artifact: it captures *what the
compiler decided* (per-program, per-loop: category, partition cost,
selection verdict) and deliberately excludes anything
run-dependent -- wall times, worker counts, cache hit rates -- so
that ``--jobs 1`` vs ``--jobs 4`` and cold vs warm-cache runs emit
byte-identical files.  Run-dependent measurements go to the separate
stats document (``--stats-out``).

Schema (``repro-batch-manifest/1``)::

    {
      "schema": "repro-batch-manifest/1",
      "config": "best",
      "config_fingerprint": "<sha256>",
      "entry": "main",
      "args": [256],
      "fuel": 50000000,
      "programs": [
        {"path": "a.c", "sha256": "<sha256 of source>",
         "status": "ok", "summary": {...CompilationResult.to_dict()...}},
        {"path": "bad.c", "sha256": "...", "status": "error",
         "error": {"type": "ParseError", "message": "..."}},
        {"path": "boom.c", "sha256": "...", "status": "crashed",
         "error": {"exitcode": 13, "message": "..."}},
        {"path": "slow.c", "sha256": "...", "status": "timeout",
         "error": {"type": "ProgramTimeout", "message": "..."}}
      ]
    }

A program that overran ``--program-timeout`` but succeeded on the
worker's degraded retry stays ``status: "ok"`` with ``"degraded":
true`` (and a ``degraded_reason``); both fields are deterministic and
kept in the manifest.

``programs`` is sorted by ``path``.  Serialization is canonical:
``json.dumps(..., indent=2, sort_keys=True)`` plus a trailing newline,
so two manifests are equal iff their bytes are equal.
"""

from __future__ import annotations

import json
from typing import Dict, List

__all__ = [
    "MANIFEST_SCHEMA",
    "build_manifest",
    "dump_manifest",
    "load_manifest",
    "manifest_to_bytes",
]

MANIFEST_SCHEMA = "repro-batch-manifest/1"


def build_manifest(
    entries: List[Dict],
    config_name: str,
    config_fingerprint: str,
    entry: str,
    args,
    fuel: int,
) -> Dict:
    """Assemble the manifest document from per-program entries.

    Volatile fields workers attach for telemetry (``cached``,
    ``program_key``, ``traceback``) are stripped so the document stays
    stable across cache states and run shapes."""
    programs = []
    for raw in sorted(entries, key=lambda e: e["path"]):
        program = {
            key: value
            for key, value in raw.items()
            if key not in ("cached", "program_key", "traceback")
        }
        programs.append(program)
    return {
        "schema": MANIFEST_SCHEMA,
        "config": config_name,
        "config_fingerprint": config_fingerprint,
        "entry": entry,
        "args": list(args),
        "fuel": fuel,
        "programs": programs,
    }


def manifest_to_bytes(manifest: Dict) -> bytes:
    """Canonical byte serialization (the goldens compare these)."""
    return (
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")


def dump_manifest(manifest: Dict, path: str) -> None:
    with open(path, "wb") as handle:
        handle.write(manifest_to_bytes(manifest))


def load_manifest(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
