"""Worker side of the batch-compilation protocol.

A task is a plain picklable dict (``index``, ``path``, ``name``,
``source`` plus the shared config/workload description); a worker
process loops on the task queue and reports over the result queue:

* ``{"kind": "start", "worker": w, "index": i}`` as soon as a task is
  claimed (the driver uses this, together with a shared-memory claim
  slot, to attribute a hard worker death to the right program; the
  progress tracker counts it as the first heartbeat);
* ``{"kind": "heartbeat", "worker": w, "index": i}`` every
  ``heartbeat_s`` seconds while a task is in flight, sent by a daemon
  thread -- the driver's liveness signal and stall backstop feed;
* ``{"kind": "done", "worker": w, "index": i, "entry": ..., "stats":
  ..., "counters": ..., "gauges": ...}`` when the program finished --
  whether the compilation succeeded, was served from cache, or raised.
  ``counters``/``gauges`` carry the worker-side telemetry totals when
  the driver asked for observation (``observe=True``).

A worker never lets a per-program exception escape: failures become
``status: "error"`` manifest entries and the loop continues.  Only a
hard process death (segfault, ``os._exit``) loses a worker, and the
driver turns that into a ``status: "crashed"`` entry for the claimed
program while the rest of the batch proceeds on respawned capacity.

Fault injection: when ``$REPRO_BATCH_CRASH_ON`` is a non-empty
substring of a task's path, the worker hard-exits with code 13 right
after claiming it.  This exists for the crash-isolation tests and CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import traceback
from contextlib import contextmanager
from typing import Dict, Optional, Tuple

from repro.batch.cache import ResultCache
from repro.batch.lifecycle import start_heartbeat_thread
from repro.core.config import (
    SptConfig,
    anticipated_config,
    basic_config,
    best_config,
)
from repro.core.pipeline import Workload, compile_spt
from repro.frontend import compile_minic
from repro.ir import format_module, parse_module
from repro.resilience.ladder import degraded_retry_overrides
from repro.resilience.watchdog import ProgramTimeout

__all__ = [
    "CRASH_ENV_VAR",
    "CRASH_EXIT_CODE",
    "canonical_module_text",
    "compile_program_task",
    "config_from_task",
    "worker_main",
]

CRASH_ENV_VAR = "REPRO_BATCH_CRASH_ON"
CRASH_EXIT_CODE = 13

_CONFIG_FACTORIES = {
    "basic": basic_config,
    "best": best_config,
    "anticipated": anticipated_config,
}


def canonical_module_text(source: str) -> str:
    """Canonicalize a program to deterministic textual IR.

    MiniC source is lowered (under a fixed module name, so the file
    name cannot influence the digest) and printed; textual IR is
    parsed and re-printed.  Comments, whitespace and declaration
    formatting all wash out, so cosmetically different files hit the
    same cache entries."""
    stripped = source.lstrip()
    if stripped.startswith("module ") or stripped.startswith("func "):
        module = parse_module(source)
        module.name = "m"
    else:
        module = compile_minic(source, name="m")
    return format_module(module)


def config_from_task(task: Dict) -> SptConfig:
    """Rebuild the SptConfig a task describes (preset + overrides)."""
    config = _CONFIG_FACTORIES[task["config"]]()
    overrides = task.get("config_overrides") or {}
    return config.with_overrides(**overrides) if overrides else config


def _load_module(source: str, name: str):
    stripped = source.lstrip()
    if stripped.startswith("module ") or stripped.startswith("func "):
        return parse_module(source)
    return compile_minic(source, name=name)


@contextmanager
def _program_alarm(timeout_s: Optional[float]):
    """Arm SIGALRM to raise :class:`ProgramTimeout` after ``timeout_s``.

    A no-op when no timeout is requested or the platform has no SIGALRM
    (Windows).  Only valid in a process main thread -- which is where
    :func:`worker_main` runs.  The signal breaks even uncooperative
    hangs (C extensions excepted) that no in-process watchdog can."""
    if not timeout_s or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise ProgramTimeout(
            f"program compilation exceeded {timeout_s:g}s"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _degraded_retry(
    task: Dict,
    cache: Optional[ResultCache],
    cause: str,
    telemetry=None,
) -> Dict:
    """The one post-timeout retry, on the degraded ladder configuration.

    Feedback passes off, search budgets tiny, phase deadline armed --
    and a different config fingerprint, so the degraded result can
    never be served from (or poison) the full configuration's cache
    entries.  A second timeout becomes ``status: "timeout"``."""
    config = config_from_task(task)
    overrides = dict(task.get("config_overrides") or {})
    overrides.update(degraded_retry_overrides(config))
    degraded_task = dict(task, config_overrides=overrides)
    try:
        with _program_alarm(task.get("timeout_s")):
            out = _compile_with_cache(degraded_task, cache, telemetry)
    except ProgramTimeout as exc:
        return {
            "status": "timeout",
            "error": {
                "type": "ProgramTimeout",
                "message": f"{cause}; degraded retry: {exc}",
            },
        }
    except Exception as exc:  # noqa: BLE001 - worker must survive anything
        return {
            "status": "error",
            "error": {
                "type": exc.__class__.__name__,
                "message": f"degraded retry after timeout failed: {exc}",
            },
            "traceback": traceback.format_exc(limit=8),
        }
    out["degraded"] = True
    out["degraded_reason"] = cause
    return out


def compile_program_task(
    task: Dict, cache: Optional[ResultCache], telemetry=None
) -> Tuple[Dict, Dict]:
    """Compile one program (consulting ``cache``), returning
    ``(manifest_entry, cache_stats_dict)``.

    ``telemetry`` is an optional worker-side observing Telemetry whose
    counters the caller ships back to the driver.  The manifest entry
    is byte-for-byte identical whether it was recomputed or served
    warm: the cache stores the exact summary and per-loop records the
    cold path produced."""
    stats_before = cache.stats.to_dict() if cache else None
    source = task["source"]
    entry: Dict = {
        "path": task["path"],
        "sha256": hashlib.sha256(source.encode("utf-8")).hexdigest(),
    }
    try:
        with _program_alarm(task.get("timeout_s")):
            entry.update(_compile_with_cache(task, cache, telemetry))
    except ProgramTimeout as exc:
        # Passed through every inner firewall by design: the worker --
        # not a per-loop containment scope -- owns the whole-program
        # budget and the one degraded retry it buys.
        entry.update(_degraded_retry(task, cache, str(exc), telemetry))
    except Exception as exc:  # noqa: BLE001 - worker must survive anything
        entry["status"] = "error"
        entry["error"] = {
            "type": exc.__class__.__name__,
            "message": str(exc),
        }
        entry["traceback"] = traceback.format_exc(limit=8)
    delta = _stats_delta(cache, stats_before)
    return entry, delta


def _stats_delta(cache: Optional[ResultCache], before: Optional[Dict]) -> Dict:
    if cache is None or before is None:
        return {"hits": 0, "misses": 0, "writes": 0, "evictions": 0,
                "corrupt": 0}
    after = cache.stats.to_dict()
    return {
        name: after[name] - before[name]
        for name in ("hits", "misses", "writes", "evictions", "corrupt")
    }


def _compile_with_cache(
    task: Dict, cache: Optional[ResultCache], telemetry=None
) -> Dict:
    config = config_from_task(task)
    workload = Workload(
        entry=task["entry"], args=tuple(task["args"]), fuel=task["fuel"]
    )

    program_key = None
    if cache is not None:
        canonical = canonical_module_text(task["source"])
        program_key = ResultCache.program_key(
            canonical,
            config.fingerprint(),
            ResultCache.workload_token(
                workload.entry, workload.args, workload.fuel
            ),
        )
        cached = cache.get_program(program_key)
        if cached is not None:
            loops = []
            complete = True
            for loop_key in cached.get("loop_keys", ()):
                record = cache.get_loop(loop_key)
                if record is None:
                    complete = False
                    break
                loops.append(record)
            if complete and "summary" in cached:
                return {
                    "status": "ok",
                    "summary": cached["summary"],
                    "cached": True,
                    "program_key": program_key,
                }
            # Partial/corrupt state: fall through and recompute fully.

    module = _load_module(task["source"], task["name"])
    result = compile_spt(module, config, workload, telemetry=telemetry)
    # Normalize through JSON immediately so cold results are the same
    # Python objects a cache round-trip yields (tuples become lists,
    # keys become strings) -- warm and cold entries must compare equal,
    # not just serialize equal.
    summary = json.loads(json.dumps(result.to_dict()))

    if cache is not None:
        loop_keys = []
        for record in json.loads(json.dumps(result.loop_records())):
            loop_key = ResultCache.loop_key(
                program_key, record["function"], record["header"]
            )
            cache.put_loop(loop_key, record)
            loop_keys.append(loop_key)
            # A cold per-loop analysis is a cache miss in the telemetry
            # sense: it was requested and had to be computed.
            cache.stats.misses += 1
        cache.put_program(
            program_key, {"summary": summary, "loop_keys": loop_keys}
        )

    out = {"status": "ok", "summary": summary, "cached": False}
    if program_key is not None:
        out["program_key"] = program_key
    return out


def probe_cache(
    source: str, config: SptConfig, workload: Workload, cache: ResultCache
) -> Dict:
    """Read-only cache inspection for ``repro explain --cache-dir``.

    Reports whether this (program, config, workload) combination is
    warm: the program key, whether the program entry is present, and
    how many of its per-loop records are loadable."""
    canonical = canonical_module_text(source)
    program_key = ResultCache.program_key(
        canonical,
        config.fingerprint(),
        ResultCache.workload_token(workload.entry, workload.args, workload.fuel),
    )
    probe = {
        "cache_dir": cache.cache_dir,
        "program_key": program_key,
        "program_hit": False,
        "loops_present": 0,
        "loops_total": 0,
    }
    cached = cache.get_program(program_key)
    if cached is None:
        return probe
    probe["program_hit"] = True
    loop_keys = cached.get("loop_keys", [])
    probe["loops_total"] = len(loop_keys)
    probe["loops_present"] = sum(
        1 for loop_key in loop_keys if cache.get_loop(loop_key) is not None
    )
    return probe


def worker_main(
    task_queue,
    result_queue,
    worker_id,
    cache_dir,
    claim,
    heartbeat_s: Optional[float] = None,
    observe: bool = False,
) -> None:
    """Body of one worker process.

    ``claim`` is a shared ``multiprocessing.Value('i')`` the worker
    sets to the task index it is working on (and back to -1 when
    done).  Unlike queue messages -- which travel through a feeder
    thread a dying process may never flush -- shared-memory stores are
    visible immediately, so the driver can attribute a hard crash to
    the right program.

    ``heartbeat_s`` arms the liveness thread; ``observe=True`` runs
    each compilation under a fresh observing telemetry and ships its
    counter/gauge totals back in the ``done`` message."""
    crash_on = os.environ.get(CRASH_ENV_VAR) or None
    cache = ResultCache(cache_dir) if cache_dir else None
    stop_heartbeat = None
    if heartbeat_s:
        stop_heartbeat = start_heartbeat_thread(
            result_queue, worker_id, claim, heartbeat_s
        )
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            index = task["index"]
            claim.value = index
            result_queue.put(
                {"kind": "start", "worker": worker_id, "index": index}
            )
            if crash_on and crash_on in task["path"]:
                # Simulated hard death: no cleanup, no queue flush.
                os._exit(CRASH_EXIT_CODE)
            telemetry = None
            if observe:
                from repro.obs.telemetry import Telemetry

                telemetry = Telemetry()
            entry, stats = compile_program_task(task, cache, telemetry)
            message = {
                "kind": "done",
                "worker": worker_id,
                "index": index,
                "entry": entry,
                "stats": stats,
            }
            if telemetry is not None:
                telemetry.close()
                message["counters"] = dict(telemetry.counters)
                message["gauges"] = dict(telemetry.gauges)
            result_queue.put(message)
            claim.value = -1
    finally:
        if stop_heartbeat is not None:
            stop_heartbeat.set()
