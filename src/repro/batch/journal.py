"""Crash-resume journal for batch runs (``repro batch --resume``).

The manifest is written once, at the end -- a driver SIGKILLed mid-run
leaves nothing but ``progress.json`` counts behind.  The journal fixes
that: as each program finishes, the driver durably appends its raw
entry as one JSON line (``repro-batch-journal/1``), so the journal is
an incrementally-materialized partial manifest.  A re-run with
``--resume`` replays it, seeds the finished entries, and queues only
the unfinished programs; the final manifest is byte-identical to an
uninterrupted run's because entries carry everything the manifest
keeps.

The journal file is content-addressed by the *batch identity* -- config
fingerprint, workload, and the exact (path, source sha256) list -- so a
changed source file, config, or program set silently starts a fresh
journal instead of resuming stale results.  Within the file, each line
re-checks path + sha256 against the current task before it is trusted.
Appends go through :func:`repro.util.atomicio.append_line` (one
``O_APPEND`` write under an advisory lock): a crash can only ever
truncate the *last* line, and unparsable lines are skipped on replay.

Only deterministic outcomes resume (``status: "ok"`` and the
compile-error statuses); run-shape-dependent failures (``crashed``,
``timeout``, ``lost``) are re-queued for another attempt.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

__all__ = ["JOURNAL_SCHEMA", "BatchJournal", "batch_key", "default_journal_dir"]

JOURNAL_SCHEMA = "repro-batch-journal/1"

#: Statuses that are deterministic functions of (source, config) and
#: may therefore be replayed from the journal.  Crash/timeout/lost
#: entries depend on the run that produced them; resume retries those.
RESUMABLE_STATUSES = ("ok", "error")


def default_journal_dir() -> str:
    from repro.checkpoint.store import default_checkpoint_dir

    return os.path.join(default_checkpoint_dir(), "batches")


def batch_key(
    config_fingerprint: str, entry: str, args, fuel: int, tasks: List[Dict]
) -> str:
    """Content-addressed identity of one batch run."""
    hasher = hashlib.sha256()
    hasher.update(
        "\x1f".join(
            (JOURNAL_SCHEMA, config_fingerprint, entry, repr(tuple(args)),
             str(fuel))
        ).encode("utf-8")
    )
    for task in tasks:
        digest = hashlib.sha256(task["source"].encode("utf-8")).hexdigest()
        hasher.update(f"\x1f{task['path']}\x1f{digest}".encode("utf-8"))
    return hasher.hexdigest()


class BatchJournal:
    """Append-only per-batch journal of finished program entries."""

    def __init__(self, directory: Optional[str], key: str):
        self.directory = directory or default_journal_dir()
        self.key = key
        self.path = os.path.join(self.directory, "v1", f"{key}.journal")
        #: Lines skipped on the last :meth:`load` because they were
        #: unparsable (torn trailing append) or failed validation.
        self.skipped = 0

    def record(self, index: int, task: Dict, entry: Dict) -> None:
        """Durably append one finished entry; failures are swallowed
        (losing a journal line only costs recompute on resume)."""
        from repro.util.atomicio import append_line

        line = json.dumps(
            {
                "schema": JOURNAL_SCHEMA,
                "index": index,
                "path": task["path"],
                "sha256": hashlib.sha256(
                    task["source"].encode("utf-8")
                ).hexdigest(),
                "entry": entry,
            },
            sort_keys=True,
        )
        try:
            append_line(self.path, line)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:  # noqa: BLE001 - journaling must not fail the batch
            pass

    def load(self, tasks: List[Dict]) -> Dict[int, Dict]:
        """Replay the journal against the current task list.

        Returns ``index -> entry`` for every journal line that names an
        existing task (validated by index, path, and source sha256) and
        carries a resumable status.  Later lines win; anything
        unparsable or mismatched is counted in :attr:`skipped`."""
        self.skipped = 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return {}
        digests = [
            hashlib.sha256(task["source"].encode("utf-8")).hexdigest()
            for task in tasks
        ]
        resumed: Dict[int, Dict] = {}
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if record.get("schema") != JOURNAL_SCHEMA:
                    raise ValueError("foreign journal line")
                index = record["index"]
                entry = record["entry"]
                if not (
                    isinstance(index, int)
                    and 0 <= index < len(tasks)
                    and isinstance(entry, dict)
                    and record.get("path") == tasks[index]["path"]
                    and record.get("sha256") == digests[index]
                    and entry.get("status") in RESUMABLE_STATUSES
                ):
                    raise ValueError("journal line does not match batch")
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:  # noqa: BLE001 - torn/stale line => recompute
                self.skipped += 1
                continue
            resumed[index] = entry
        return resumed

    def discard(self) -> None:
        """Remove the journal (called after the manifest is built: the
        durable artifact now exists, the journal is scaffolding)."""
        try:
            os.remove(self.path)
        except OSError:
            pass

    def __repr__(self) -> str:
        return f"BatchJournal({self.path!r})"
