"""Parallel batch compilation with a persistent content-addressed
result cache.  See ``docs/batching.md``.

* :func:`run_batch` / :class:`BatchResult` -- the multi-process driver
  behind ``repro batch``;
* :class:`ResultCache` -- the SHA-256-keyed persistent cache
  (``~/.cache/repro`` by default), corruption-tolerant and versioned;
* :mod:`repro.batch.manifest` -- the canonical machine-readable
  manifest CI diffs.
"""

from repro.batch.cache import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    ResultCache,
    default_cache_dir,
)
from repro.batch.driver import BatchResult, expand_inputs, run_batch
from repro.batch.lifecycle import (
    ClaimedWorker,
    drain_queue,
    start_heartbeat_thread,
)
from repro.batch.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    dump_manifest,
    load_manifest,
    manifest_to_bytes,
)
from repro.batch.worker import (
    CRASH_ENV_VAR,
    CRASH_EXIT_CODE,
    canonical_module_text,
    compile_program_task,
)

__all__ = [
    "BatchResult",
    "CACHE_FORMAT_VERSION",
    "CRASH_ENV_VAR",
    "CRASH_EXIT_CODE",
    "CacheStats",
    "ClaimedWorker",
    "MANIFEST_SCHEMA",
    "ResultCache",
    "drain_queue",
    "start_heartbeat_thread",
    "build_manifest",
    "canonical_module_text",
    "compile_program_task",
    "default_cache_dir",
    "dump_manifest",
    "expand_inputs",
    "load_manifest",
    "manifest_to_bytes",
    "run_batch",
]
