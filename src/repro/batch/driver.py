"""The multi-process batch-compilation driver (``repro batch``).

Programs are expanded from directories/globs, sorted, and pushed
through a shared task queue to a pool of worker processes
(:mod:`repro.batch.worker`).  Results arrive in completion order and
are merged back into task order, so the manifest is deterministic
regardless of ``--jobs`` or scheduling.

Crash isolation: each worker advertises the task it claimed through a
shared-memory slot.  When the driver notices a dead worker it first
drains the result queue (the task may in fact have completed), then
charges the still-unaccounted claimed task with a structured
``status: "crashed"`` entry and respawns a replacement worker, so one
bad program can never take down the batch.
"""

from __future__ import annotations

import glob as _glob
import multiprocessing
import os
import time
from typing import Dict, List, Optional

from repro.batch.cache import CacheStats, ResultCache, default_cache_dir
from repro.batch.lifecycle import ClaimedWorker, drain_queue
from repro.batch.manifest import build_manifest
from repro.batch.progress import ProgressTracker
from repro.batch.worker import worker_main
from repro.obs.telemetry import NULL_TELEMETRY

__all__ = ["BatchResult", "expand_inputs", "run_batch"]

#: Default seconds of total silence (no results, no live claimed work)
#: before the driver declares the remaining tasks lost.  A backstop for
#: the tiny window where a worker dies between dequeue and claim;
#: normal batches never get near it.  Configurable per run via
#: ``run_batch(stall_timeout=...)`` / ``repro batch --stall-timeout``
#: or :attr:`repro.core.config.SptConfig.batch_stall_timeout_s`.
STALL_TIMEOUT = 60.0

#: Default seconds between worker heartbeats (clamped to a quarter of
#: the stall window so a healthy pool beats several times per window).
HEARTBEAT_S = 0.5

_SOURCE_SUFFIXES = (".c", ".minic", ".ir")


class BatchResult:
    """Everything one batch run produced."""

    def __init__(
        self,
        manifest: Dict,
        entries: List[Dict],
        stats: Dict,
        cache_stats: CacheStats,
    ):
        #: The canonical, run-shape-independent manifest document.
        self.manifest = manifest
        #: Raw per-program entries in input (sorted-path) order,
        #: including volatile fields (``cached``, ``program_key``).
        self.entries = entries
        #: Run-dependent measurements (wall time, jobs, cache rates).
        self.stats = stats
        self.cache_stats = cache_stats

    @property
    def ok(self) -> bool:
        return all(e.get("status") == "ok" for e in self.entries)

    def __repr__(self) -> str:
        return (
            f"BatchResult({self.stats['ok']}/{self.stats['programs']} ok, "
            f"hit_rate={self.cache_stats.hit_rate:.0%})"
        )


def expand_inputs(inputs: List[str]) -> List[str]:
    """Expand directories and glob patterns into a sorted program list.

    Directories contribute every ``*.c``/``*.minic``/``*.ir`` file
    directly inside them; other arguments go through :mod:`glob` and
    then must name files.  Duplicates are dropped; the result is
    sorted for deterministic task numbering."""
    paths: List[str] = []
    for item in inputs:
        if os.path.isdir(item):
            for name in sorted(os.listdir(item)):
                if name.endswith(_SOURCE_SUFFIXES):
                    paths.append(os.path.join(item, name))
            continue
        matches = sorted(_glob.glob(item))
        if not matches:
            raise FileNotFoundError(f"no programs match {item!r}")
        for match in matches:
            if os.path.isfile(match):
                paths.append(match)
    seen = set()
    unique = []
    for path in paths:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    unique.sort(key=_display_path)
    return unique


def _display_path(path: str) -> str:
    """The stable name a program gets in the manifest: its basename
    when unambiguous (the common corpus-directory case would otherwise
    leak absolute temp/workspace paths into goldens)."""
    return os.path.basename(path)


def _build_tasks(
    paths: List[str],
    config_name: str,
    config_overrides: Dict,
    entry: str,
    args,
    fuel: int,
    timeout_s: Optional[float] = None,
) -> List[Dict]:
    display = [_display_path(p) for p in paths]
    if len(set(display)) != len(display):
        # Ambiguous basenames: fall back to the full given paths.
        display = [p.replace(os.sep, "/") for p in paths]
    tasks = []
    for index, (path, name) in enumerate(zip(paths, display)):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tasks.append(
            {
                "index": index,
                "path": name,
                "name": os.path.basename(path).split(".")[0],
                "source": source,
                "config": config_name,
                "config_overrides": dict(config_overrides or {}),
                "entry": entry,
                "args": list(args),
                "fuel": fuel,
                "timeout_s": timeout_s,
            }
        )
    return tasks


def _crashed_entry(task: Dict, exitcode: Optional[int], message: str) -> Dict:
    import hashlib

    return {
        "path": task["path"],
        "sha256": hashlib.sha256(task["source"].encode("utf-8")).hexdigest(),
        "status": "crashed",
        "error": {
            "exitcode": exitcode if exitcode is not None else -1,
            "message": message,
        },
    }


def run_batch(
    inputs: List[str],
    config_name: str = "best",
    config_overrides: Optional[Dict] = None,
    entry: str = "main",
    args=(),
    fuel: int = 50_000_000,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    cache_max_entries: Optional[int] = None,
    telemetry=None,
    progress=None,
    stall_timeout: Optional[float] = None,
    program_timeout: Optional[float] = None,
    progress_path: Optional[str] = None,
    heartbeat_s: Optional[float] = None,
    status=None,
    resume: bool = False,
    journal_dir: Optional[str] = None,
) -> BatchResult:
    """Compile every program named by ``inputs`` and merge one manifest.

    ``progress`` is an optional callable receiving one finished entry
    at a time (completion order), for CLI streaming output.

    ``stall_timeout`` overrides the driver's liveness backstop (default:
    the config's ``batch_stall_timeout_s``); the backstop fires only
    after that long without any worker heartbeat, start, or result.
    ``program_timeout`` arms a per-program SIGALRM in each worker -- an
    overrunning program is retried once on the degraded ladder
    configuration and only then reported with ``status: "timeout"``.

    Live progress: workers heartbeat every ``heartbeat_s`` seconds
    (default 0.5); ``status`` is an optional callable receiving the
    refreshed one-line status string, and ``progress_path`` names a
    ``progress.json`` document (schema ``repro-batch-progress/1``)
    rewritten atomically as the batch advances.

    ``resume=True`` makes the run crash-resumable: every finished entry
    is durably journaled (:mod:`repro.batch.journal`, under
    ``journal_dir``), and entries a previous -- possibly SIGKILLed --
    run of the *same* batch already journaled are replayed instead of
    recompiled.  The final manifest is byte-identical to an
    uninterrupted run's."""
    telemetry = telemetry or NULL_TELEMETRY
    if stall_timeout is not None and stall_timeout <= 0:
        raise ValueError("stall_timeout must be positive when set")
    if program_timeout is not None and program_timeout <= 0:
        raise ValueError("program_timeout must be positive when set")
    if heartbeat_s is not None and heartbeat_s <= 0:
        raise ValueError("heartbeat_s must be positive when set")
    paths = expand_inputs(list(inputs))
    if not paths:
        raise FileNotFoundError("no input programs found")
    jobs = jobs or os.cpu_count() or 1
    jobs = max(1, min(jobs, len(paths)))
    effective_cache_dir = (
        (cache_dir or default_cache_dir()) if use_cache else None
    )

    tasks = _build_tasks(
        paths, config_name, config_overrides or {}, entry, args, fuel,
        timeout_s=program_timeout,
    )
    from repro.batch.worker import config_from_task

    config = config_from_task(tasks[0])
    if stall_timeout is None:
        stall_timeout = config.batch_stall_timeout_s

    journal = None
    resumed_entries: Dict[int, Dict] = {}
    if resume:
        from repro.batch.journal import BatchJournal, batch_key

        journal = BatchJournal(
            journal_dir,
            batch_key(config.fingerprint(), entry, list(args), fuel, tasks),
        )
        resumed_entries = journal.load(tasks)
        if telemetry.enabled:
            telemetry.count("batch.resumed_entries", len(resumed_entries))
            if journal.skipped:
                telemetry.count("batch.journal_skipped", journal.skipped)

    started = time.perf_counter()
    with telemetry.span("batch", jobs=jobs, programs=len(tasks)):
        entries, cache_stats, tracker = _execute(
            tasks, jobs, effective_cache_dir, telemetry, progress,
            stall_timeout,
            progress_path=progress_path,
            heartbeat_s=heartbeat_s,
            status=status,
            journal=journal,
            resumed_entries=resumed_entries,
        )

    evicted = 0
    if effective_cache_dir and cache_max_entries is not None:
        cache = ResultCache(effective_cache_dir)
        evicted = cache.prune(cache_max_entries)
        cache_stats.evictions += evicted
    wall = time.perf_counter() - started

    if telemetry.enabled:
        telemetry.merge_counters(cache_stats.as_counters())
        telemetry.count("batch.programs", len(entries))
        telemetry.count(
            "batch.programs_failed",
            sum(1 for e in entries if e.get("status") != "ok"),
        )

    manifest = build_manifest(
        entries, config_name, config.fingerprint(), entry, list(args), fuel
    )
    statuses = [e.get("status") for e in entries]
    stats = {
        "jobs": jobs,
        "programs": len(entries),
        "ok": statuses.count("ok"),
        "errors": statuses.count("error"),
        "crashed": statuses.count("crashed") + statuses.count("lost"),
        "timeouts": statuses.count("timeout"),
        "degraded_programs": sum(1 for e in entries if e.get("degraded")),
        # Total contained-fault records across the batch (the summaries'
        # top-level "degradations" lists) -- what chaos CI asserts on.
        "degradations": sum(
            len((e.get("summary") or {}).get("degradations", ()))
            for e in entries
        ),
        "cached_programs": sum(1 for e in entries if e.get("cached")),
        "resumed_programs": len(resumed_entries),
        "wall_seconds": round(wall, 4),
        "cache_dir": effective_cache_dir,
        "cache": cache_stats.to_dict(),
        "heartbeats": tracker.heartbeats,
    }
    return BatchResult(manifest, entries, stats, cache_stats)


def _execute(tasks, jobs, cache_dir, telemetry, progress,
             stall_timeout=STALL_TIMEOUT, progress_path=None,
             heartbeat_s=None, status=None, journal=None,
             resumed_entries=None):
    """Run the worker pool; returns (entries in task order, CacheStats,
    ProgressTracker)."""
    entries: List[Optional[Dict]] = [None] * len(tasks)
    pending = set(range(len(tasks)))

    # Seed journal-replayed entries first: they are finished work, and
    # the corresponding tasks are never queued.
    for index, entry in sorted((resumed_entries or {}).items()):
        entries[index] = entry
        pending.discard(index)

    jobs = max(1, min(jobs, len(pending))) if pending else 0
    ctx = multiprocessing.get_context()
    task_queue = ctx.Queue()
    # Results travel over a SimpleQueue on purpose: its put() writes to
    # the pipe synchronously in the calling thread, so a worker that
    # hard-dies right after put() cannot strand finished results in an
    # unflushed feeder-thread buffer (mp.Queue would).
    result_queue = ctx.SimpleQueue()
    for index in sorted(pending):
        task_queue.put(tasks[index])
    for _ in range(jobs):
        task_queue.put(None)

    if heartbeat_s is None:
        # Several beats per backstop window, without busy-beating.
        heartbeat_s = max(0.05, min(HEARTBEAT_S, stall_timeout / 4.0))
    observe = bool(telemetry.enabled)

    cache_stats = CacheStats()
    tracker = ProgressTracker(len(tasks), jobs)
    for index in sorted((resumed_entries or {})):
        tracker.on_done(None, entries[index])
        if progress is not None:
            progress(entries[index])
    workers: Dict[int, ClaimedWorker] = {}
    next_worker_id = 0

    def spawn() -> None:
        nonlocal next_worker_id
        workers[next_worker_id] = ClaimedWorker(
            ctx, next_worker_id, worker_main, task_queue, result_queue,
            cache_dir, extra_args=(heartbeat_s, observe),
            name_prefix="repro-batch-worker",
        )
        next_worker_id += 1

    for _ in range(jobs):
        spawn()

    last_publish = 0.0

    def publish(force: bool = False) -> None:
        # Throttled external rendering: the status line and the
        # progress.json document, at most a few times per second.
        nonlocal last_publish
        now = time.monotonic()
        if not force and now - last_publish < 0.2:
            return
        last_publish = now
        if status is not None:
            status(tracker.status_line())
        if progress_path is not None:
            tracker.write(progress_path)

    def finish(index: int, entry: Dict, worker: Optional[int] = None) -> None:
        entries[index] = entry
        pending.discard(index)
        if journal is not None:
            # Durable before visible: the journal line lands before the
            # entry counts as done, so a SIGKILL can lose at most work
            # that was never reported finished.
            journal.record(index, tasks[index], entry)
        tracker.on_done(worker, entry)
        if progress is not None:
            progress(entry)

    def absorb_done(message: Dict) -> None:
        finish(message["index"], message["entry"], message.get("worker"))
        cache_stats.merge(message["stats"])
        if telemetry.enabled and message.get("counters"):
            telemetry.merge_counters(message["counters"])
        if telemetry.enabled:
            for name, value in (message.get("gauges") or {}).items():
                telemetry.gauge(name, value)

    try:
        publish(force=True)
        while pending:
            drained = False
            if result_queue.empty():
                time.sleep(0.02)
                message = None
            else:
                message = result_queue.get()
                drained = True
            if message is not None:
                kind = message["kind"]
                if kind == "done":
                    if message["index"] in pending:
                        absorb_done(message)
                elif kind == "start":
                    tracker.on_start(
                        message["worker"], message["index"],
                        tasks[message["index"]]["path"],
                    )
                elif kind == "heartbeat":
                    tracker.on_heartbeat(message["worker"], message["index"])
                publish()
                continue

            # No result just now: check worker liveness.
            for worker_id, handle in list(workers.items()):
                if handle.is_alive():
                    continue
                if handle.exitcode == 0:
                    # Clean exit: the worker drained its sentinel after
                    # the queue emptied.  Don't replace it.
                    del workers[worker_id]
                    tracker.on_worker_dead(worker_id)
                    continue
                # Drain anything the dead worker managed to send
                # before attributing a crash.
                for late in drain_queue(result_queue):
                    if late["kind"] == "done" and late["index"] in pending:
                        absorb_done(late)
                claimed = handle.claimed
                del workers[worker_id]
                tracker.on_worker_dead(worker_id)
                if claimed >= 0 and claimed in pending:
                    exitcode = handle.exitcode
                    finish(
                        claimed,
                        _crashed_entry(
                            tasks[claimed],
                            exitcode,
                            f"worker process died (exit code {exitcode}) "
                            f"while compiling this program",
                        ),
                    )
                    if telemetry.enabled:
                        telemetry.event(
                            "batch.worker_crashed",
                            worker=worker_id,
                            program=tasks[claimed]["path"],
                            exitcode=exitcode,
                        )
                if pending:
                    # Replace lost capacity; its queue sentinel was
                    # never consumed, so no extra sentinel is needed.
                    spawn()
                tracker.note_activity()
                publish()

            if drained or not pending:
                continue
            if tracker.seconds_since_heartbeat() > stall_timeout:
                # Backstop: the pool shows no sign of life -- no
                # heartbeat, start, or result for a whole window.  A
                # slow-but-alive worker keeps heartbeating and never
                # trips this; a hung *program* is the per-program
                # timeout's job, not the backstop's.
                for index in sorted(pending):
                    finish(
                        index,
                        _crashed_entry(
                            tasks[index], None,
                            "task lost: no worker claimed or finished it "
                            f"within {stall_timeout:g}s",
                        ),
                    )
    finally:
        for handle in workers.values():
            handle.stop(grace_s=2.0)
        task_queue.cancel_join_thread()
        result_queue.close()
        publish(force=True)

    return ([entry for entry in entries if entry is not None], cache_stats,
            tracker)
