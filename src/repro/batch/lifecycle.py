"""Shared worker-process lifecycle primitives.

Both multi-process front ends -- the one-shot batch driver
(:mod:`repro.batch.driver`) and the long-lived serving pool
(:mod:`repro.serve.pool`) -- need the same three building blocks:

* a **claimed worker**: a child process paired with a shared-memory
  claim slot it stores the identifier of its in-flight work item in.
  Queue messages travel through a feeder thread a dying process may
  never flush; shared-memory stores are visible immediately, so the
  parent can always attribute a hard death (segfault, ``os._exit``)
  to the right task and respawn capacity without losing the rest of
  the workload;
* a **heartbeat thread**: a daemon thread in the worker that reports
  the claimed identifier every few hundred milliseconds -- the
  parent's liveness signal, so slow-but-alive work never trips a
  stall backstop;
* **late-result draining**: before charging a dead worker's claimed
  task, drain whatever it managed to put on the result queue -- the
  task may in fact have completed.

:class:`ClaimedWorker` packages the first; :func:`start_heartbeat_thread`
the second; :func:`drain_queue` the third.  The batch driver's merge
policy (task-order manifests) and the serving pool's routing policy
(request-id completion events) both sit *above* this module.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, Optional

__all__ = ["ClaimedWorker", "drain_queue", "start_heartbeat_thread"]

#: The claim-slot value meaning "no work item in flight".
NO_CLAIM = -1


class ClaimedWorker:
    """One live worker process plus its shared-memory claim slot.

    ``target`` is the worker's main function; it receives
    ``(task_queue, result_queue, worker_id, cache_dir, claim,
    *extra_args)`` -- the signature both :func:`repro.batch.worker.
    worker_main` and :func:`repro.serve.pool.serve_worker_main` share.
    The claim slot is a lock-free ``ctx.Value`` (a single aligned store
    per transition, no reader/writer coordination needed).
    """

    def __init__(
        self,
        ctx,
        worker_id: int,
        target: Callable,
        task_queue,
        result_queue,
        cache_dir: Optional[str],
        extra_args: tuple = (),
        name_prefix: str = "repro-worker",
    ):
        self.worker_id = worker_id
        # 'l' (signed long) rather than 'i': serving request ids are
        # unbounded monotonic counters, not small task indices.
        self.claim = ctx.Value("l", NO_CLAIM, lock=False)
        self.process = ctx.Process(
            target=target,
            args=(task_queue, result_queue, worker_id, cache_dir, self.claim)
            + tuple(extra_args),
            daemon=True,
            name=f"{name_prefix}-{worker_id}",
        )
        self.process.start()

    @property
    def claimed(self) -> int:
        """The identifier of the in-flight work item, or ``NO_CLAIM``."""
        return self.claim.value

    def is_alive(self) -> bool:
        return self.process.is_alive()

    @property
    def exitcode(self) -> Optional[int]:
        return self.process.exitcode

    def join(self, timeout: Optional[float] = None) -> None:
        self.process.join(timeout=timeout)

    def stop(self, grace_s: float = 2.0) -> None:
        """Join with a grace period, then terminate a straggler."""
        self.process.join(timeout=grace_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=grace_s)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive() else f"exit={self.exitcode}"
        return (
            f"ClaimedWorker(id={self.worker_id}, {state}, "
            f"claimed={self.claimed})"
        )


def drain_queue(result_queue) -> Iterator[dict]:
    """Yield every message currently sitting on ``result_queue``.

    Used when a worker dies: anything it flushed before the death must
    be absorbed *before* its claimed task is charged as crashed."""
    while not result_queue.empty():
        yield result_queue.get()


def start_heartbeat_thread(
    result_queue, worker_id: int, claim, heartbeat_s: float
) -> threading.Event:
    """Start the worker-side liveness thread; returns its stop event.

    The thread reports the claimed identifier every ``heartbeat_s``
    seconds while one is in flight.  SimpleQueue.put writes the pipe
    synchronously under a lock, so the heartbeat thread and the worker
    main loop can share the result queue.  The thread reads the shared
    claim slot rather than any in-process state, so a main thread
    wedged inside a compilation still heartbeats -- that is the point:
    heartbeats mean "process alive"; hung *programs* remain the
    per-program timeout's job."""
    stop = threading.Event()

    def beat():
        while not stop.wait(heartbeat_s):
            index = claim.value
            if index == NO_CLAIM:
                continue
            try:
                result_queue.put(
                    {"kind": "heartbeat", "worker": worker_id, "index": index}
                )
            except Exception:  # noqa: BLE001 - queue torn down at exit
                return

    thread = threading.Thread(
        target=beat, daemon=True, name=f"repro-heartbeat-{worker_id}"
    )
    thread.start()
    return stop
