"""Persistent content-addressed result cache for batch compilation.

Every cache key is a SHA-256 digest over *content*, never over file
names or timestamps:

* the **program key** hashes the cache format version, the
  :meth:`~repro.core.config.SptConfig.fingerprint` of the active
  configuration, the profiling workload (entry, args, fuel), and the
  canonicalized textual IR of the whole module (comments, whitespace
  and the source file name do not matter -- two byte-different files
  that lower to the same IR share one entry);
* each **loop key** extends the program key with the function name and
  loop header label.  Loop analyses depend on profiles gathered over
  the whole module, so the module digest must stay in the key --
  per-loop entries buy per-loop observability and serialization
  granularity, not cross-program sharing of a single loop.

Entries live under ``<cache_dir>/v<FORMAT>/<k[:2]>/<k>.json`` as small
JSON documents.  Writes are atomic (temp file + ``os.replace``); loads
are corruption-tolerant -- any unreadable, truncated, or mismatching
entry is treated as a miss (and deleted best-effort), never raised.

Bumping :data:`CACHE_FORMAT_VERSION` invalidates everything at once:
the version participates in the digest *and* namespaces the directory,
so old and new formats never even see each other's files.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

from repro.util.atomicio import atomic_write_json

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
]

#: Bump on any incompatible change to entry payloads or key derivation.
CACHE_FORMAT_VERSION = 1


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
    ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return os.path.join(xdg, "repro")
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


class CacheStats:
    """Hit/miss/write/eviction counters for one cache handle."""

    __slots__ = ("hits", "misses", "writes", "evictions", "corrupt")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        #: Entries that existed but failed to load (subset of misses).
        self.corrupt = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def to_dict(self) -> Dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate, 4),
        }

    def as_counters(self) -> Dict[str, int]:
        """Telemetry counter names -> values (see docs/observability.md)."""
        return {
            "batch.cache.hits": self.hits,
            "batch.cache.misses": self.misses,
            "batch.cache.writes": self.writes,
            "batch.cache.evictions": self.evictions,
            "batch.cache.corrupt": self.corrupt,
        }

    def merge(self, other: Dict) -> None:
        """Fold in a ``to_dict()``-shaped stats dict (from a worker)."""
        self.hits += other.get("hits", 0)
        self.misses += other.get("misses", 0)
        self.writes += other.get("writes", 0)
        self.evictions += other.get("evictions", 0)
        self.corrupt += other.get("corrupt", 0)

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"writes={self.writes}, evictions={self.evictions})"
        )


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ResultCache:
    """A persistent, content-addressed store of compilation results."""

    def __init__(self, cache_dir: Optional[str] = None):
        self.cache_dir = cache_dir or default_cache_dir()
        self.stats = CacheStats()

    # -- key derivation --------------------------------------------------

    @property
    def version_dir(self) -> str:
        return os.path.join(self.cache_dir, f"v{CACHE_FORMAT_VERSION}")

    @staticmethod
    def workload_token(entry: str, args, fuel: int) -> str:
        return f"entry={entry};args={tuple(args)!r};fuel={fuel}"

    @staticmethod
    def program_key(
        canonical_ir: str, config_fingerprint: str, workload_token: str
    ) -> str:
        return _sha256(
            "\x1f".join(
                (
                    f"repro-batch-cache/{CACHE_FORMAT_VERSION}",
                    config_fingerprint,
                    workload_token,
                    canonical_ir,
                )
            )
        )

    @staticmethod
    def loop_key(program_key: str, function: str, header: str) -> str:
        return _sha256(f"{program_key}\x1f{function}\x1f{header}")

    # -- entry IO ---------------------------------------------------------

    def _path_for(self, key: str) -> str:
        return os.path.join(self.version_dir, key[:2], f"{key}.json")

    def get(self, key: str, kind: str) -> Optional[Dict]:
        """Load the payload stored under ``key``, or None on miss.

        Any failure mode -- missing file, invalid JSON, truncated
        write, wrong kind/key/format inside the document -- degrades to
        a miss; corrupt files are removed so the rewrite is clean."""
        path = self._path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            if (
                not isinstance(document, dict)
                or document.get("format") != CACHE_FORMAT_VERSION
                or document.get("kind") != kind
                or document.get("key") != key
                or "payload" not in document
            ):
                raise ValueError("malformed cache entry")
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            # Truncated/corrupted/foreign file: recompute, never crash.
            self.stats.misses += 1
            self.stats.corrupt += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return document["payload"]

    def put(self, key: str, kind: str, payload: Dict) -> None:
        """Atomically store ``payload`` under ``key``.

        Concurrent writers racing on the same key are harmless: both
        write identical content (the key is a digest of every input)
        and the publish rename is atomic."""
        path = self._path_for(key)
        document = {
            "format": CACHE_FORMAT_VERSION,
            "kind": kind,
            "key": key,
            "payload": payload,
        }
        # fsync=False: a cache entry lost to a crash is recomputed on
        # the next miss; durability is not worth a sync per write here.
        atomic_write_json(path, document, fsync=False)
        self.stats.writes += 1

    # -- typed accessors ---------------------------------------------------

    def get_program(self, key: str) -> Optional[Dict]:
        return self.get(key, "program")

    def put_program(self, key: str, payload: Dict) -> None:
        self.put(key, "program", payload)

    def get_loop(self, key: str) -> Optional[Dict]:
        return self.get(key, "loop")

    def put_loop(self, key: str, payload: Dict) -> None:
        self.put(key, "loop", payload)

    # -- maintenance -------------------------------------------------------

    def entry_paths(self) -> List[str]:
        """Every entry file in the current-format namespace."""
        paths: List[str] = []
        root = self.version_dir
        if not os.path.isdir(root):
            return paths
        for shard in sorted(os.listdir(root)):
            shard_dir = os.path.join(root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json") and not name.startswith(".tmp-"):
                    paths.append(os.path.join(shard_dir, name))
        return paths

    def prune(self, max_entries: int) -> int:
        """Evict oldest entries (by mtime) down to ``max_entries``.

        Returns the number of evicted entries (also counted in
        ``stats.evictions``)."""
        if max_entries < 0:
            return 0
        paths = self.entry_paths()
        if len(paths) <= max_entries:
            return 0

        def mtime(path: str) -> float:
            try:
                return os.path.getmtime(path)
            except OSError:
                return 0.0

        paths.sort(key=lambda p: (mtime(p), p))
        evicted = 0
        for path in paths[: len(paths) - max_entries]:
            try:
                os.remove(path)
                evicted += 1
            except OSError:
                pass
        self.stats.evictions += evicted
        return evicted

    def __repr__(self) -> str:
        return f"ResultCache({self.cache_dir!r}, {self.stats!r})"
