"""Telemetry sinks and metric exporters.

A sink receives finished spans and events as they close and gets one
``on_close`` call with the whole telemetry object at the end of the
run.  Sinks that need global state (the Chrome trace's counter series,
the summary's totals) buffer until ``on_close``.

* :class:`JsonlSink` -- one JSON object per line, written immediately;
  greppable and streamable.
* :class:`ChromeTraceSink` -- a ``chrome://tracing`` / Perfetto
  compatible JSON trace ("traceEvents" array of complete/instant/
  counter events); load the file in a trace viewer to see the phase
  timeline of a compilation.
* :class:`SummarySink` -- renders a human-readable end-of-run table of
  phase durations and counter totals to a stream.

Two stateless exporters serialize a :class:`~repro.obs.telemetry.
MetricsRegistry` snapshot for machine consumers (both accept a
registry, a telemetry object, or an already-built snapshot dict):

* :func:`prometheus_text` -- the Prometheus text exposition format
  (``# TYPE`` headers, cumulative ``_bucket{le=...}`` series per
  histogram), ready to serve from a ``/metrics`` endpoint;
* :func:`metrics_json` -- the canonical JSON document (sorted keys,
  trailing newline; byte-identical for identical metric states).
"""

from __future__ import annotations

import json
import math
import re
from typing import IO, Dict, List, Optional, Union

from repro.obs.telemetry import (
    Event,
    MetricsRegistry,
    Span,
    Telemetry,
    folded_stacks,
    self_durations,
)

__all__ = [
    "ChromeTraceSink",
    "JsonlSink",
    "Sink",
    "SummarySink",
    "metrics_json",
    "profile_text",
    "prometheus_text",
    "summary_text",
]


class Sink:
    """Base sink: all hooks default to no-ops."""

    def on_span(self, span: Span) -> None:
        """A span finished."""

    def on_event(self, event: Event) -> None:
        """An event fired."""

    def on_close(self, telemetry: Telemetry) -> None:
        """The run ended; flush buffered output."""


class JsonlSink(Sink):
    """Writes each record as one JSON line the moment it is produced.

    ``path`` may be a filesystem path (opened and owned by the sink) or
    an already-open text stream.
    """

    def __init__(self, path):
        if hasattr(path, "write"):
            self._stream: IO = path
            self._owns = False
        else:
            self._stream = open(path, "w")
            self._owns = True

    def _emit(self, record: dict) -> None:
        self._stream.write(json.dumps(record) + "\n")

    def on_span(self, span: Span) -> None:
        record = {"type": "span"}
        record.update(span.to_dict())
        self._emit(record)

    def on_event(self, event: Event) -> None:
        record = {"type": "event"}
        record.update(event.to_dict())
        self._emit(record)

    def on_close(self, telemetry: Telemetry) -> None:
        for name in sorted(telemetry.counters):
            self._emit(
                {"type": "counter", "name": name, "value": telemetry.counters[name]}
            )
        for name in sorted(telemetry.gauges):
            self._emit(
                {"type": "gauge", "name": name, "value": telemetry.gauges[name]}
            )
        for name in sorted(telemetry.histograms):
            record = {"type": "histogram", "name": name}
            record.update(telemetry.histograms[name].snapshot())
            self._emit(record)
        self._stream.flush()
        if self._owns:
            self._stream.close()


class ChromeTraceSink(Sink):
    """Buffers the run into one Chrome trace-event JSON document.

    Spans become complete ("X") events, telemetry events become
    instants ("i"), and counter totals are emitted as one counter ("C")
    sample at end-of-run, so the viewer's counter track shows the final
    values.  Timestamps are microseconds on the telemetry clock.
    """

    PID = 1
    TID = 1

    def __init__(self, path):
        self._path = path
        self._events: List[dict] = []

    def on_span(self, span: Span) -> None:
        self._events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": self.PID,
                "tid": self.TID,
                "args": span.attrs,
            }
        )

    def on_event(self, event: Event) -> None:
        self._events.append(
            {
                "name": event.name,
                "cat": "event",
                "ph": "i",
                "ts": event.ts * 1e6,
                "pid": self.PID,
                "tid": self.TID,
                "s": "t",
                "args": event.attrs,
            }
        )

    def on_close(self, telemetry: Telemetry) -> None:
        end_ts = telemetry.now() * 1e6
        for name in sorted(telemetry.counters):
            self._events.append(
                {
                    "name": name,
                    "cat": "counter",
                    "ph": "C",
                    "ts": end_ts,
                    "pid": self.PID,
                    "tid": self.TID,
                    "args": {"value": telemetry.counters[name]},
                }
            )
        # Complete events arrive in close order; viewers want begin order.
        self._events.sort(key=lambda e: e["ts"])
        document = {
            "traceEvents": self._events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs"},
        }
        if hasattr(self._path, "write"):
            json.dump(document, self._path)
        else:
            with open(self._path, "w") as handle:
                json.dump(document, handle)


def summary_text(telemetry: Telemetry) -> str:
    """The human-readable end-of-run summary table."""
    from repro.report.tables import format_table

    sections: List[str] = []
    durations = telemetry.phase_durations()
    if durations:
        counts = {}
        for span in telemetry.spans:
            counts[span.name] = counts.get(span.name, 0) + 1
        rows = [
            (name, counts[name], f"{durations[name] * 1e3:.2f}")
            for name in sorted(durations, key=durations.get, reverse=True)
        ]
        sections.append(
            format_table(
                ["span", "count", "total ms"], rows, title="telemetry: spans"
            )
        )
    if telemetry.counters:
        rows = [
            (name, f"{telemetry.counters[name]:g}")
            for name in sorted(telemetry.counters)
        ]
        sections.append(
            format_table(["counter", "value"], rows, title="telemetry: counters")
        )
    if telemetry.gauges:
        rows = [
            (name, f"{telemetry.gauges[name]:g}")
            for name in sorted(telemetry.gauges)
        ]
        sections.append(
            format_table(["gauge", "value"], rows, title="telemetry: gauges")
        )
    if telemetry.histograms:
        rows = []
        for name in sorted(telemetry.histograms):
            hist = telemetry.histograms[name]
            rows.append(
                (
                    name,
                    hist.count,
                    f"{hist.sum:.3f}",
                    f"{hist.quantile(0.5):.3f}",
                    f"{hist.quantile(0.9):.3f}",
                    f"{hist.quantile(0.99):.3f}",
                )
            )
        sections.append(
            format_table(
                ["histogram", "count", "sum", "p50", "p90", "p99"],
                rows,
                title="telemetry: histograms",
            )
        )
    if telemetry.events:
        sections.append(f"telemetry: {len(telemetry.events)} events recorded")
    return "\n\n".join(sections) if sections else "telemetry: nothing recorded"


class SummarySink(Sink):
    """Prints :func:`summary_text` to ``stream`` when the run closes."""

    def __init__(self, stream: Optional[IO] = None):
        self._stream = stream

    def on_close(self, telemetry: Telemetry) -> None:
        import sys

        stream = self._stream or sys.stdout
        stream.write(summary_text(telemetry) + "\n")


def profile_text(telemetry: Telemetry) -> str:
    """The per-phase self-time profile: a table sorted by self time plus
    flamegraph "folded stacks" lines (``root;child self_ms``) that feed
    straight into ``flamegraph.pl`` or speedscope."""
    from repro.report.tables import format_table

    if not telemetry.spans:
        return "profile: no spans recorded"
    selfs = self_durations(telemetry.spans)
    inclusive = telemetry.phase_durations()
    counts: Dict[str, int] = {}
    for span in telemetry.spans:
        counts[span.name] = counts.get(span.name, 0) + 1
    total_self = sum(selfs.values()) or 1.0
    rows = [
        (
            name,
            counts[name],
            f"{selfs[name] * 1e3:.2f}",
            f"{inclusive[name] * 1e3:.2f}",
            f"{100.0 * selfs[name] / total_self:.1f}%",
        )
        for name in sorted(selfs, key=selfs.get, reverse=True)
    ]
    table = format_table(
        ["phase", "count", "self ms", "incl ms", "self %"],
        rows,
        title="profile: per-phase self time",
    )
    folded = folded_stacks(telemetry.spans)
    lines = [
        f"{stack} {folded[stack] * 1e3:.3f}"
        for stack in sorted(folded, key=folded.get, reverse=True)
    ]
    return table + "\n\nfolded stacks (ms):\n" + "\n".join(lines)


# --- metric exporters -------------------------------------------------

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    """A legal Prometheus metric name: prefixed, separators folded to
    underscores."""
    sanitized = _PROM_NAME_RE.sub("_", name)
    if prefix:
        sanitized = f"{prefix}_{sanitized}"
    if sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _resolve_snapshot(metrics: Union[MetricsRegistry, Telemetry, Dict]) -> Dict:
    if isinstance(metrics, dict):
        return metrics
    if isinstance(metrics, MetricsRegistry):
        return metrics.snapshot()
    registry = MetricsRegistry()
    registry.merge_telemetry(metrics)
    return registry.snapshot()


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:g}"


def prometheus_text(
    metrics: Union[MetricsRegistry, Telemetry, Dict], prefix: str = "repro"
) -> str:
    """Render a metrics snapshot in the Prometheus text exposition
    format (version 0.0.4): ``# TYPE`` headers, one sample per line,
    histograms expanded into cumulative ``_bucket{le=...}`` series plus
    ``_sum`` and ``_count``."""
    snapshot = _resolve_snapshot(metrics)
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(value)}")
    for name, hist in snapshot.get("histograms", {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in hist.get("buckets", []):
            cumulative = count
            le = "+Inf" if bound is None else _prom_value(bound)
            lines.append(f'{metric}_bucket{{le="{le}"}} {count}')
        if not hist.get("buckets") or hist["buckets"][-1][0] is not None:
            # Prometheus requires a closing +Inf bucket equal to count.
            lines.append(
                f'{metric}_bucket{{le="+Inf"}} {hist.get("count", cumulative)}'
            )
        lines.append(f"{metric}_sum {_prom_value(hist.get('sum', 0.0))}")
        lines.append(f"{metric}_count {hist.get('count', 0)}")
    return "\n".join(lines) + "\n" if lines else ""


def metrics_json(metrics: Union[MetricsRegistry, Telemetry, Dict]) -> str:
    """The canonical JSON export: sorted keys, newline-terminated;
    byte-identical for identical metric states."""
    snapshot = _resolve_snapshot(metrics)
    return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"
