"""Telemetry sinks: JSONL, Chrome trace-event, and summary table.

A sink receives finished spans and events as they close and gets one
``on_close`` call with the whole telemetry object at the end of the
run.  Sinks that need global state (the Chrome trace's counter series,
the summary's totals) buffer until ``on_close``.

* :class:`JsonlSink` -- one JSON object per line, written immediately;
  greppable and streamable.
* :class:`ChromeTraceSink` -- a ``chrome://tracing`` / Perfetto
  compatible JSON trace ("traceEvents" array of complete/instant/
  counter events); load the file in a trace viewer to see the phase
  timeline of a compilation.
* :class:`SummarySink` -- renders a human-readable end-of-run table of
  phase durations and counter totals to a stream.
"""

from __future__ import annotations

import json
from typing import IO, List, Optional

from repro.obs.telemetry import Event, Span, Telemetry

__all__ = ["ChromeTraceSink", "JsonlSink", "Sink", "SummarySink", "summary_text"]


class Sink:
    """Base sink: all hooks default to no-ops."""

    def on_span(self, span: Span) -> None:
        """A span finished."""

    def on_event(self, event: Event) -> None:
        """An event fired."""

    def on_close(self, telemetry: Telemetry) -> None:
        """The run ended; flush buffered output."""


class JsonlSink(Sink):
    """Writes each record as one JSON line the moment it is produced.

    ``path`` may be a filesystem path (opened and owned by the sink) or
    an already-open text stream.
    """

    def __init__(self, path):
        if hasattr(path, "write"):
            self._stream: IO = path
            self._owns = False
        else:
            self._stream = open(path, "w")
            self._owns = True

    def _emit(self, record: dict) -> None:
        self._stream.write(json.dumps(record) + "\n")

    def on_span(self, span: Span) -> None:
        record = {"type": "span"}
        record.update(span.to_dict())
        self._emit(record)

    def on_event(self, event: Event) -> None:
        record = {"type": "event"}
        record.update(event.to_dict())
        self._emit(record)

    def on_close(self, telemetry: Telemetry) -> None:
        for name in sorted(telemetry.counters):
            self._emit(
                {"type": "counter", "name": name, "value": telemetry.counters[name]}
            )
        for name in sorted(telemetry.gauges):
            self._emit(
                {"type": "gauge", "name": name, "value": telemetry.gauges[name]}
            )
        self._stream.flush()
        if self._owns:
            self._stream.close()


class ChromeTraceSink(Sink):
    """Buffers the run into one Chrome trace-event JSON document.

    Spans become complete ("X") events, telemetry events become
    instants ("i"), and counter totals are emitted as one counter ("C")
    sample at end-of-run, so the viewer's counter track shows the final
    values.  Timestamps are microseconds on the telemetry clock.
    """

    PID = 1
    TID = 1

    def __init__(self, path):
        self._path = path
        self._events: List[dict] = []

    def on_span(self, span: Span) -> None:
        self._events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": self.PID,
                "tid": self.TID,
                "args": span.attrs,
            }
        )

    def on_event(self, event: Event) -> None:
        self._events.append(
            {
                "name": event.name,
                "cat": "event",
                "ph": "i",
                "ts": event.ts * 1e6,
                "pid": self.PID,
                "tid": self.TID,
                "s": "t",
                "args": event.attrs,
            }
        )

    def on_close(self, telemetry: Telemetry) -> None:
        end_ts = telemetry.now() * 1e6
        for name in sorted(telemetry.counters):
            self._events.append(
                {
                    "name": name,
                    "cat": "counter",
                    "ph": "C",
                    "ts": end_ts,
                    "pid": self.PID,
                    "tid": self.TID,
                    "args": {"value": telemetry.counters[name]},
                }
            )
        # Complete events arrive in close order; viewers want begin order.
        self._events.sort(key=lambda e: e["ts"])
        document = {
            "traceEvents": self._events,
            "displayTimeUnit": "ms",
            "otherData": {"producer": "repro.obs"},
        }
        if hasattr(self._path, "write"):
            json.dump(document, self._path)
        else:
            with open(self._path, "w") as handle:
                json.dump(document, handle)


def summary_text(telemetry: Telemetry) -> str:
    """The human-readable end-of-run summary table."""
    from repro.report.tables import format_table

    sections: List[str] = []
    durations = telemetry.phase_durations()
    if durations:
        counts = {}
        for span in telemetry.spans:
            counts[span.name] = counts.get(span.name, 0) + 1
        rows = [
            (name, counts[name], f"{durations[name] * 1e3:.2f}")
            for name in sorted(durations, key=durations.get, reverse=True)
        ]
        sections.append(
            format_table(
                ["span", "count", "total ms"], rows, title="telemetry: spans"
            )
        )
    if telemetry.counters:
        rows = [
            (name, f"{telemetry.counters[name]:g}")
            for name in sorted(telemetry.counters)
        ]
        sections.append(
            format_table(["counter", "value"], rows, title="telemetry: counters")
        )
    if telemetry.gauges:
        rows = [
            (name, f"{telemetry.gauges[name]:g}")
            for name in sorted(telemetry.gauges)
        ]
        sections.append(
            format_table(["gauge", "value"], rows, title="telemetry: gauges")
        )
    if telemetry.events:
        sections.append(f"telemetry: {len(telemetry.events)} events recorded")
    return "\n\n".join(sections) if sections else "telemetry: nothing recorded"


class SummarySink(Sink):
    """Prints :func:`summary_text` to ``stream`` when the run closes."""

    def __init__(self, stream: Optional[IO] = None):
        self._stream = stream

    def on_close(self, telemetry: Telemetry) -> None:
        import sys

        stream = self._stream or sys.stdout
        stream.write(summary_text(telemetry) + "\n")
