"""Compilation telemetry: hierarchical spans, counters, and events.

The instrumentation layer every phase of the SPT pipeline reports
through.  Three primitives:

* **spans** -- wall-clock timed, named, hierarchically nested scopes
  (one per pipeline phase, one per analyzed loop, ...), each carrying
  an attribute dict;
* **counters / gauges** -- monotonically accumulated totals (search
  nodes, cost evaluations, interpreter instructions retired) and
  last-value measurements;
* **events** -- timestamped structured records (a transform failure, an
  SPT round's fork/commit/re-execution outcome).

Everything is routed to pluggable :mod:`repro.obs.sinks` and kept
in-memory for end-of-run reporting (``repro explain``, the summary
table).

The disabled path is a hard no-op: :data:`NULL_TELEMETRY` is a
singleton whose ``enabled`` attribute is ``False`` and whose methods do
nothing, so instrumented code guards any non-trivial work with one
attribute check::

    if telemetry.enabled:
        telemetry.count("interp.instructions", machine.executed)

and the common un-observed compilation pays only that check.  Span
scopes use ``with telemetry.span(...)``; when disabled this yields a
shared inert context manager without allocating.

Telemetry objects are deliberately not thread-safe: one compilation
drives one telemetry instance from one thread, matching the pipeline.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Event",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Span",
    "Telemetry",
]


class Span:
    """One finished (or in-flight) timed scope."""

    __slots__ = ("name", "attrs", "start", "end", "depth", "parent", "span_id")

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict] = None,
        start: float = 0.0,
        depth: int = 0,
        parent: Optional[int] = None,
        span_id: int = 0,
    ):
        self.name = name
        self.attrs = attrs or {}
        #: Start / end timestamps on the telemetry clock (seconds).
        self.start = start
        self.end: Optional[float] = None
        #: Nesting depth at open time (0 = root).
        self.depth = depth
        #: ``span_id`` of the enclosing span, or None.
        self.parent = parent
        self.span_id = span_id

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "span_id": self.span_id,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e3:.2f}ms, depth={self.depth})"


class Event:
    """One timestamped structured record."""

    __slots__ = ("name", "ts", "attrs", "span_id")

    def __init__(self, name: str, ts: float, attrs: Dict, span_id: Optional[int]):
        self.name = name
        self.ts = ts
        self.attrs = attrs
        #: The span open when the event fired (for trace grouping).
        self.span_id = span_id

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "ts": self.ts,
            "span_id": self.span_id,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return f"Event({self.name!r}, {self.attrs})"


class _SpanScope:
    """Context manager closing one span (re-entrant per span only)."""

    __slots__ = ("_telemetry", "span")

    def __init__(self, telemetry: "Telemetry", span: Span):
        self._telemetry = telemetry
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._telemetry._close_span(self.span)
        return False


class _NullScope:
    """Shared inert context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class Telemetry:
    """A live telemetry collector.

    ``detail=True`` additionally opts instrumented components into
    per-event accounting that is too hot for the default path (the
    interpreters attach a tracer that counts every delivered hook
    call); leave it off unless the run exists to be inspected.
    """

    enabled = True

    def __init__(self, sinks: Iterable = (), detail: bool = False, clock=None):
        self.sinks = list(sinks)
        self.detail = detail
        self._clock = clock or time.perf_counter
        self._epoch = self._clock()
        self._stack: List[Span] = []
        self._next_id = 1
        #: Finished spans, in close order.
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.events: List[Event] = []
        self._closed = False

    # -- clock ----------------------------------------------------------

    def now(self) -> float:
        """Seconds since this telemetry object was created."""
        return self._clock() - self._epoch

    # -- spans ----------------------------------------------------------

    def span(self, name: str, **attrs) -> _SpanScope:
        """Open a nested span: ``with telemetry.span("pass1"): ...``"""
        span = Span(
            name,
            attrs=attrs or None,
            start=self.now(),
            depth=len(self._stack),
            parent=self._stack[-1].span_id if self._stack else None,
            span_id=self._next_id,
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanScope(self, span)

    def _close_span(self, span: Span) -> None:
        span.end = self.now()
        # Tolerate mis-nested exits by popping through to the span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.spans.append(span)
        for sink in self.sinks:
            sink.on_span(span)

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- counters / gauges ----------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def merge_counters(self, counters: Dict[str, float]) -> None:
        """Accumulate a counter dict produced elsewhere.

        The batch driver's worker processes cannot share a Telemetry
        instance with the parent; they report plain ``{name: total}``
        dicts over the result queue and the driver folds them in here.
        """
        for name, n in counters.items():
            self.count(name, n)

    # -- events ----------------------------------------------------------

    def event(self, name: str, **attrs) -> None:
        current = self._stack[-1].span_id if self._stack else None
        event = Event(name, self.now(), attrs, current)
        self.events.append(event)
        for sink in self.sinks:
            sink.on_event(event)

    def record_degradation(self, record) -> None:
        """Count and emit one contained fault.

        ``record`` is a :class:`repro.resilience.DegradationRecord`
        (typed loosely here so the obs layer never imports the
        resilience package).  Every firewall routes through this, so
        ``resilience.contained`` is the one counter chaos CI asserts on.
        """
        self.count("resilience.contained")
        self.count(f"resilience.contained.{record.kind}")
        self.event("resilience.degradation", **record.to_dict())

    # -- lifecycle --------------------------------------------------------

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def close(self) -> None:
        """Close any open spans and flush every sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        while self._stack:
            self._close_span(self._stack[-1])
        for sink in self.sinks:
            sink.on_close(self)

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- introspection helpers -------------------------------------------

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def phase_durations(self) -> Dict[str, float]:
        """Total seconds per span name (the summary table's rows)."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals


class NullTelemetry:
    """The no-op telemetry every un-observed compilation runs with."""

    enabled = False
    detail = False
    sinks: tuple = ()
    spans: tuple = ()
    events: tuple = ()
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}

    def span(self, name: str, **attrs) -> _NullScope:
        return _NULL_SCOPE

    def count(self, name: str, n: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def merge_counters(self, counters: Dict[str, float]) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass

    def record_degradation(self, record) -> None:
        pass

    def close(self) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NullTelemetry()"


#: Shared disabled singleton; ``telemetry or NULL_TELEMETRY`` is the
#: canonical default for optional telemetry parameters.
NULL_TELEMETRY = NullTelemetry()
