"""Compilation telemetry: hierarchical spans, counters, and events.

The instrumentation layer every phase of the SPT pipeline reports
through.  Four primitives:

* **spans** -- wall-clock timed, named, hierarchically nested scopes
  (one per pipeline phase, one per analyzed loop, ...), each carrying
  an attribute dict;
* **counters / gauges** -- monotonically accumulated totals (search
  nodes, cost evaluations, interpreter instructions retired) and
  last-value measurements;
* **histograms / timers** -- log-bucketed distributions
  (:class:`Histogram`) with count/sum/min/max and estimated
  p50/p90/p99, fed directly via :meth:`Telemetry.observe` or through a
  :class:`Timer` scope; every closed span also auto-observes its
  duration into the ``span.<name>.ms`` histogram, so phase-latency
  distributions come for free;
* **events** -- timestamped structured records (a transform failure, an
  SPT round's fork/commit/re-execution outcome).

:class:`MetricsRegistry` aggregates counters/gauges/histograms from any
number of telemetry objects into one named metric set whose
``snapshot()`` is what the exporters in :mod:`repro.obs.sinks`
(Prometheus text, canonical JSON) and the run ledger
(:mod:`repro.obs.ledger`) serialize.

Everything is routed to pluggable :mod:`repro.obs.sinks` and kept
in-memory for end-of-run reporting (``repro explain``, the summary
table).

The disabled path is a hard no-op: :data:`NULL_TELEMETRY` is a
singleton whose ``enabled`` attribute is ``False`` and whose methods do
nothing, so instrumented code guards any non-trivial work with one
attribute check::

    if telemetry.enabled:
        telemetry.count("interp.instructions", machine.executed)

and the common un-observed compilation pays only that check.  Span
scopes use ``with telemetry.span(...)``; when disabled this yields a
shared inert context manager without allocating.

Telemetry objects are deliberately not thread-safe: one compilation
drives one telemetry instance from one thread, matching the pipeline.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Event",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "Timer",
    "folded_stacks",
    "self_durations",
]


class Span:
    """One finished (or in-flight) timed scope."""

    __slots__ = ("name", "attrs", "start", "end", "depth", "parent", "span_id")

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict] = None,
        start: float = 0.0,
        depth: int = 0,
        parent: Optional[int] = None,
        span_id: int = 0,
    ):
        self.name = name
        self.attrs = attrs or {}
        #: Start / end timestamps on the telemetry clock (seconds).
        self.start = start
        self.end: Optional[float] = None
        #: Nesting depth at open time (0 = root).
        self.depth = depth
        #: ``span_id`` of the enclosing span, or None.
        self.parent = parent
        self.span_id = span_id

    @property
    def duration(self) -> float:
        """Wall-clock seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "span_id": self.span_id,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e3:.2f}ms, depth={self.depth})"


class Event:
    """One timestamped structured record."""

    __slots__ = ("name", "ts", "attrs", "span_id")

    def __init__(self, name: str, ts: float, attrs: Dict, span_id: Optional[int]):
        self.name = name
        self.ts = ts
        self.attrs = attrs
        #: The span open when the event fired (for trace grouping).
        self.span_id = span_id

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "ts": self.ts,
            "span_id": self.span_id,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:
        return f"Event({self.name!r}, {self.attrs})"


class Histogram:
    """A fixed, log2-bucketed distribution of non-negative samples.

    Buckets are shared by every histogram: powers of two from ``2**-30``
    (~1 ns when measuring milliseconds) to ``2**40``, plus an overflow
    bucket.  The fixed geometry makes histograms mergeable without
    rebinning (worker processes, the registry) and keeps quantile
    estimates within one bucket -- a factor of two -- of the exact
    value; estimates are additionally clamped to the observed
    ``[min, max]``, so single-valued histograms report exactly.

    Zero and negative samples land in the lowest bucket (they occur
    when timers measure below clock resolution); ``sum``/``min``/
    ``max`` still record them exactly.
    """

    #: Bucket upper bounds, shared by all histograms.
    BOUNDS: Tuple[float, ...] = tuple(2.0 ** e for e in range(-30, 41))

    __slots__ = ("count", "sum", "min", "max", "_counts")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Sparse bucket-index -> sample count (index ``len(BOUNDS)``
        #: is the overflow bucket).
        self._counts: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect_left(self.BOUNDS, value)
        self._counts[index] = self._counts.get(index, 0) + 1

    def merge(self, other: "Histogram") -> None:
        """Fold ``other``'s samples into this histogram (same buckets)."""
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, n in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + n

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1); NaN when empty.

        The estimate is the geometric midpoint of the bucket the rank
        falls in, clamped to the observed ``[min, max]``.
        """
        if not self.count:
            return math.nan
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= rank:
                if index >= len(self.BOUNDS):
                    return self.max
                upper = self.BOUNDS[index]
                lower = self.BOUNDS[index - 1] if index > 0 else upper / 2.0
                estimate = math.sqrt(lower * upper)
                return min(max(estimate, self.min), self.max)
        return self.max

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` for the populated bucket
        range (Prometheus ``le`` semantics; overflow bound is +inf)."""
        if not self._counts:
            return []
        buckets: List[Tuple[float, int]] = []
        cumulative = 0
        lowest = min(self._counts)
        highest = max(self._counts)
        for index in range(lowest, highest + 1):
            cumulative += self._counts.get(index, 0)
            bound = (
                self.BOUNDS[index] if index < len(self.BOUNDS) else math.inf
            )
            buckets.append((bound, cumulative))
        return buckets

    def snapshot(self) -> Dict:
        """The canonical JSON-serializable summary of this histogram."""
        empty = not self.count
        return {
            "count": self.count,
            "sum": self.sum,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "p50": None if empty else self.quantile(0.50),
            "p90": None if empty else self.quantile(0.90),
            "p99": None if empty else self.quantile(0.99),
            "buckets": [
                [None if math.isinf(bound) else bound, count]
                for bound, count in self.cumulative_buckets()
            ],
        }

    def __repr__(self) -> str:
        if not self.count:
            return "Histogram(empty)"
        return (
            f"Histogram(n={self.count}, sum={self.sum:g}, "
            f"p50={self.quantile(0.5):g})"
        )


class Timer:
    """Context manager observing its elapsed milliseconds into a
    :class:`Histogram`::

        with Timer(registry.histogram("request_ms")):
            handle(request)

    ``Telemetry.time(name)`` builds one bound to the telemetry's own
    clock and histogram set.
    """

    __slots__ = ("histogram", "_clock", "_start")

    def __init__(self, histogram: Histogram, clock=None):
        self.histogram = histogram
        self._clock = clock or time.perf_counter
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.histogram.observe((self._clock() - self._start) * 1e3)
        return False


def self_durations(spans: Iterable["Span"]) -> Dict[str, float]:
    """Total *self* seconds per span name: each span's duration minus
    its direct children's durations.  Unlike
    :meth:`Telemetry.phase_durations` (inclusive totals, where nested
    phases double-count), self times sum to the root's duration, which
    makes them the right unit for cross-run comparison (the ledger and
    ``repro perf``)."""
    spans = list(spans)
    child_total: Dict[int, float] = {}
    for span in spans:
        if span.parent is not None:
            child_total[span.parent] = (
                child_total.get(span.parent, 0.0) + span.duration
            )
    totals: Dict[str, float] = {}
    for span in spans:
        self_time = span.duration - child_total.get(span.span_id, 0.0)
        totals[span.name] = totals.get(span.name, 0.0) + max(self_time, 0.0)
    return totals


def folded_stacks(spans: Iterable["Span"]) -> Dict[str, float]:
    """Flamegraph folded-stacks aggregation of a span tree.

    Returns ``{"root;child;grandchild": self_seconds}`` -- one entry
    per distinct span-name path, carrying the total *self* time spent
    there.  The text rendering (``name path <microseconds>`` per line)
    is what ``flamegraph.pl`` / speedscope consume."""
    spans = list(spans)
    by_id = {span.span_id: span for span in spans}
    child_total: Dict[int, float] = {}
    for span in spans:
        if span.parent is not None:
            child_total[span.parent] = (
                child_total.get(span.parent, 0.0) + span.duration
            )
    stacks: Dict[str, float] = {}
    for span in spans:
        names = [span.name]
        parent = span.parent
        while parent is not None:
            outer = by_id.get(parent)
            if outer is None:
                break
            names.append(outer.name)
            parent = outer.parent
        path = ";".join(reversed(names))
        self_time = span.duration - child_total.get(span.span_id, 0.0)
        stacks[path] = stacks.get(path, 0.0) + max(self_time, 0.0)
    return stacks


class MetricsRegistry:
    """A named set of counters, gauges, and histograms with one
    canonical ``snapshot()``.

    The registry is the aggregation point *above* individual telemetry
    runs: a long-lived process (the ``repro serve`` daemon) keeps one
    registry and folds each request's telemetry into it;
    one-shot CLI commands build a throwaway registry just to export.
    The exporters in :mod:`repro.obs.sinks` (:func:`~repro.obs.sinks.
    prometheus_text`, :func:`~repro.obs.sinks.metrics_json`) consume
    the snapshot, never the registry, so they also accept snapshots
    that crossed a process or wire boundary.
    """

    SCHEMA = "repro-metrics/1"

    def __init__(self):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    def count(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the histogram called ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        return histogram

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def timer(self, name: str) -> Timer:
        return Timer(self.histogram(name))

    def merge_telemetry(self, telemetry: "Telemetry") -> None:
        """Fold one finished run's counters, gauges, histograms, and
        per-phase span self-times (as ``span.self_ms.<name>`` gauges)
        into the registry."""
        for name, n in telemetry.counters.items():
            self.count(name, n)
        for name, value in telemetry.gauges.items():
            self.gauge(name, value)
        for name, histogram in telemetry.histograms.items():
            self.histogram(name).merge(histogram)
        for name, seconds in self_durations(telemetry.spans).items():
            self.gauge(f"span.self_ms.{name}", seconds * 1e3)

    def snapshot(self) -> Dict:
        """The canonical, JSON-serializable state of every metric."""
        return {
            "schema": self.SCHEMA,
            "counters": {
                name: self.counters[name] for name in sorted(self.counters)
            },
            "gauges": {
                name: self.gauges[name] for name in sorted(self.gauges)
            },
            "histograms": {
                name: self.histograms[name].snapshot()
                for name in sorted(self.histograms)
            },
        }

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, "
            f"{len(self.histograms)} histograms)"
        )


class _SpanScope:
    """Context manager closing one span (re-entrant per span only)."""

    __slots__ = ("_telemetry", "span")

    def __init__(self, telemetry: "Telemetry", span: Span):
        self._telemetry = telemetry
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._telemetry._close_span(self.span)
        return False


class _NullScope:
    """Shared inert context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class Telemetry:
    """A live telemetry collector.

    ``detail=True`` additionally opts instrumented components into
    per-event accounting that is too hot for the default path (the
    interpreters attach a tracer that counts every delivered hook
    call); leave it off unless the run exists to be inspected.
    """

    enabled = True

    def __init__(self, sinks: Iterable = (), detail: bool = False, clock=None):
        self.sinks = list(sinks)
        self.detail = detail
        self._clock = clock or time.perf_counter
        self._epoch = self._clock()
        self._stack: List[Span] = []
        self._next_id = 1
        #: Finished spans, in close order.
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.events: List[Event] = []
        self._closed = False

    # -- clock ----------------------------------------------------------

    def now(self) -> float:
        """Seconds since this telemetry object was created."""
        return self._clock() - self._epoch

    # -- spans ----------------------------------------------------------

    def span(self, name: str, **attrs) -> _SpanScope:
        """Open a nested span: ``with telemetry.span("pass1"): ...``"""
        span = Span(
            name,
            attrs=attrs or None,
            start=self.now(),
            depth=len(self._stack),
            parent=self._stack[-1].span_id if self._stack else None,
            span_id=self._next_id,
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanScope(self, span)

    def _close_span(self, span: Span) -> None:
        span.end = self.now()
        # Tolerate mis-nested exits by popping through to the span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.spans.append(span)
        # Every span feeds the per-phase latency distribution, so
        # histograms of pipeline phases need no extra instrumentation.
        self.observe(f"span.{span.name}.ms", span.duration * 1e3)
        for sink in self.sinks:
            sink.on_span(span)

    @property
    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- counters / gauges ----------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def merge_counters(self, counters: Dict[str, float]) -> None:
        """Accumulate a counter dict produced elsewhere.

        The batch driver's worker processes cannot share a Telemetry
        instance with the parent; they report plain ``{name: total}``
        dicts over the result queue and the driver folds them in here.
        """
        for name, n in counters.items():
            self.count(name, n)

    # -- histograms / timers ---------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram called ``name``."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def time(self, name: str) -> Timer:
        """A scope observing its elapsed milliseconds into ``name``::

            with telemetry.time("cache.lookup_ms"):
                record = cache.get(key)
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        return Timer(histogram, clock=self._clock)

    # -- events ----------------------------------------------------------

    def event(self, name: str, **attrs) -> None:
        current = self._stack[-1].span_id if self._stack else None
        event = Event(name, self.now(), attrs, current)
        self.events.append(event)
        for sink in self.sinks:
            sink.on_event(event)

    def record_degradation(self, record) -> None:
        """Count and emit one contained fault.

        ``record`` is a :class:`repro.resilience.DegradationRecord`
        (typed loosely here so the obs layer never imports the
        resilience package).  Every firewall routes through this, so
        ``resilience.contained`` is the one counter chaos CI asserts on.
        """
        self.count("resilience.contained")
        self.count(f"resilience.contained.{record.kind}")
        self.event("resilience.degradation", **record.to_dict())

    # -- lifecycle --------------------------------------------------------

    def add_sink(self, sink) -> None:
        self.sinks.append(sink)

    def close(self) -> None:
        """Close any open spans and flush every sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        while self._stack:
            self._close_span(self._stack[-1])
        for sink in self.sinks:
            sink.on_close(self)

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- introspection helpers -------------------------------------------

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def phase_durations(self) -> Dict[str, float]:
        """Total seconds per span name (the summary table's rows)."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def phase_self_durations(self) -> Dict[str, float]:
        """Total *self* seconds per span name (see :func:`self_durations`)."""
        return self_durations(self.spans)

    def folded_stacks(self) -> Dict[str, float]:
        """Flamegraph folded stacks of the span tree
        (see :func:`folded_stacks`)."""
        return folded_stacks(self.spans)


class NullTelemetry:
    """The no-op telemetry every un-observed compilation runs with."""

    enabled = False
    detail = False
    sinks: tuple = ()
    spans: tuple = ()
    events: tuple = ()
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Histogram] = {}

    def span(self, name: str, **attrs) -> _NullScope:
        return _NULL_SCOPE

    def count(self, name: str, n: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def time(self, name: str) -> _NullScope:
        return _NULL_SCOPE

    def merge_counters(self, counters: Dict[str, float]) -> None:
        pass

    def event(self, name: str, **attrs) -> None:
        pass

    def record_degradation(self, record) -> None:
        pass

    def close(self) -> None:
        pass

    def now(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NullTelemetry()"


#: Shared disabled singleton; ``telemetry or NULL_TELEMETRY`` is the
#: canonical default for optional telemetry parameters.
NULL_TELEMETRY = NullTelemetry()
