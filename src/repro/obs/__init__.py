"""Observability: compilation telemetry (spans, counters, events,
histograms), pluggable sinks, metric exporters, and the persistent run
ledger.  See ``docs/observability.md``."""

from repro.obs.ledger import LEDGER_SCHEMA, Ledger, host_token, make_record
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    Sink,
    SummarySink,
    metrics_json,
    profile_text,
    prometheus_text,
    summary_text,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Event,
    Histogram,
    MetricsRegistry,
    NullTelemetry,
    Span,
    Telemetry,
    Timer,
    folded_stacks,
    self_durations,
)

__all__ = [
    "ChromeTraceSink",
    "Event",
    "Histogram",
    "JsonlSink",
    "LEDGER_SCHEMA",
    "Ledger",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Sink",
    "Span",
    "SummarySink",
    "Telemetry",
    "Timer",
    "folded_stacks",
    "host_token",
    "make_record",
    "metrics_json",
    "profile_text",
    "prometheus_text",
    "self_durations",
    "summary_text",
]
