"""Observability: compilation telemetry (spans, counters, events) and
pluggable sinks.  See ``docs/observability.md``."""

from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    Sink,
    SummarySink,
    summary_text,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Event,
    NullTelemetry,
    Span,
    Telemetry,
)

__all__ = [
    "ChromeTraceSink",
    "Event",
    "JsonlSink",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Sink",
    "Span",
    "SummarySink",
    "Telemetry",
    "summary_text",
]
