"""The persistent run ledger: an append-only JSONL store of performance
records, one line per compile/simulate/batch/bench run.

The ledger is the system's quantitative memory.  Every record is keyed
by ``SptConfig.fingerprint()`` x workload x host, and carries the
phase self-times (aggregated from the span tree), the deterministic
search/cache/trace counters, any degradation records, and -- for
simulate runs -- the simulated cycle count.  ``repro perf diff`` and
``repro perf check`` (see :mod:`repro.perf`) align records on that key
and turn the ledger into a machine-checked regression baseline.

Design notes:

* **Append-only.**  Records are never rewritten; each append is a
  single ``O_APPEND`` write under an exclusive ``flock``, so concurrent
  writers (parallel CI shards, batch workers) interleave whole lines
  and never corrupt each other.
* **Schema-versioned.**  Every line embeds ``"schema":
  "repro-ledger/1"``; loaders skip lines they cannot parse or whose
  major version they do not understand, so a newer writer never bricks
  an older reader.
* **Relocatable.**  The default store lives under ``.repro/ledger/``
  next to the working directory; ``REPRO_LEDGER_DIR`` overrides it
  (used by CI to point at a committed golden baseline).
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.util.atomicio import append_line

__all__ = [
    "LEDGER_FILENAME",
    "LEDGER_SCHEMA",
    "Ledger",
    "host_token",
    "make_record",
]

LEDGER_SCHEMA = "repro-ledger/1"
LEDGER_FILENAME = "runs.jsonl"
DEFAULT_LEDGER_DIR = os.path.join(".repro", "ledger")

def host_token() -> str:
    """A stable identity for "the machine these wall-times came from".

    Wall-clock comparisons between records are only meaningful when
    their host tokens match; deterministic metrics (simulated cycles,
    search-node counters) compare across hosts.
    """
    return "{}/{}/py{}".format(
        socket.gethostname(),
        platform.machine() or "unknown",
        platform.python_version(),
    )


def _schema_major(schema: str) -> Optional[str]:
    if not isinstance(schema, str) or "/" not in schema:
        return None
    name, _, version = schema.rpartition("/")
    return f"{name}/{version.split('.', 1)[0]}"


def make_record(
    kind: str,
    workload: Dict,
    fingerprint: str,
    *,
    wall_s: Optional[float] = None,
    telemetry=None,
    cycles: Optional[int] = None,
    degradations: Optional[List[Dict]] = None,
    extra: Optional[Dict] = None,
) -> Dict:
    """Build one schema-valid ledger record.

    ``workload`` identifies what ran (at minimum a ``name``; compile
    records add ``sha256``/``args``/``entry``).  When ``telemetry`` is
    an observing :class:`~repro.obs.telemetry.Telemetry`, its span tree
    is aggregated into per-phase self-times and its counters/gauges are
    embedded verbatim.
    """
    record: Dict = {
        "schema": LEDGER_SCHEMA,
        "kind": kind,
        "ts": time.time(),
        "host": host_token(),
        "workload": dict(workload),
        "fingerprint": fingerprint,
        "wall_s": wall_s,
        "phase_self_ms": {},
        "counters": {},
        "gauges": {},
        "cycles": cycles,
        "degradations": list(degradations or []),
        "extra": dict(extra or {}),
    }
    if telemetry is not None and getattr(telemetry, "enabled", False):
        from repro.obs.telemetry import self_durations

        record["phase_self_ms"] = {
            name: seconds * 1e3
            for name, seconds in sorted(
                self_durations(telemetry.spans).items()
            )
        }
        record["counters"] = dict(sorted(telemetry.counters.items()))
        record["gauges"] = dict(sorted(telemetry.gauges.items()))
    digest = hashlib.sha256(
        json.dumps(record, sort_keys=True, default=str).encode()
    ).hexdigest()
    record["run_id"] = digest[:12]
    return record


class Ledger:
    """One append-only JSONL run store rooted at ``directory``.

    ``directory`` defaults to ``$REPRO_LEDGER_DIR`` or
    ``.repro/ledger``; it is created on first append.
    """

    def __init__(self, directory: Union[str, Path, None] = None):
        if directory is None:
            directory = os.environ.get("REPRO_LEDGER_DIR", DEFAULT_LEDGER_DIR)
        path = Path(directory)
        if path.suffix == ".jsonl" or path.is_file():
            # A direct ledger file (e.g. a committed baseline).
            self.directory = path.parent
            self.path = path
        else:
            self.directory = path
            self.path = path / LEDGER_FILENAME

    # -- writing -------------------------------------------------------

    def append(self, record: Dict) -> str:
        """Atomically append one record; returns its ``run_id``.

        The whole line is written by a single ``write`` on an
        ``O_APPEND`` descriptor under an exclusive ``flock``
        (:func:`repro.util.atomicio.append_line`), so concurrent
        appenders never interleave partial lines.
        """
        if "run_id" not in record:
            raise ValueError("ledger records need a run_id (use make_record)")
        if record.get("schema") != LEDGER_SCHEMA:
            raise ValueError(
                f"record schema {record.get('schema')!r} != {LEDGER_SCHEMA!r}"
            )
        append_line(str(self.path), json.dumps(record, sort_keys=True))
        return record["run_id"]

    # -- reading -------------------------------------------------------

    def load(self) -> List[Dict]:
        """All parseable records, oldest first.  Corrupt or
        foreign-schema lines are skipped, never fatal."""
        if not self.path.exists():
            return []
        records: List[Dict] = []
        wanted = _schema_major(LEDGER_SCHEMA)
        with open(self.path, encoding="utf-8", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(record, dict):
                    continue
                if _schema_major(record.get("schema", "")) != wanted:
                    continue
                records.append(record)
        return records

    def runs(
        self,
        kind: Optional[str] = None,
        workload: Optional[str] = None,
        fingerprint: Optional[str] = None,
        host: Optional[str] = None,
    ) -> List[Dict]:
        """Records filtered by kind / workload name / config
        fingerprint / host, oldest first."""
        out = []
        for record in self.load():
            if kind is not None and record.get("kind") != kind:
                continue
            if (
                workload is not None
                and record.get("workload", {}).get("name") != workload
            ):
                continue
            if (
                fingerprint is not None
                and record.get("fingerprint") != fingerprint
            ):
                continue
            if host is not None and record.get("host") != host:
                continue
            out.append(record)
        return out

    def resolve(self, ref: str) -> Dict:
        """A record by reference: ``@-1`` / ``@0``-style position, or a
        (unique) ``run_id`` prefix."""
        records = self.load()
        if not records:
            raise LookupError(f"ledger {self.path} is empty")
        if ref.startswith("@"):
            try:
                index = int(ref[1:])
            except ValueError:
                raise LookupError(f"bad ledger position {ref!r}") from None
            try:
                return records[index]
            except IndexError:
                raise LookupError(
                    f"ledger position {ref} out of range "
                    f"({len(records)} records)"
                ) from None
        matches = [
            r for r in records if str(r.get("run_id", "")).startswith(ref)
        ]
        if not matches:
            raise LookupError(f"no ledger run matches {ref!r}")
        distinct = {r["run_id"] for r in matches}
        if len(distinct) > 1:
            raise LookupError(
                f"ambiguous run reference {ref!r}: matches "
                + ", ".join(sorted(distinct))
            )
        return matches[-1]

    def __len__(self) -> int:
        return len(self.load())

    def __repr__(self) -> str:
        return f"Ledger({str(self.path)!r})"
