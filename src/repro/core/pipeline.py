"""The two-pass SPT compilation driver (paper §3.2, Figure 4).

Pass 1 ("explore"): unroll, build SSA, profile, and for every loop of
every function -- at every nesting level -- build the annotated
dependence graph, identify violation candidates, and search the optimal
SPT partition.  Nothing is transformed yet; the result is a list of
:class:`~repro.core.selection.LoopCandidate` records.

An optional SVP round sits between the passes: loops rejected for high
misspeculation cost get their critical violation candidates value-
profiled, and predictable ones are rewritten with software value
prediction (§7.2), after which the affected loops are re-analyzed.

Pass 2 ("commit"): select the good SPT loops globally (§6.1) and apply
the SPT transformation (§6.2) to exactly those.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.depgraph import LoopDepGraph, build_dep_graph
from repro.analysis.loops import Loop, LoopNest
from repro.analysis.modref import ModRefSummaries
from repro.core.config import SptConfig
from repro.core.costgraph import build_cost_graph
from repro.core.partition import PartitionResult, find_optimal_partition
from repro.core.privatize import privatize
from repro.core.selection import (
    LoopCandidate,
    RejectionReason,
    category_histogram,
    select_spt_loops,
)
from repro.core.svp import SvpInfo, apply_svp, critical_candidates
from repro.core.transform import (
    SptLoopInfo,
    TransformError,
    check_transformable,
    transform_loop,
)
from repro.core.unroll import UnrollReport, unroll_function
from repro.core.violation import find_violation_candidates
from repro.ir.function import Module
from repro.obs.telemetry import NULL_TELEMETRY
from repro.profiling.compiled import make_machine
from repro.resilience.containment import run_contained
from repro.resilience.degradation import DegradationRecord, KIND_SEARCH_BUDGET
from repro.resilience.ladder import RUNG_FULL, RUNG_SKIP, ladder_rungs
from repro.profiling.dep_profile import DependenceProfile
from repro.profiling.edge_profile import EdgeProfile
from repro.profiling.interp import Machine
from repro.profiling.value_profile import ValueProfile
from repro.ssa.construct import build_ssa
from repro.ssa.optimize import optimize


@dataclass
class Workload:
    """How to run the program for profiling."""

    entry: str = "main"
    args: tuple = ()
    intrinsics: Dict[str, Callable] = field(default_factory=dict)
    fuel: int = 50_000_000


class CompilationResult:
    """Everything the two-pass compilation produced."""

    def __init__(self, module: Module, config: SptConfig):
        self.module = module
        self.config = config
        #: Every loop candidate, classified.
        self.candidates: List[LoopCandidate] = []
        #: The selected (and successfully transformed) SPT loops.
        self.selected: List[LoopCandidate] = []
        self.spt_loops: List[SptLoopInfo] = []
        self.unroll_reports: Dict[str, UnrollReport] = {}
        self.svp_infos: List[SvpInfo] = []
        self.edge_profile: Optional[EdgeProfile] = None
        self.dep_profile: Optional[DependenceProfile] = None
        #: §9 future work: beneficial intra-iteration splits found for
        #: loops whose bodies exceeded the SPT size limit.
        self.region_splits: List = []
        #: (func_name, header) -> PartitionResult for the final analysis.
        self.partitions: Dict[Tuple[str, str], PartitionResult] = {}
        #: Every fault the phase firewalls contained (and every budget
        #: the anytime machinery exhausted), in pipeline order.  A
        #: non-empty list means the compilation degraded somewhere but
        #: still completed.
        self.degradations: List[DegradationRecord] = []
        #: Trace-compilation statistics of the profiling run
        #: ("func:entry" -> counters), when ``config.trace_interp`` was
        #: on.  Deliberately NOT part of :meth:`to_dict`: the batch
        #: manifest embeds that dict, and manifests must stay
        #: byte-identical whether or not hot traces were engaged.
        self.trace_stats: Dict[str, Dict] = {}

    def category_histogram(self) -> Dict[str, int]:
        return category_histogram(self.candidates)

    def spt_loop_keys(self) -> List[Tuple[str, str]]:
        return [(c.func_name, c.loop.header) for c in self.selected]

    @staticmethod
    def candidate_dict(c: LoopCandidate) -> Dict:
        """The JSON-serializable record for one loop candidate.

        This is the unit the batch result cache stores per loop, so it
        must be deterministic: floats are rounded, all collections are
        emitted in a fixed order."""
        entry = {
            "function": c.func_name,
            "header": c.loop.header,
            "category": c.category,
            "dynamic_body_size": round(c.dynamic_body_size, 2),
            "trip_count": round(c.trip_count, 2),
            "selected": c.selected,
            "svp_applied": c.svp_applied,
        }
        if c.rejection is not None:
            entry["rejection"] = c.rejection.to_dict()
        if c.transform_error is not None:
            entry["transform_error"] = c.transform_error
        if c.degradation is not None:
            entry["degradation"] = c.degradation.to_dict()
        if c.partition is not None and not c.partition.skipped_too_many_vcs:
            entry["misspeculation_cost"] = round(c.partition.cost, 4)
            entry["prefork_size"] = round(c.partition.prefork_size, 2)
            entry["violation_candidates"] = len(c.partition.candidates)
            entry["search_nodes"] = c.partition.search_nodes
            entry["cost_evaluations"] = c.partition.evaluations
            entry["cost_cache_hit_rate"] = round(
                c.partition.cache_hit_rate, 4
            )
            entry["cost_node_visits"] = c.partition.cost_node_visits
            entry["optimal"] = c.partition.optimal
        return entry

    def loop_records(self) -> List[Dict]:
        """Per-loop serialized records (candidate + full partition).

        One record per analyzed loop, each self-contained so the batch
        cache (:mod:`repro.batch.cache`) can content-address them
        individually."""
        records = []
        for c in self.candidates:
            record = {
                "function": c.func_name,
                "header": c.loop.header,
                "candidate": self.candidate_dict(c),
            }
            if c.partition is not None:
                record["partition"] = c.partition.to_dict()
            records.append(record)
        return records

    def to_dict(self) -> Dict:
        """A JSON-serializable summary (for tooling and the CLI)."""
        candidates = [self.candidate_dict(c) for c in self.candidates]
        return {
            "candidates": candidates,
            "selected": [
                {"function": f, "header": h} for f, h in self.spt_loop_keys()
            ],
            "categories": self.category_histogram(),
            "svp": [
                {
                    "variable": info.var_base,
                    "stride": info.stride,
                    "hit_rate": round(info.hit_rate, 4),
                }
                for info in self.svp_infos
            ],
            "region_splits": [split.to_dict() for split in self.region_splits],
            "degradations": [d.to_dict() for d in self.degradations],
            "unrolled": {
                name: report.unrolled
                for name, report in self.unroll_reports.items()
                if report.unrolled
            },
        }

    def __repr__(self) -> str:
        return (
            f"CompilationResult({len(self.selected)}/"
            f"{len(self.candidates)} loops selected)"
        )


def _profile(
    module: Module, workload: Workload, tracers, fast: bool = True,
    trace: bool = False, telemetry=NULL_TELEMETRY, watchdog=None,
) -> Dict[str, Dict]:
    """Run one profiling workload; returns the trace-compilation report
    (empty when hot traces were off or never engaged)."""
    machine = make_machine(
        module, fuel=workload.fuel, fast=fast, trace=trace and fast,
        telemetry=telemetry, watchdog=watchdog,
    )
    for name, fn in workload.intrinsics.items():
        machine.register_intrinsic(name, fn)
    for tracer in tracers:
        machine.add_tracer(tracer)
    machine.run(workload.entry, list(workload.args))
    report = getattr(machine, "trace_report", None)
    traces = report() if report is not None else {}
    if not traces:
        return {}
    return {"executed": machine.executed, "traces": traces}


def _analyze_loop(
    module: Module,
    func,
    loop: Loop,
    config: SptConfig,
    edge_profile: EdgeProfile,
    dep_profile: Optional[DependenceProfile],
    modref: Optional[ModRefSummaries],
    telemetry=NULL_TELEMETRY,
    rung: str = RUNG_FULL,
    phase_checkpoints=None,
    prebuilt_graph: Optional[LoopDepGraph] = None,
) -> Tuple[Optional[LoopCandidate], Optional[LoopDepGraph],
           Optional[DegradationRecord]]:
    """Run the pass-1 core (Figure 3) on one loop.

    Returns ``(candidate, graph, None)`` on success or
    ``(None, graph-or-None, record)`` when a phase firewall contained a
    fault -- the ladder driver decides whether to retry cheaper.

    ``prebuilt_graph`` is a dependence graph a previous (faulted) rung
    already built for this loop: the dep-graph phase is then skipped --
    sound because ladder rungs only vary search-phase knobs.
    ``phase_checkpoints`` is an optional :class:`repro.checkpoint.
    phases.PhaseCheckpointStore`; when set, a completed search restores
    from it and a fresh search is durably recorded into it."""
    with telemetry.span("analyze_loop", function=func.name, loop=loop.header):
        return _analyze_loop_inner(
            module, func, loop, config, edge_profile, dep_profile, modref,
            telemetry, rung, phase_checkpoints, prebuilt_graph,
        )


def _analyze_loop_inner(
    module: Module,
    func,
    loop: Loop,
    config: SptConfig,
    edge_profile: EdgeProfile,
    dep_profile: Optional[DependenceProfile],
    modref: Optional[ModRefSummaries],
    telemetry=NULL_TELEMETRY,
    rung: str = RUNG_FULL,
    phase_checkpoints=None,
    prebuilt_graph: Optional[LoopDepGraph] = None,
) -> Tuple[Optional[LoopCandidate], Optional[LoopDepGraph],
           Optional[DegradationRecord]]:
    loop_key = f"{func.name}:{loop.header}"
    rung_label = None if rung == RUNG_FULL else rung

    # -- dep-graph phase (firewalled): CFG, trip counts, the
    # transformability check, and the annotated dependence graph.
    def _build(watchdog):
        cfg = CFG.build(func)
        trip = edge_profile.trip_count(func, loop, cfg)
        iterations = edge_profile.loop_iterations(func, loop, cfg)
        if prebuilt_graph is not None:
            # A previous rung already built (and transformability-
            # checked) this loop's graph; only the trip statistics are
            # recomputed.
            return prebuilt_graph, trip, iterations, None
        try:
            check_transformable(func, loop, cfg)
        except TransformError as exc:
            # An untransformable loop is an expected §6.1 category, not
            # a fault -- report it as data, don't let the firewall
            # degrade it.
            return None, trip, iterations, str(exc)
        dep_view = dep_profile.view(func.name, loop) if dep_profile else None
        graph = build_dep_graph(
            module,
            func,
            loop,
            edge_profile=edge_profile,
            dep_profile=dep_view,
            static_mem_prob=config.static_mem_prob,
            static_call_prob=config.static_call_prob,
            modref=modref,
        )
        if config.enable_privatization:
            privatize(graph)
        return graph, trip, iterations, None

    built, record = run_contained(
        "depgraph", _build, telemetry=telemetry,
        deadline_ms=config.phase_deadline_ms, loop=loop_key, rung=rung,
    )
    if record is not None:
        return None, None, record
    graph, trip, iterations, transform_error = built
    if graph is None:
        candidate = LoopCandidate(
            func.name,
            loop,
            partition=None,
            dynamic_body_size=loop.body_size(func),
            trip_count=trip,
            total_iterations=iterations,
            irregular=True,
        )
        candidate.transform_error = transform_error
        if telemetry.enabled:
            telemetry.count("pipeline.loops_irregular")
            telemetry.event(
                "transform.rejected",
                function=func.name,
                loop=loop.header,
                stage="check_transformable",
                error=transform_error,
            )
        return candidate, None, None

    # -- cost-graph + partition-search phase (firewalled) ----------------
    def _search(watchdog):
        dynamic_size = sum(
            info.instr.cost * info.reach for info in graph.info.values()
        )
        if phase_checkpoints is not None:
            restored = phase_checkpoints.load_search(
                func, loop.header, config, graph
            )
            if restored is not None:
                return dynamic_size, restored, True
        partition = find_optimal_partition(graph, config, telemetry=telemetry)
        return dynamic_size, partition, False

    searched, record = run_contained(
        "search", _search, telemetry=telemetry,
        deadline_ms=config.phase_deadline_ms, loop=loop_key, rung=rung,
    )
    if record is not None:
        return None, graph, record
    dynamic_size, partition, restored = searched
    if phase_checkpoints is not None and not restored:
        # Durably record the completed search (outside the firewall:
        # save suppresses its own failures) so a crashed/killed compile
        # resumes here instead of searching this loop again.
        phase_checkpoints.save_search(func, loop.header, config, partition)

    candidate = LoopCandidate(
        func.name,
        loop,
        partition=partition,
        dynamic_body_size=dynamic_size,
        trip_count=trip,
        total_iterations=iterations,
    )
    if partition.budget_exhausted or partition.deadline_exhausted:
        # The anytime machinery truncated the search: the partition is
        # legal but possibly sub-optimal.  Surface that as a
        # search_budget degradation without changing the candidate's
        # selection category.
        budget_record = DegradationRecord(
            phase="search",
            kind=KIND_SEARCH_BUDGET,
            message=(
                "anytime deadline expired; best-so-far partition kept"
                if partition.deadline_exhausted
                else "node budget exhausted; best-so-far partition kept"
            ),
            loop=loop_key,
            rung=rung_label,
        )
        candidate.degradation = budget_record
        telemetry.record_degradation(budget_record)
    if telemetry.enabled:
        telemetry.count("pipeline.loops_analyzed")
    return candidate, graph, None


def _analyze_loop_resilient(
    module: Module,
    func,
    loop: Loop,
    config: SptConfig,
    edge_profile: EdgeProfile,
    dep_profile: Optional[DependenceProfile],
    modref: Optional[ModRefSummaries],
    telemetry=NULL_TELEMETRY,
    phase_checkpoints=None,
) -> Tuple[LoopCandidate, Optional[LoopDepGraph], List[DegradationRecord]]:
    """The degradation-ladder driver around :func:`_analyze_loop`.

    Retries a faulted loop analysis on successively cheaper rungs
    (full → no_incremental → small_budget) and finally skips the loop
    -- the sequential fallback the SPT model guarantees is always
    legal.  Never raises (:data:`~repro.resilience.containment.
    PASSTHROUGH` excepted); always returns a candidate, plus every
    degradation record the attempts produced.

    Phase outputs checkpoint across rungs: a dependence graph built by
    a rung whose *search* then faulted is handed to the next rung
    instead of being rebuilt, and (with ``phase_checkpoints``) a
    completed search is durably recorded so a crashed process resumes
    past it."""
    loop_key = f"{func.name}:{loop.header}"
    records: List[DegradationRecord] = []
    built_graph: Optional[LoopDepGraph] = None
    for rung, rung_config in ladder_rungs(config):
        candidate, graph, record = _analyze_loop(
            module, func, loop, rung_config, edge_profile, dep_profile,
            modref, telemetry, rung=rung,
            phase_checkpoints=phase_checkpoints, prebuilt_graph=built_graph,
        )
        if graph is not None and built_graph is None:
            built_graph = graph
            if record is not None and telemetry.enabled:
                telemetry.count("resilience.ladder.graph_reused")
        if record is None:
            if candidate.degradation is not None:
                records.append(candidate.degradation)
            elif rung != RUNG_FULL:
                candidate.degradation = records[-1] if records else None
            if rung != RUNG_FULL and telemetry.enabled:
                telemetry.count("resilience.ladder.recovered")
                telemetry.event(
                    "resilience.ladder",
                    loop=loop_key,
                    rung=rung,
                    outcome="recovered",
                )
            return candidate, graph, records
        records.append(record)
        if telemetry.enabled:
            telemetry.count(f"resilience.ladder.{rung}")
            telemetry.event(
                "resilience.ladder",
                loop=loop_key,
                rung=rung,
                outcome="faulted",
                kind=record.kind,
            )
    # Every rung faulted: the loop stays sequential.
    if telemetry.enabled:
        telemetry.count(f"resilience.ladder.{RUNG_SKIP}")
        telemetry.event(
            "resilience.ladder", loop=loop_key, rung=RUNG_SKIP,
            outcome="skipped",
        )
    try:
        cfg = CFG.build(func)
        trip = edge_profile.trip_count(func, loop, cfg)
        iterations = edge_profile.loop_iterations(func, loop, cfg)
        body = float(loop.body_size(func))
    except Exception:  # noqa: BLE001 - last-resort fallback values
        trip, iterations, body = 0.0, 0, 0.0
    candidate = LoopCandidate(
        func.name,
        loop,
        partition=None,
        dynamic_body_size=body,
        trip_count=trip,
        total_iterations=iterations,
    )
    candidate.degradation = records[-1] if records else None
    return candidate, None, records


def compile_spt(
    module: Module, config: SptConfig, workload: Workload, telemetry=None,
    phase_checkpoints=None,
) -> CompilationResult:
    """Run the full two-pass SPT compilation on ``module`` in place.

    ``telemetry`` is an optional :class:`repro.obs.Telemetry`; every
    phase opens a span on it, each analyzed loop gets a child span, and
    the search/profiling layers below report counters.  The caller owns
    the telemetry lifecycle (``close()`` flushes the sinks).

    ``phase_checkpoints`` is an optional :class:`repro.checkpoint.
    phases.PhaseCheckpointStore`: completed partition searches are
    durably recorded there and restored on a re-run, so a compile that
    crashed or hung mid-search resumes from its last finished phase
    (see docs/checkpointing.md)."""
    telemetry = telemetry or NULL_TELEMETRY
    result = CompilationResult(module, config)

    # -- loop preprocessing: unrolling (pre-SSA, §7.1) -------------------
    with telemetry.span("unroll"):
        for func in module.functions.values():
            result.unroll_reports[func.name] = unroll_function(func, config)
        if telemetry.enabled:
            telemetry.count(
                "unroll.loops_unrolled",
                sum(
                    len(r.unrolled) for r in result.unroll_reports.values()
                ),
            )

    # -- SSA construction + cleanup (our WOPT stand-in) -----------------
    with telemetry.span("ssa"):
        for func in module.functions.values():
            build_ssa(func)
            optimize(func)

    # -- profiling runs -----------------------------------------------------
    with telemetry.span(
        "profile", entry=workload.entry, fast=config.fast_interp
    ):
        edge_profile = EdgeProfile()
        tracers = [edge_profile]
        dep_profile = None
        if config.enable_dep_profiling:
            dep_profile = DependenceProfile(module)
            tracers.append(dep_profile)
        # Firewalled: a profiling fault (fuel exhaustion, interpreter
        # error, injected chaos) leaves partial profiles behind -- loops
        # the run never reached profile as never-entered, which the
        # selection criteria reject safely -- instead of aborting.
        trace_stats, record = run_contained(
            "profile",
            lambda wd: _profile(
                module, workload, tracers, fast=config.fast_interp,
                trace=config.trace_interp, telemetry=telemetry, watchdog=wd,
            ),
            telemetry=telemetry,
            deadline_ms=config.phase_deadline_ms,
        )
        if record is not None:
            result.degradations.append(record)
        if trace_stats:
            result.trace_stats = trace_stats
        result.edge_profile = edge_profile
        result.dep_profile = dep_profile

    modref = ModRefSummaries(module) if config.enable_modref_summaries else None

    # -- pass 1: evaluate every nesting level of every loop ------------------
    graphs: Dict[Tuple[str, str], LoopDepGraph] = {}
    candidates: List[LoopCandidate] = []
    with telemetry.span("pass1"):
        for func in module.functions.values():
            nest = LoopNest.build(func)
            for loop in nest.loops:
                candidate, graph, records = _analyze_loop_resilient(
                    module, func, loop, config, edge_profile, dep_profile,
                    modref, telemetry, phase_checkpoints=phase_checkpoints,
                )
                result.degradations.extend(records)
                candidates.append(candidate)
                if graph is not None:
                    graphs[(func.name, loop.header)] = graph

    # -- SVP round (§7.2) ------------------------------------------------------
    if config.enable_svp:
        with telemetry.span("svp"):
            # Firewalled as a whole: an SVP-round fault keeps the
            # pass-1 candidates (already legal) instead of aborting.
            svp_out, record = run_contained(
                "svp",
                lambda wd: _svp_round(
                    module,
                    config,
                    workload,
                    candidates,
                    graphs,
                    edge_profile,
                    dep_profile,
                    modref,
                    result,
                    telemetry,
                    phase_checkpoints,
                ),
                telemetry=telemetry,
                deadline_ms=config.phase_deadline_ms,
            )
            if record is not None:
                result.degradations.append(record)
            else:
                candidates, graphs = svp_out

    result.candidates = candidates
    for candidate in candidates:
        if candidate.partition is not None:
            result.partitions[
                (candidate.func_name, candidate.loop.header)
            ] = candidate.partition

    # -- §9 future work: region splits for too-large bodies ------------------
    if config.enable_region_speculation:
        from repro.core.regions import choose_region_split
        from repro.core.selection import CATEGORY_BODY_TOO_LARGE, classify

        with telemetry.span("region_splits"):
            for candidate in candidates:
                if candidate.partition is None or candidate.irregular:
                    continue
                if classify(candidate, config) != CATEGORY_BODY_TOO_LARGE:
                    continue
                graph = graphs.get((candidate.func_name, candidate.loop.header))
                if graph is None:
                    continue
                func = module.function(candidate.func_name)
                split, record = run_contained(
                    "region_splits",
                    lambda wd, f=func, c=candidate, g=graph:
                        choose_region_split(f, c.loop, g, config),
                    telemetry=telemetry,
                    deadline_ms=config.phase_deadline_ms,
                    loop=candidate.key,
                )
                if record is not None:
                    result.degradations.append(record)
                    continue
                if split is not None:
                    result.region_splits.append(split)
                    if telemetry.enabled:
                        telemetry.count("regions.splits_found")

    # -- pass 2: global selection + transformation -----------------------------
    with telemetry.span("selection"):
        selected = select_spt_loops(candidates, config)
        if telemetry.enabled:
            telemetry.count("selection.candidates", len(candidates))
            telemetry.count("selection.selected", len(selected))
            for candidate in candidates:
                if candidate.rejection is not None:
                    telemetry.event(
                        "selection.rejected",
                        function=candidate.func_name,
                        loop=candidate.loop.header,
                        category=candidate.category,
                        **candidate.rejection.to_dict(),
                    )

    with telemetry.span("transform"):
        for candidate in selected:
            func = module.function(candidate.func_name)
            graph = graphs.get((candidate.func_name, candidate.loop.header))
            # Firewalled per loop: any transform failure -- the
            # expected TransformError or anything else -- deselects
            # exactly this loop.  The loop keeps its pass-1 category
            # (the histogram still reflects the selection decision);
            # the failure itself is recorded on the candidate.
            info, record = run_contained(
                "transform",
                lambda wd, f=func, c=candidate, g=graph: transform_loop(
                    module, f, c.loop, c.partition, g
                ),
                telemetry=telemetry,
                deadline_ms=config.phase_deadline_ms,
                loop=candidate.key,
            )
            if record is not None:
                candidate.selected = False
                candidate.transform_error = record.message
                candidate.rejection = RejectionReason(
                    "transform_error", detail=record.message
                )
                candidate.degradation = record
                result.degradations.append(record)
                if telemetry.enabled:
                    telemetry.count("transform.failed")
                    telemetry.event(
                        "transform.rejected",
                        function=candidate.func_name,
                        loop=candidate.loop.header,
                        stage="transform_loop",
                        error=record.message,
                    )
                continue
            result.spt_loops.append(info)
            result.selected.append(candidate)
        if telemetry.enabled:
            telemetry.count("transform.loops_transformed", len(result.selected))

    return result


def _svp_round(
    module,
    config,
    workload,
    candidates,
    graphs,
    edge_profile,
    dep_profile,
    modref,
    result,
    telemetry=NULL_TELEMETRY,
    phase_checkpoints=None,
):
    """Value-profile critical VCs of high-cost loops, apply SVP, and
    re-analyze the loops that changed."""
    from repro.core.selection import CATEGORY_HIGH_COST, classify

    svp_targets = []  # (candidate, vc)
    for candidate in candidates:
        if candidate.partition is None or candidate.irregular:
            continue
        if classify(candidate, config) != CATEGORY_HIGH_COST:
            continue
        graph = graphs.get((candidate.func_name, candidate.loop.header))
        if graph is None:
            continue
        cost_graph = build_cost_graph(graph, candidate.partition.candidates)
        for vc, _contribution in critical_candidates(
            candidate.partition, cost_graph
        ):
            if vc.instr.dest is not None:
                svp_targets.append((candidate, vc))

    if not svp_targets:
        return candidates, graphs

    value_profile = ValueProfile([vc.instr for _, vc in svp_targets])
    _profile(
        module, workload, [value_profile], fast=config.fast_interp,
        trace=config.trace_interp, telemetry=telemetry,
    )

    changed_funcs = set()
    for candidate, vc in svp_targets:
        pattern = value_profile.pattern_for(vc.instr)
        if not pattern.predictable or pattern.hit_rate < config.svp_min_hit_rate:
            continue
        func = module.function(candidate.func_name)
        info = apply_svp(module, func, candidate.loop, vc, pattern)
        if info is not None:
            result.svp_infos.append(info)
            changed_funcs.add(candidate.func_name)
            if telemetry.enabled:
                telemetry.count("svp.predictions_applied")
                telemetry.event(
                    "svp.applied",
                    function=candidate.func_name,
                    loop=candidate.loop.header,
                    variable=info.var_base,
                    hit_rate=round(info.hit_rate, 4),
                )

    if not changed_funcs:
        return candidates, graphs

    # Re-analyze every loop in the functions SVP touched.
    new_candidates = []
    for candidate in candidates:
        if candidate.func_name not in changed_funcs:
            new_candidates.append(candidate)
            continue
        func = module.function(candidate.func_name)
        nest = LoopNest.build(func)
        matching = [l for l in nest.loops if l.header == candidate.loop.header]
        if not matching:
            new_candidates.append(candidate)
            continue
        refreshed, graph, records = _analyze_loop_resilient(
            module, func, matching[0], config, edge_profile, dep_profile,
            modref, telemetry, phase_checkpoints=phase_checkpoints,
        )
        result.degradations.extend(records)
        refreshed.svp_applied = True
        new_candidates.append(refreshed)
        if graph is not None:
            graphs[(candidate.func_name, matching[0].header)] = graph
    return new_candidates, graphs
