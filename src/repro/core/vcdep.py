"""The violation-candidate dependence graph (paper §5.1) and the
pre-fork legality closure.

Legality (§5): a partition is legal iff no forward intra-iteration
dependence becomes backward -- equivalently, the pre-fork region must be
closed under intra-iteration dependence *predecessors*.  The closure
covers:

* true data dependences (operand producers must move along),
* anti and output memory dependences (a store may not be hoisted above
  an aliasing earlier load/store),
* control dependences (the guarding branch condition is replicated into
  the pre-fork region -- Figure 12).

The search itself only enumerates violation candidates; every other
statement is dragged in (or not) by this closure.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set

from repro.analysis.depgraph import LoopDepGraph
from repro.core.violation import ViolationCandidate
from repro.ir.instr import Instr, Phi

#: Dependence kinds that constrain statement ordering (legality).
ORDERING_KINDS = ("true", "anti", "output", "control")


def statement_closure(
    graph: LoopDepGraph, seeds: Iterable[Instr]
) -> Set[Instr]:
    """All statements that must join the pre-fork region with ``seeds``.

    Transitive intra-iteration predecessor closure over ordering
    dependences.  Header phis terminate the walk: they resolve at the
    very start of the iteration and are implicitly pre-fork already.
    """
    header = graph.loop.header
    closure: Set[Instr] = set()
    stack: List[Instr] = list(seeds)
    while stack:
        instr = stack.pop()
        if instr in closure:
            continue
        closure.add(instr)
        info = graph.info.get(instr)
        if info is None:
            continue
        if isinstance(instr, Phi) and info.block == header:
            continue  # iteration-start value; nothing to drag along
        if isinstance(instr, Phi):
            # A replicated join phi needs the branch that decides which
            # incoming wins: drag in its predecessor blocks' terminators
            # (their control dependences then pull the deciding branch).
            block_map = graph.func.block_map()
            for pred_label in instr.incomings:
                pred = block_map.get(pred_label)
                if pred is None:
                    continue
                term = pred.terminator
                if term is not None and term in graph.info and term not in closure:
                    stack.append(term)
        for edge in graph.intra_preds(instr, kinds=ORDERING_KINDS):
            if edge.src not in closure:
                stack.append(edge.src)
    return closure


def closure_size(graph: LoopDepGraph, closure: Iterable[Instr]) -> float:
    """Pre-fork region size in elementary operations.

    Weighted by reaching probability so a rarely executed conditional
    statement contributes its expected (dynamic) size.
    """
    # Sum in topological order: float addition is not associative, and
    # ``closure`` is a set whose iteration order varies per process, so
    # an unordered sum could flip partition decisions that sit within
    # the search's 1e-12 tie tolerance from one run to the next.
    terms = []
    for instr in closure:
        info = graph.info.get(instr)
        reach = info.reach if info is not None else 1.0
        order = info.order if info is not None else -1
        terms.append((order, instr.cost * reach))
    return sum(term for _, term in sorted(terms))


class VCDepGraph:
    """Dependences among violation candidates (nodes in topological
    order, i.e. program order within the iteration)."""

    def __init__(
        self,
        graph: LoopDepGraph,
        candidates: Sequence[ViolationCandidate],
    ):
        self.graph = graph
        #: Candidates sorted by topological order number.
        self.candidates = sorted(
            candidates, key=lambda vc: graph.order(vc.instr)
        )
        n = len(self.candidates)
        #: preds[i] = indices of candidates that candidate i depends on.
        self.preds: List[Set[int]] = [set() for _ in range(n)]
        self.succs: List[Set[int]] = [set() for _ in range(n)]
        #: closures[i] = statement closure of candidate i alone.
        self.closures: List[Set[Instr]] = []

        index_of = {id(vc.instr): i for i, vc in enumerate(self.candidates)}
        for i, vc in enumerate(self.candidates):
            closure = statement_closure(graph, [vc.instr])
            self.closures.append(closure)
            for instr in closure:
                j = index_of.get(id(instr))
                if j is not None and j != i:
                    self.preds[i].add(j)
                    self.succs[j].add(i)

    def __len__(self) -> int:
        return len(self.candidates)

    def addable(self, selected: Set[int], min_index: int) -> List[int]:
        """Candidate indices that may be added next: topological number
        above ``min_index`` (canonical enumeration, §5.2) and all
        VC-dep predecessors already selected."""
        result = []
        for i in range(min_index + 1, len(self.candidates)):
            if i in selected:
                continue
            if self.preds[i] <= selected:
                result.append(i)
        return result

    def downward_closed(self, selected: Set[int]) -> bool:
        """Whether ``selected`` contains all of its own predecessors."""
        return all(self.preds[i] <= selected for i in selected)

    def union_closure(self, selected: Iterable[int]) -> Set[Instr]:
        """Statements moved pre-fork for this candidate selection."""
        result: Set[Instr] = set()
        for i in selected:
            result |= self.closures[i]
        return result

    def partition_size(self, selected: Iterable[int]) -> float:
        return closure_size(self.graph, self.union_closure(selected))
