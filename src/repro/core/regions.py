"""Intra-iteration region speculation (the paper's §9 future work).

The paper notes that loops rejected for *too-large bodies* "can be
handled if we generalize our work to perform speculative
parallelization for general code regions.  For example, a speculative
thread may be forked for a section of the loop body within the same
iteration."

This module implements that generalization for loop bodies: the body is
split at a *spine block* S (a block on the dominator chain from the
header to the latch, so every iteration passes through it) into a
prefix region A and a suffix region B.  Each iteration, the main core
runs A while the speculative core runs B against the iteration-start
context; at the join, B's operations that consumed values A redefined
are re-executed.

The misspeculation cost machinery is reused wholesale: the "violation
candidates" are A-resident definitions feeding B through
*intra-iteration* true dependences (instead of cross-iteration ones),
and the same topological probability propagation prices each candidate
split.  The best split balances |t(A) - t(B)| (overlap) against the
re-execution cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.depgraph import LoopDepGraph
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import Loop
from repro.core.config import SptConfig
from repro.core.costgraph import CostGraph
from repro.core.costmodel import misspeculation_cost
from repro.ir.function import Function
from repro.ir.instr import Phi


class RegionSplit:
    """One candidate split of a loop body into regions A and B."""

    def __init__(
        self,
        loop: Loop,
        split_label: str,
        b_labels: Set[str],
        size_a: float,
        size_b: float,
        cost: float,
        func_name: str = None,
    ):
        self.loop = loop
        #: Name of the function owning the loop (for reports).
        self.func_name = func_name
        #: First block of region B (every iteration passes through it).
        self.split_label = split_label
        #: All block labels belonging to region B.
        self.b_labels = b_labels
        #: Expected per-iteration work in each region (elementary ops).
        self.size_a = size_a
        self.size_b = size_b
        #: Expected re-executed B computation per iteration.
        self.cost = cost

    @property
    def balance(self) -> float:
        """1.0 = perfectly balanced halves, 0.0 = everything on one side."""
        total = self.size_a + self.size_b
        if total <= 0:
            return 0.0
        return 1.0 - abs(self.size_a - self.size_b) / total

    def to_dict(self) -> dict:
        """A JSON-serializable summary of the split."""
        return {
            "function": self.func_name,
            "header": self.loop.header,
            "split_label": self.split_label,
            "b_labels": sorted(self.b_labels),
            "size_a": round(self.size_a, 2),
            "size_b": round(self.size_b, 2),
            "cost": round(self.cost, 4),
            "balance": round(self.balance, 4),
        }

    def estimated_round(self, config: SptConfig) -> float:
        """Predicted cycles for one iteration under region speculation."""
        cpo = config.cycles_per_op
        overhead = config.fork_overhead_cycles + config.commit_overhead_cycles
        return (
            max(self.size_a, self.size_b) * cpo
            + self.cost * cpo
            + overhead
        )

    def estimated_benefit(self, config: SptConfig) -> float:
        """Predicted cycles saved per iteration (<= 0 means don't)."""
        sequential = (self.size_a + self.size_b) * config.cycles_per_op
        return sequential - self.estimated_round(config)

    def __repr__(self) -> str:
        return (
            f"RegionSplit(at={self.split_label}, "
            f"A={self.size_a:.0f} B={self.size_b:.0f}, cost={self.cost:.2f})"
        )


def spine_blocks(func: Function, loop: Loop, cfg: CFG = None) -> List[str]:
    """Blocks on the dominator chain from the body entry to the latch.

    Every iteration passes through each of them, so each is a legal
    region boundary.  The header itself is excluded (splitting there
    puts everything in B).
    """
    cfg = cfg or CFG.build(func)
    latches = loop.latches(cfg)
    if len(latches) != 1:
        return []
    domtree = DominatorTree.build(func, cfg=cfg)
    chain: List[str] = []
    cursor: Optional[str] = latches[0]
    while cursor is not None and cursor != loop.header:
        if cursor in loop.body:
            chain.append(cursor)
        cursor = domtree.idom.get(cursor)
    chain.reverse()
    return chain


def _region_b_labels(
    func: Function, loop: Loop, split_label: str, domtree: DominatorTree
) -> Set[str]:
    """Region B = body blocks dominated by the split block."""
    return {
        label
        for label in loop.body
        if domtree.dominates(split_label, label)
    }


def _split_cost(graph: LoopDepGraph, b_instrs: Set[int]) -> float:
    """Expected re-executed B computation when B runs against the
    iteration-start context while A executes concurrently.

    Pseudo nodes: A-resident sources of intra-iteration true edges into
    B, initialized with their reaching probability; propagation through
    B's intra-iteration true dependences."""
    cg = CostGraph()
    sources: Dict[int, float] = {}
    header = graph.loop.header
    b_nodes = [
        instr for instr in graph.nodes if id(instr) in b_instrs
    ]
    for instr in b_nodes:
        cg.add_node(instr, instr.cost)
    for instr in b_nodes:
        for edge in graph.intra_preds(instr, kinds=("true",)):
            if id(edge.src) in b_instrs:
                cg.add_edge(edge.src, instr, edge.prob)
            else:
                src_info = graph.info.get(edge.src)
                if src_info is not None and src_info.block == header:
                    # Header values (phis, the exit test) resolve before
                    # the fork: B receives them in its start context.
                    continue
                key = id(edge.src)
                if key not in sources:
                    sources[key] = graph.reach(edge.src)
                    cg.add_pseudo(edge.src, graph.reach(edge.src))
                cg.add_edge_from_pseudo(edge.src, instr, edge.prob)
    # No candidate moves pre-fork here: all pseudo nodes stay live.
    return misspeculation_cost(cg, prefork=set())


def find_region_splits(
    func: Function,
    loop: Loop,
    graph: LoopDepGraph,
    config: SptConfig,
) -> List[RegionSplit]:
    """Evaluate every spine split of the loop body, best first."""
    cfg = CFG.build(func)
    domtree = DominatorTree.build(func, cfg=cfg)
    total_size = sum(
        info.instr.cost * info.reach for info in graph.info.values()
    )

    splits: List[RegionSplit] = []
    for split_label in spine_blocks(func, loop, cfg):
        b_labels = _region_b_labels(func, loop, split_label, domtree)
        if not b_labels or b_labels >= loop.body - {loop.header}:
            continue
        b_instrs = {
            id(info.instr)
            for info in graph.info.values()
            if info.block in b_labels
        }
        size_b = sum(
            info.instr.cost * info.reach
            for info in graph.info.values()
            if id(info.instr) in b_instrs
        )
        size_a = total_size - size_b
        if size_a <= 0 or size_b <= 0:
            continue
        cost = _split_cost(graph, b_instrs)
        splits.append(
            RegionSplit(
                loop, split_label, b_labels, size_a, size_b, cost,
                func_name=func.name,
            )
        )

    splits.sort(key=lambda s: -s.estimated_benefit(config))
    return splits


def choose_region_split(
    func: Function,
    loop: Loop,
    graph: LoopDepGraph,
    config: SptConfig,
) -> Optional[RegionSplit]:
    """The best beneficial split, or None when no split pays off."""
    splits = find_region_splits(func, loop, graph, config)
    for split in splits:
        if split.estimated_benefit(config) > 0:
            return split
    return None
