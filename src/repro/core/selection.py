"""SPT loop selection (paper §6.1).

Pass 2 looks at every loop candidate of the program *together* and
selects the good SPT loops:

1. misspeculation cost below a fraction of the loop body size;
2. pre-fork region below a fraction of the loop body size;
3. body size within [min, max] (too small cannot amortize the fork
   overhead; too large exceeds the speculative buffering the hardware
   can hold);
4. expected iteration count of at least 2.

Within one loop nest only one level may become an SPT loop (the machine
has a single speculative core); conflicts are resolved by estimated
benefit: loop cycle coverage times the per-round speedup the SPT
execution model predicts.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import SptConfig
from repro.core.partition import PartitionResult

#: Rejection / acceptance categories (the paper's Figure 15 breakdown).
CATEGORY_VALID = "valid_partition"
CATEGORY_TOO_MANY_VCS = "too_many_vcs"
CATEGORY_HIGH_COST = "high_cost"
CATEGORY_BODY_TOO_SMALL = "body_too_small"
CATEGORY_BODY_TOO_LARGE = "body_too_large"
CATEGORY_LOW_TRIP = "low_trip_count"
CATEGORY_IRREGULAR = "irregular_control_flow"
CATEGORY_NEST_CONFLICT = "nest_conflict"
CATEGORY_NO_BENEFIT = "no_estimated_benefit"

ALL_CATEGORIES = (
    CATEGORY_VALID,
    CATEGORY_TOO_MANY_VCS,
    CATEGORY_HIGH_COST,
    CATEGORY_BODY_TOO_SMALL,
    CATEGORY_BODY_TOO_LARGE,
    CATEGORY_LOW_TRIP,
    CATEGORY_IRREGULAR,
    CATEGORY_NEST_CONFLICT,
    CATEGORY_NO_BENEFIT,
)


class LoopCandidate:
    """One loop evaluated by pass 1, with everything pass 2 needs."""

    def __init__(
        self,
        func_name: str,
        loop,
        partition: Optional[PartitionResult],
        dynamic_body_size: float,
        trip_count: float,
        total_iterations: int,
        svp_applied: bool = False,
        irregular: bool = False,
    ):
        self.func_name = func_name
        self.loop = loop
        self.partition = partition
        #: Expected per-iteration work (elementary ops, inner loops
        #: weighted by trip count).
        self.dynamic_body_size = dynamic_body_size
        #: Average iterations per loop entry (profiled).
        self.trip_count = trip_count
        #: Total header executions in the profiling run (for coverage
        #: and benefit ranking).
        self.total_iterations = total_iterations
        self.svp_applied = svp_applied
        self.irregular = irregular
        #: Filled by :func:`select_spt_loops`.
        self.category: Optional[str] = None
        self.selected = False

    @property
    def key(self) -> str:
        return f"{self.func_name}:{self.loop.header}"

    def __repr__(self) -> str:
        return f"LoopCandidate({self.key}, {self.category})"


def classify(candidate: LoopCandidate, config: SptConfig) -> str:
    """Apply the §6.1 criteria; returns a category constant."""
    if candidate.irregular:
        return CATEGORY_IRREGULAR
    partition = candidate.partition
    if partition is None or partition.skipped_too_many_vcs:
        return CATEGORY_TOO_MANY_VCS
    size = candidate.dynamic_body_size
    if size < config.min_body_size:
        return CATEGORY_BODY_TOO_SMALL
    if size > config.max_body_size:
        return CATEGORY_BODY_TOO_LARGE
    if candidate.trip_count < config.min_trip_count:
        return CATEGORY_LOW_TRIP
    if partition.cost > config.cost_threshold(size):
        return CATEGORY_HIGH_COST
    if partition.prefork_size > config.prefork_size_threshold(size):
        return CATEGORY_HIGH_COST
    return CATEGORY_VALID


def estimated_benefit(candidate: LoopCandidate, config: SptConfig) -> float:
    """Cycles the SPT execution of this loop is expected to save.

    One SPT round runs two iterations: the main thread executes the
    pre-fork region sequentially, both threads overlap on the rest, and
    the round pays fork + commit overheads plus the expected re-executed
    work (the misspeculation cost)."""
    partition = candidate.partition
    if partition is None:
        return 0.0
    cpo = config.cycles_per_op
    work = candidate.dynamic_body_size * cpo
    prefork = partition.prefork_size * cpo
    reexec = partition.cost * cpo
    overhead = config.fork_overhead_cycles + config.commit_overhead_cycles
    round_spt = work + prefork + reexec + overhead
    round_seq = 2.0 * work
    if round_spt >= round_seq * config.selection_margin:
        return 0.0
    rounds = candidate.total_iterations / 2.0
    return rounds * (round_seq - round_spt)


def select_spt_loops(
    candidates: List[LoopCandidate], config: SptConfig
) -> List[LoopCandidate]:
    """Classify every candidate and pick the selected SPT loops.

    Nest conflicts (an SPT loop inside another SPT loop) are resolved
    greedily by estimated benefit.
    """
    for candidate in candidates:
        candidate.category = classify(candidate, config)
        candidate.selected = False

    valid = [c for c in candidates if c.category == CATEGORY_VALID]
    valid.sort(key=lambda c: -estimated_benefit(c, config))

    by_key: Dict[str, LoopCandidate] = {c.key: c for c in candidates}
    selected: List[LoopCandidate] = []

    def conflicts(a: LoopCandidate, b: LoopCandidate) -> bool:
        if a.func_name != b.func_name:
            return False
        return (
            a.loop.header in b.loop.body or b.loop.header in a.loop.body
        )

    for candidate in valid:
        if estimated_benefit(candidate, config) <= 0.0:
            candidate.category = CATEGORY_NO_BENEFIT
            continue
        if any(conflicts(candidate, chosen) for chosen in selected):
            candidate.category = CATEGORY_NEST_CONFLICT
            continue
        candidate.selected = True
        selected.append(candidate)
    return selected


def category_histogram(candidates: List[LoopCandidate]) -> Dict[str, int]:
    """Counts per category -- the paper's Figure 15 series."""
    histogram = {category: 0 for category in ALL_CATEGORIES}
    for candidate in candidates:
        if candidate.category is not None:
            histogram[candidate.category] += 1
    return histogram
