"""SPT loop selection (paper §6.1).

Pass 2 looks at every loop candidate of the program *together* and
selects the good SPT loops:

1. misspeculation cost below a fraction of the loop body size;
2. pre-fork region below a fraction of the loop body size;
3. body size within [min, max] (too small cannot amortize the fork
   overhead; too large exceeds the speculative buffering the hardware
   can hold);
4. expected iteration count of at least 2.

Within one loop nest only one level may become an SPT loop (the machine
has a single speculative core); conflicts are resolved by estimated
benefit: loop cycle coverage times the per-round speedup the SPT
execution model predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import SptConfig
from repro.core.partition import PartitionResult

#: Rejection / acceptance categories (the paper's Figure 15 breakdown).
CATEGORY_VALID = "valid_partition"
CATEGORY_TOO_MANY_VCS = "too_many_vcs"
CATEGORY_HIGH_COST = "high_cost"
CATEGORY_BODY_TOO_SMALL = "body_too_small"
CATEGORY_BODY_TOO_LARGE = "body_too_large"
CATEGORY_LOW_TRIP = "low_trip_count"
CATEGORY_IRREGULAR = "irregular_control_flow"
CATEGORY_NEST_CONFLICT = "nest_conflict"
CATEGORY_NO_BENEFIT = "no_estimated_benefit"
#: A fault was contained while analyzing the loop and the degradation
#: ladder ran out of rungs: the loop stays sequential (always legal
#: under the SPT model), with the fault recorded on the candidate.
CATEGORY_CONTAINED = "contained_fault"

ALL_CATEGORIES = (
    CATEGORY_VALID,
    CATEGORY_TOO_MANY_VCS,
    CATEGORY_HIGH_COST,
    CATEGORY_BODY_TOO_SMALL,
    CATEGORY_BODY_TOO_LARGE,
    CATEGORY_LOW_TRIP,
    CATEGORY_IRREGULAR,
    CATEGORY_NEST_CONFLICT,
    CATEGORY_NO_BENEFIT,
    CATEGORY_CONTAINED,
)


@dataclass
class RejectionReason:
    """Why a §6.1 criterion (or a later stage) rejected a loop.

    ``measured`` and ``threshold`` quantify the failed comparison so a
    decision can be reconstructed from the report alone; ``detail``
    carries the human-readable sentence (and, for stages without a
    numeric threshold, the whole story)."""

    #: Which check failed ("cost_threshold", "prefork_threshold",
    #: "min_body_size", ... or "transform_error"/"nest_conflict").
    criterion: str
    measured: Optional[float] = None
    threshold: Optional[float] = None
    detail: str = ""

    def to_dict(self) -> Dict:
        out: Dict = {"criterion": self.criterion}
        if self.measured is not None:
            out["measured"] = round(self.measured, 4)
        if self.threshold is not None:
            out["threshold"] = round(self.threshold, 4)
        if self.detail:
            out["detail"] = self.detail
        return out

    def __str__(self) -> str:
        if self.measured is not None and self.threshold is not None:
            return (
                f"{self.criterion}: measured {self.measured:.4g} vs "
                f"threshold {self.threshold:.4g}"
                + (f" ({self.detail})" if self.detail else "")
            )
        return f"{self.criterion}: {self.detail}" if self.detail else self.criterion


class LoopCandidate:
    """One loop evaluated by pass 1, with everything pass 2 needs."""

    def __init__(
        self,
        func_name: str,
        loop,
        partition: Optional[PartitionResult],
        dynamic_body_size: float,
        trip_count: float,
        total_iterations: int,
        svp_applied: bool = False,
        irregular: bool = False,
    ):
        self.func_name = func_name
        self.loop = loop
        self.partition = partition
        #: Expected per-iteration work (elementary ops, inner loops
        #: weighted by trip count).
        self.dynamic_body_size = dynamic_body_size
        #: Average iterations per loop entry (profiled).
        self.trip_count = trip_count
        #: Total header executions in the profiling run (for coverage
        #: and benefit ranking).
        self.total_iterations = total_iterations
        self.svp_applied = svp_applied
        self.irregular = irregular
        #: Filled by :func:`select_spt_loops`.
        self.category: Optional[str] = None
        self.selected = False
        #: Why the loop was rejected (None while accepted); filled by
        #: :func:`select_spt_loops` and the pipeline's transform stage.
        self.rejection: Optional[RejectionReason] = None
        #: Message of the TransformError that stopped this loop (either
        #: the pass-1 transformability check or the pass-2 transform).
        self.transform_error: Optional[str] = None
        #: The contained fault that degraded this loop (a
        #: :class:`repro.resilience.DegradationRecord`), or None.  Set
        #: by the pipeline's firewalls; makes the fault a first-class
        #: rejection category instead of an aborted compilation.
        self.degradation = None

    @property
    def key(self) -> str:
        return f"{self.func_name}:{self.loop.header}"

    def __repr__(self) -> str:
        return f"LoopCandidate({self.key}, {self.category})"


def diagnose(
    candidate: LoopCandidate, config: SptConfig
) -> Tuple[str, Optional[RejectionReason]]:
    """Apply the §6.1 criteria; returns (category, rejection reason).

    The reason is ``None`` exactly when the category is
    :data:`CATEGORY_VALID`; otherwise it names the first criterion that
    failed together with the measured value and the threshold it was
    held against."""
    if candidate.irregular:
        detail = candidate.transform_error or "control flow not transformable"
        return CATEGORY_IRREGULAR, RejectionReason("transformable", detail=detail)
    # Contained faults are diagnosed before the partition check: a
    # degraded loop usually has no partition, and attributing it to
    # "too many VCs" would misreport the real cause.
    if candidate.degradation is not None and candidate.partition is None:
        record = candidate.degradation
        return CATEGORY_CONTAINED, RejectionReason(
            "contained_fault",
            detail=f"{record.kind} in {record.phase}: {record.message}".rstrip(
                ": "
            ),
        )
    partition = candidate.partition
    if partition is None or partition.skipped_too_many_vcs:
        measured = float(len(partition.candidates)) if partition else None
        return CATEGORY_TOO_MANY_VCS, RejectionReason(
            "max_violation_candidates",
            measured=measured,
            threshold=float(config.max_violation_candidates),
            detail="partition search skipped (§5.2)",
        )
    size = candidate.dynamic_body_size
    if size < config.min_body_size:
        return CATEGORY_BODY_TOO_SMALL, RejectionReason(
            "min_body_size",
            measured=size,
            threshold=float(config.min_body_size),
            detail="body too small to amortize fork overhead (§6.1 criterion 3)",
        )
    if size > config.max_body_size:
        return CATEGORY_BODY_TOO_LARGE, RejectionReason(
            "max_body_size",
            measured=size,
            threshold=float(config.max_body_size),
            detail="body exceeds speculative buffering (§6.1 criterion 3)",
        )
    if candidate.trip_count < config.min_trip_count:
        return CATEGORY_LOW_TRIP, RejectionReason(
            "min_trip_count",
            measured=candidate.trip_count,
            threshold=config.min_trip_count,
            detail="next iteration unlikely to execute (§6.1 criterion 4)",
        )
    if partition.cost > config.cost_threshold(size):
        return CATEGORY_HIGH_COST, RejectionReason(
            "cost_threshold",
            measured=partition.cost,
            threshold=config.cost_threshold(size),
            detail="misspeculation cost over body-size fraction (§6.1 criterion 1)",
        )
    if partition.prefork_size > config.prefork_size_threshold(size):
        return CATEGORY_HIGH_COST, RejectionReason(
            "prefork_threshold",
            measured=partition.prefork_size,
            threshold=config.prefork_size_threshold(size),
            detail="pre-fork region over body-size fraction (§6.1 criterion 2)",
        )
    return CATEGORY_VALID, None


def classify(candidate: LoopCandidate, config: SptConfig) -> str:
    """Apply the §6.1 criteria; returns a category constant."""
    return diagnose(candidate, config)[0]


def estimated_benefit(candidate: LoopCandidate, config: SptConfig) -> float:
    """Cycles the SPT execution of this loop is expected to save.

    One SPT round runs two iterations: the main thread executes the
    pre-fork region sequentially, both threads overlap on the rest, and
    the round pays fork + commit overheads plus the expected re-executed
    work (the misspeculation cost)."""
    partition = candidate.partition
    if partition is None:
        return 0.0
    cpo = config.cycles_per_op
    work = candidate.dynamic_body_size * cpo
    prefork = partition.prefork_size * cpo
    reexec = partition.cost * cpo
    overhead = config.fork_overhead_cycles + config.commit_overhead_cycles
    round_spt = work + prefork + reexec + overhead
    round_seq = 2.0 * work
    if round_spt >= round_seq * config.selection_margin:
        return 0.0
    rounds = candidate.total_iterations / 2.0
    return rounds * (round_seq - round_spt)


def select_spt_loops(
    candidates: List[LoopCandidate], config: SptConfig
) -> List[LoopCandidate]:
    """Classify every candidate and pick the selected SPT loops.

    Nest conflicts (an SPT loop inside another SPT loop) are resolved
    greedily by estimated benefit.
    """
    for candidate in candidates:
        candidate.category, candidate.rejection = diagnose(candidate, config)
        candidate.selected = False

    valid = [c for c in candidates if c.category == CATEGORY_VALID]
    valid.sort(key=lambda c: -estimated_benefit(c, config))

    by_key: Dict[str, LoopCandidate] = {c.key: c for c in candidates}
    selected: List[LoopCandidate] = []

    def conflicts(a: LoopCandidate, b: LoopCandidate) -> bool:
        if a.func_name != b.func_name:
            return False
        return (
            a.loop.header in b.loop.body or b.loop.header in a.loop.body
        )

    for candidate in valid:
        benefit = estimated_benefit(candidate, config)
        if benefit <= 0.0:
            candidate.category = CATEGORY_NO_BENEFIT
            candidate.rejection = RejectionReason(
                "estimated_benefit",
                measured=benefit,
                threshold=0.0,
                detail="predicted SPT round does not beat sequential execution",
            )
            continue
        rival = next((c for c in selected if conflicts(candidate, c)), None)
        if rival is not None:
            candidate.category = CATEGORY_NEST_CONFLICT
            candidate.rejection = RejectionReason(
                "nest_conflict",
                measured=benefit,
                threshold=estimated_benefit(rival, config),
                detail=f"outranked by {rival.key} in the same nest",
            )
            continue
        candidate.selected = True
        selected.append(candidate)
    return selected


def category_histogram(candidates: List[LoopCandidate]) -> Dict[str, int]:
    """Counts per category -- the paper's Figure 15 series."""
    histogram = {category: 0 for category in ALL_CATEGORIES}
    for candidate in candidates:
        if candidate.category is not None:
            histogram[candidate.category] += 1
    return histogram
