"""Cost-graph construction (paper §4.2.2).

The cost graph models how a misspeculation propagates re-execution
through one speculative iteration:

* one **pseudo node** per violation candidate (the paper's D', E', F'),
  whose re-execution probability is initialized by the partition (0 when
  the candidate sits in the pre-fork region, its violation ratio
  otherwise);
* **operation nodes** -- every statement reachable from a pseudo node
  through its cross-iteration edges followed by intra-iteration true
  dependences, plus the violation-candidate statements themselves;
* each edge carries ``r``, the conditional probability that re-execution
  of the source misspeculates the destination.

The graph is a DAG: pseudo nodes are roots and intra-iteration true
dependences always point forward in the iteration's topological order.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.analysis.depgraph import LoopDepGraph
from repro.core.violation import ViolationCandidate
from repro.ir.instr import Instr


class PseudoNode:
    """The pseudo node of one violation candidate (D' in the paper)."""

    __slots__ = ("key", "violation_prob")

    def __init__(self, key: Hashable, violation_prob: float):
        self.key = key
        self.violation_prob = violation_prob

    def __repr__(self) -> str:
        return f"Pseudo({self.key!r}, {self.violation_prob:.2f})"


class CostGraph:
    """A DAG of pseudo nodes and operation nodes with edge probabilities.

    Node keys are arbitrary hashables: IR instructions in production,
    plain strings in tests reproducing the paper's worked example.
    """

    def __init__(self):
        #: vc key -> PseudoNode
        self.pseudos: Dict[Hashable, PseudoNode] = {}
        #: operation nodes in topological order
        self.topo_nodes: List[Hashable] = []
        self._node_set: set = set()
        #: node key -> list of (pred, r) where pred is a PseudoNode or a key
        self.in_edges: Dict[Hashable, List[Tuple[object, float]]] = {}
        #: node key -> computation amount (Cost(c) in §4.2.4)
        self.costs: Dict[Hashable, float] = {}

    # -- construction API ---------------------------------------------------

    def add_pseudo(self, key: Hashable, violation_prob: float) -> PseudoNode:
        pseudo = PseudoNode(key, violation_prob)
        self.pseudos[key] = pseudo
        return pseudo

    def add_node(self, key: Hashable, cost: float) -> None:
        """Append an operation node; call in topological order."""
        if key in self._node_set:
            return
        self._node_set.add(key)
        self.topo_nodes.append(key)
        self.costs[key] = cost

    def has_node(self, key: Hashable) -> bool:
        return key in self._node_set

    def add_edge_from_pseudo(self, vc_key: Hashable, dst: Hashable, r: float) -> None:
        self.in_edges.setdefault(dst, []).append((self.pseudos[vc_key], r))

    def add_edge(self, src: Hashable, dst: Hashable, r: float) -> None:
        self.in_edges.setdefault(dst, []).append((src, r))

    @property
    def size(self) -> int:
        return len(self.topo_nodes)


def build_cost_graph(
    graph: LoopDepGraph, candidates: List[ViolationCandidate]
) -> CostGraph:
    """Build the cost graph of a loop from its dependence graph.

    Starts with the violation candidates' pseudo nodes and cross-
    iteration edges, then closes over intra-iteration true dependences
    (§4.2.2: "nodes ... reached by the dependence edges and their
    intra-iteration dependence edges are added to the cost graph
    recursively").
    """
    cg = CostGraph()
    for vc in candidates:
        cg.add_pseudo(vc.instr, vc.violation_prob)

    # Collect the reachable node set first (worklist over intra true
    # successors), then materialize in global topological order.
    reached: Dict[int, Instr] = {}
    worklist: List[Instr] = []

    def reach_node(instr: Instr) -> None:
        if id(instr) not in reached:
            reached[id(instr)] = instr
            worklist.append(instr)

    for vc in candidates:
        reach_node(vc.instr)  # VC statements appear as ordinary nodes too
        for reader, _ in vc.readers:
            reach_node(reader)

    while worklist:
        instr = worklist.pop()
        for edge in graph.intra_succs(instr, kinds=("true",)):
            reach_node(edge.dst)

    ordered = sorted(reached.values(), key=graph.order)
    for instr in ordered:
        cg.add_node(instr, instr.cost)

    # Pseudo edges: violation candidate -> its cross-iteration readers.
    for vc in candidates:
        for reader, prob in vc.readers:
            if cg.has_node(reader):
                cg.add_edge_from_pseudo(vc.instr, reader, prob)

    # Intra-iteration propagation edges among reached nodes.
    for instr in ordered:
        for edge in graph.intra_succs(instr, kinds=("true",)):
            if cg.has_node(edge.dst):
                cg.add_edge(instr, edge.dst, edge.prob)

    return cg
