"""Software value prediction (paper §7.2, Figure 13).

When the optimal partition still carries an unacceptably high
misspeculation cost, the compiler looks at the *critical* violation
candidates -- the ones whose staleness causes most of the cost -- and, if
profiling shows their values follow a stride (or last-value) pattern,
rewrites the loop to carry a software *prediction* instead:

* a new header phi ``x_p`` holds the (always correct) iteration value;
* the prediction ``p_next = x_p + stride`` is computed in the loop
  header -- i.e. before any fork, so it is never stale;
* the original update stays where it was; a check-and-recovery diamond
  at the latch corrects the carried value on misprediction.

After the rewrite the cross-iteration carrier is fed by ``p_next``
(violation probability 0: it lives in the header) and by the recovery
value with probability = the *misprediction rate*, so the cost model
naturally prices the loop as speculation-friendly.  The transformation
is semantics-preserving regardless of prediction quality.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.depgraph import LoopDepGraph
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import Loop
from repro.core.costgraph import CostGraph
from repro.core.costmodel import misspeculation_cost
from repro.core.partition import PartitionResult
from repro.core.violation import ViolationCandidate
from repro.ir.block import Block
from repro.ir.function import Function, Module
from repro.ir.instr import BinOp, Branch, Jump, Phi
from repro.ir.values import Const, Var
from repro.ir.verify import verify_function
from repro.profiling.value_profile import ValuePattern


class SvpInfo:
    """Record of one applied software value prediction."""

    def __init__(self, var_base: str, stride, hit_rate: float, check_label: str):
        self.var_base = var_base
        self.stride = stride
        self.hit_rate = hit_rate
        self.check_label = check_label

    def __repr__(self) -> str:
        return f"SvpInfo({self.var_base} += {self.stride}, hit={self.hit_rate:.2f})"


def critical_candidates(
    partition: PartitionResult, cost_graph: CostGraph, top_k: int = 3
) -> List[Tuple[ViolationCandidate, float]]:
    """Candidates outside the optimal pre-fork region, ranked by how
    much cost their staleness contributes (§7.2: "the compiler
    identifies critical dependences that cause unacceptably high
    misspeculation cost")."""
    prefork_keys = {vc.instr for vc in partition.prefork_vcs}
    base_cost = misspeculation_cost(cost_graph, prefork_keys)
    ranked = []
    for vc in partition.candidates:
        if vc.instr in prefork_keys:
            continue
        relieved = misspeculation_cost(cost_graph, prefork_keys | {vc.instr})
        contribution = base_cost - relieved
        if contribution > 0:
            ranked.append((vc, contribution))
    ranked.sort(key=lambda pair: -pair[1])
    return ranked[:top_k]


def _carried_phi_for(
    func: Function, loop: Loop, vc: ViolationCandidate, cfg: CFG
) -> Optional[Phi]:
    """The header phi whose latch incoming is exactly the candidate's
    destination (the directly-carried pattern Figure 13 shows)."""
    if vc.instr.dest is None:
        return None
    latches = set(loop.latches(cfg))
    for phi in func.block(loop.header).phis():
        for pred_label, value in phi.incomings.items():
            if pred_label in latches and value == vc.instr.dest:
                return phi
    return None


def apply_svp(
    module: Module,
    func: Function,
    loop: Loop,
    vc: ViolationCandidate,
    pattern: ValuePattern,
) -> Optional[SvpInfo]:
    """Rewrite the loop to predict ``vc``'s value; returns None when the
    candidate's shape is unsupported."""
    if not pattern.predictable or pattern.stride is None:
        return None
    cfg = CFG.build(func)
    latches = loop.latches(cfg)
    if len(latches) != 1:
        return None
    latch_label = latches[0]
    phi = _carried_phi_for(func, loop, vc, cfg)
    if phi is None:
        return None

    update = vc.instr
    updated_var = update.dest
    domtree = DominatorTree.build(func, cfg=cfg)
    update_block = None
    for blk in loop.blocks(func):
        if update in blk.instrs:
            update_block = blk.label
            break
    if update_block is None or not domtree.dominates(update_block, latch_label):
        return None  # conditional updates are out of scope for SVP

    header_block = func.block(loop.header)
    entry_incomings = {
        label: value
        for label, value in phi.incomings.items()
        if label not in latches
    }
    if len(entry_incomings) != 1:
        return None
    entry_label, init_value = next(iter(entry_incomings.items()))

    base = phi.dest.base
    predicted = func.fresh_var(f"{base}_pred")
    next_pred = func.fresh_var(f"{base}_nextpred")
    fixed = func.fresh_var(f"{base}_fix")
    mispredict = func.fresh_var(f"{base}_bad")

    # 1. The prediction chain replaces the original carrier.
    pred_phi = Phi(predicted, {entry_label: init_value, latch_label: fixed})
    header_block.add_phi(pred_phi)
    header_block.insert_before_terminator(
        BinOp("add", next_pred, predicted, Const(pattern.stride))
    )

    # 2. All uses of the old carried value read the prediction (at the
    # loop exit the prediction equals the old carried value, so
    # function-wide replacement is sound).
    for blk in func.blocks:
        for instr in blk.instrs:
            if instr is pred_phi:
                continue
            instr.replace_use(phi.dest, predicted)
    header_block.instrs.remove(phi)

    # 3. Check-and-recovery diamond before the back edge.
    latch_block = func.block(latch_label)
    back_jump = latch_block.terminator
    if not isinstance(back_jump, Jump) or back_jump.target != loop.header:
        return None
    latch_block.instrs.pop()  # remove the jump; re-attached below

    check_label = latch_label  # the check lives at the end of the latch
    fixup_label = func.fresh_label(f"svp_fix_{base}")
    merge_label = func.fresh_label(f"svp_merge_{base}")

    latch_block.append(BinOp("ne", mispredict, updated_var, next_pred))
    latch_block.append(Branch(mispredict, fixup_label, merge_label))
    # Hint the cost model: mispredictions are rare.
    latch_block.annotations["branch_hint"] = {
        fixup_label: max(0.0, 1.0 - pattern.hit_rate),
        merge_label: pattern.hit_rate,
    }

    latch_index = func.blocks.index(latch_block)
    fixup_block = Block(fixup_label)
    fixup_block.append(Jump(merge_label))
    merge_block = Block(merge_label)
    merge_block.add_phi(
        Phi(fixed, {check_label: next_pred, fixup_label: updated_var})
    )
    merge_block.append(Jump(loop.header))
    func.blocks.insert(latch_index + 1, fixup_block)
    func.blocks.insert(latch_index + 2, merge_block)

    # 4. The back edge now comes from the merge block: retarget every
    # header phi incoming accordingly (pred_phi included).
    for header_phi in header_block.phis():
        if latch_label in header_phi.incomings:
            header_phi.incomings[merge_label] = header_phi.incomings.pop(
                latch_label
            )

    verify_function(module, func, ssa=True)
    return SvpInfo(base, pattern.stride, pattern.hit_rate, check_label)
