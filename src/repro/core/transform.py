"""SPT loop transformation (paper §6.2).

Turns a selected loop plus its optimal partition into an SPT loop:

1. the body CFG is duplicated into an (initially empty) *pre-fork*
   region, exactly as the paper describes ("the CFG of original loop is
   duplicated with empty basic blocks as the initial CFG of the pre-fork
   region");
2. partition statements are physically moved from the original body
   (which becomes the *post-fork* region) into their pre-fork copies;
3. branches guarding moved statements are *replicated* into the
   pre-fork region; the post-fork original keeps branching on the same
   (now pre-computed) condition value -- the paper's ``temp_cond``
   pattern of Figure 12;
4. duplicated branches guarding nothing are elided by jumping straight
   to their immediate post-dominator, and unreachable or empty pre-fork
   blocks are cleaned up;
5. an ``SPT_FORK`` block is placed between the two regions, and
   ``SPT_KILL`` blocks are placed on the loop's exit edges (§1);
6. SSA form is re-established (fresh phis for definitions whose moved
   position no longer dominates their post-fork uses -- our equivalent
   of the temporary-variable insertion of Figures 10/11).

A transformed loop run *sequentially* computes exactly what the
original did (``SPT_FORK``/``SPT_KILL`` are no-ops outside the SPT
machine model), which is how the test suite establishes correctness.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfg import CFG
from repro.analysis.controldep import immediate_postdominators
from repro.analysis.depgraph import LoopDepGraph
from repro.analysis.loops import Loop
from repro.analysis.loopsummary import LoopSummary
from repro.core.partition import PartitionResult
from repro.ir.block import Block
from repro.ir.function import Function, Module
from repro.ir.instr import Branch, Instr, Jump, Phi, SptFork, SptKill
from repro.ir.values import Const
from repro.ir.verify import verify_function
from repro.ssa.optimize import (
    copy_propagate,
    eliminate_dead_code,
    remove_unreachable_blocks,
)
from repro.ssa.repair import repair_ssa


class TransformError(ValueError):
    """Raised when a loop's shape is outside what the SPT transformation
    handles; pass 2 counts these under "irregular control flow"."""


class SptLoopInfo:
    """Record of one transformed SPT loop."""

    def __init__(
        self,
        loop_id: int,
        header: str,
        fork_label: str,
        pre_labels: List[str],
        moved_count: int,
        replicated_branches: int,
        repaired_vars: int,
    ):
        self.loop_id = loop_id
        self.header = header
        self.fork_label = fork_label
        #: Pre-fork region block labels (fork block excluded).
        self.pre_labels = pre_labels
        self.moved_count = moved_count
        self.replicated_branches = replicated_branches
        #: Variables that needed SSA repair (the paper's temp insertion).
        self.repaired_vars = repaired_vars

    def __repr__(self) -> str:
        return (
            f"SptLoopInfo(loop={self.loop_id}, header={self.header}, "
            f"moved={self.moved_count})"
        )


def check_transformable(func: Function, loop: Loop, cfg: CFG = None) -> str:
    """Return the body-entry label, or raise :class:`TransformError`."""
    cfg = cfg or CFG.build(func)
    latches = loop.latches(cfg)
    if len(latches) != 1:
        raise TransformError(f"loop {loop.header}: {len(latches)} latches")
    for src, _ in loop.exit_edges(cfg):
        if src != loop.header:
            raise TransformError(f"loop {loop.header}: mid-body exit from {src}")
    header_block = func.block(loop.header)
    term = header_block.terminator
    if not isinstance(term, Branch):
        raise TransformError(f"loop {loop.header}: header does not test exit")
    in_body = [t for t in term.targets() if t in loop.body and t != loop.header]
    if len(in_body) != 1:
        raise TransformError(f"loop {loop.header}: irregular header branch")
    return in_body[0]


def transform_loop(
    module: Module,
    func: Function,
    loop: Loop,
    partition: PartitionResult,
    graph: LoopDepGraph,
) -> SptLoopInfo:
    """Apply the SPT transformation in place.  ``func`` must be in SSA
    form; it still is afterwards."""
    cfg = CFG.build(func)
    body_entry = check_transformable(func, loop, cfg)
    header_block = func.block(loop.header)
    header_phi_ids = {id(phi) for phi in header_block.phis()}

    moved: Set[int] = set()
    for instr in partition.prefork_stmts:
        if id(instr) in header_phi_ids:
            continue
        if isinstance(instr, LoopSummary):
            raise TransformError(
                f"loop {loop.header}: partition moves an inner loop"
            )
        info = graph.info.get(instr)
        if info is None or info.block == loop.header:
            continue
        moved.add(id(instr))

    ipdom = immediate_postdominators(func, loop, cfg)
    body_labels = [
        blk.label for blk in func.blocks if blk.label in loop.body
    ]
    non_header_labels = [l for l in body_labels if l != loop.header]

    fork_label = func.fresh_label(f"spt_fork_{loop.loop_id}")
    pre_name: Dict[str, str] = {
        label: func.fresh_label(f"pre_{label}") for label in non_header_labels
    }

    def map_target(label: str) -> str:
        """Where a pre-region copy of an edge to ``label`` goes."""
        if label == loop.header or label not in loop.body:
            return fork_label
        return pre_name[label]

    def elide_target(label: str) -> str:
        """Jump target replacing an elided pre-region branch: the branch
        block's immediate post-dominator (or the fork block when control
        would leave the body)."""
        cursor = ipdom.get(label)
        if cursor is None:
            return fork_label
        return map_target(cursor)

    # -- build the pre-fork region ------------------------------------------
    replicated_branches = 0
    moved_count = 0
    pre_blocks: List[Block] = []
    for label in non_header_labels:
        src_block = func.block(label)
        pre_block = Block(pre_name[label])

        # Moved phis are replicated with remapped incoming labels (the
        # post-fork original is deleted below).
        for instr in list(src_block.instrs):
            if instr.is_terminator:
                continue
            if id(instr) not in moved:
                continue
            if isinstance(instr, Phi):
                remapped = {}
                for pred_label, value in instr.incomings.items():
                    remapped[map_target(pred_label)] = value
                instr.incomings = remapped
            src_block.instrs.remove(instr)
            pre_block.instrs.append(instr)
            moved_count += 1

        term = src_block.terminator
        if isinstance(term, Branch) and id(term) in moved:
            # Replicate the branch; the post-fork original keeps using
            # the same (pre-computed) condition value -- Figure 12.
            pre_block.append(
                Branch(term.cond, map_target(term.iftrue), map_target(term.iffalse))
            )
            replicated_branches += 1
        elif isinstance(term, Branch):
            pre_block.append(Jump(elide_target(label)))
        elif isinstance(term, Jump):
            pre_block.append(Jump(map_target(term.target)))
        else:
            raise TransformError(
                f"loop {loop.header}: unexpected terminator in {label}"
            )
        pre_blocks.append(pre_block)

    fork_block = Block(fork_label)
    fork_block.append(SptFork(loop.loop_id))
    fork_block.append(Jump(body_entry))

    # Insert pre region + fork block right after the header.
    header_index = func.blocks.index(header_block)
    for offset, blk in enumerate(pre_blocks + [fork_block]):
        func.blocks.insert(header_index + 1 + offset, blk)

    # Redirect the header's in-body edge into the pre region.
    header_term = header_block.terminator
    pre_entry = pre_name[body_entry]
    if header_term.iftrue == body_entry:
        header_term.iftrue = pre_entry
    if header_term.iffalse == body_entry:
        header_term.iffalse = pre_entry

    # Phi incomings of the body entry now come from the fork block.
    body_entry_block = func.block(body_entry)
    for phi in body_entry_block.phis():
        if loop.header in phi.incomings:
            phi.incomings[fork_label] = phi.incomings.pop(loop.header)

    _cleanup_pre_region(func, loop, pre_blocks, fork_label)

    # -- SPT_KILL on every loop-exit edge -------------------------------------
    # The loop body has grown: the pre-fork region and fork block are
    # inside the SPT loop now, so exit edges are computed against the
    # extended body (otherwise the header -> pre-region edge would be
    # mistaken for an exit and a kill would land on the hot path).
    cfg = CFG.build(func)
    extended_body = set(loop.body) | {fork_label}
    extended_body.update(
        blk.label for blk in pre_blocks if func.has_block(blk.label)
    )
    exit_edges = [
        (src, dst)
        for src in sorted(extended_body)
        if func.has_block(src)
        for dst in cfg.succs.get(src, ())
        if dst not in extended_body
    ]
    for src, dst in exit_edges:
        kill_block = _split_exit_edge(func, src, dst, loop)
        kill_block.instrs.insert(0, SptKill(loop.loop_id))

    # -- restore SSA and tidy up ------------------------------------------------
    remove_unreachable_blocks(func)
    _fix_phi_incomings(func)
    repaired = repair_ssa(func)
    copy_propagate(func)
    eliminate_dead_code(func)
    verify_function(module, func, ssa=True)

    surviving_pre = [
        blk.label for blk in func.blocks if blk.label in {b.label for b in pre_blocks}
    ]
    return SptLoopInfo(
        loop_id=loop.loop_id,
        header=loop.header,
        fork_label=fork_label,
        pre_labels=surviving_pre,
        moved_count=moved_count,
        replicated_branches=replicated_branches,
        repaired_vars=len(repaired),
    )


def _cleanup_pre_region(
    func: Function, loop: Loop, pre_blocks: List[Block], fork_label: str
) -> None:
    """Remove unreachable pre-region blocks and thread empty jumps."""
    pre_labels = {blk.label for blk in pre_blocks}

    # Thread: an empty pre block that just jumps is bypassed.
    forward: Dict[str, str] = {}
    for blk in pre_blocks:
        if len(blk.instrs) == 1 and isinstance(blk.instrs[0], Jump):
            forward[blk.label] = blk.instrs[0].target

    def resolve(label: str) -> str:
        seen = set()
        while label in forward and label not in seen:
            seen.add(label)
            label = forward[label]
        return label

    for blk in func.blocks:
        term = blk.terminator
        if isinstance(term, Jump):
            term.target = resolve(term.target)
        elif isinstance(term, Branch):
            term.iftrue = resolve(term.iftrue)
            term.iffalse = resolve(term.iffalse)

    # Drop now-unreachable pre blocks.
    cfg = CFG.build(func)
    reachable = cfg.reachable()
    func.blocks = [
        blk
        for blk in func.blocks
        if blk.label not in pre_labels or blk.label in reachable
    ]

    # Phi incoming labels that were bypassed must follow the threading:
    # a phi in block B with incoming from a threaded pre block P keeps
    # label P only if P still jumps to B; otherwise the predecessor that
    # now reaches B is whoever jumped over P.  Rebuilding from the CFG in
    # _fix_phi_incomings (called later) handles the general case.


def _split_exit_edge(func: Function, src: str, dst: str, loop: Loop) -> Block:
    """Split the exit edge ``src -> dst`` with a fresh block (for the
    SPT_KILL), updating phis in ``dst``."""
    from repro.analysis.cfg import split_edge

    return split_edge(func, src, dst, f"spt_exit_{loop.loop_id}")


def _fix_phi_incomings(func: Function) -> None:
    """Reconcile phi incoming labels with the actual CFG predecessors.

    Pre-region threading can reroute edges; any phi predecessor that no
    longer exists is dropped, and any new predecessor gets the value the
    old unique incoming supplied (or zero when ambiguous paths carry no
    value -- those paths never read the phi dynamically).
    """
    cfg = CFG.build(func)
    for blk in func.blocks:
        preds = set(cfg.preds[blk.label])
        for phi in blk.phis():
            current = set(phi.incomings)
            stale = current - preds
            missing = preds - current
            if not stale and not missing:
                continue
            if len(stale) == 1 and len(missing) == 1:
                # A single rerouted edge: carry the value over.
                old = stale.pop()
                new = missing.pop()
                phi.incomings[new] = phi.incomings.pop(old)
                continue
            for label in stale:
                phi.incomings.pop(label)
            default = None
            if phi.incomings:
                values = {str(v): v for v in phi.incomings.values()}
                if len(values) == 1:
                    default = next(iter(values.values()))
            for label in missing:
                phi.incomings[label] = default if default is not None else Const(0)
