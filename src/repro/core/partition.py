"""Optimal SPT loop partitioning by branch-and-bound (paper §5.2).

The search enumerates downward-closed subsets of the VC-dep graph in
canonical order (only candidates with a larger topological number than
anything already selected may be added, so each subset is visited once)
and prunes with the two heuristics of §5.2.1:

1. a subset whose pre-fork region size already exceeds the threshold is
   not expanded (size grows monotonically along a search path);
2. the cost of the best possible offspring of a subset ``S`` at cursor
   position ``k`` is bounded below by the cost of ``S`` plus *every*
   candidate with topological number above ``k`` moved pre-fork
   (misspeculation cost decreases monotonically in the pre-fork set);
   when that bound cannot beat the incumbent, the subtree is cut.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.analysis.depgraph import LoopDepGraph
from repro.core.config import SptConfig
from repro.core.costgraph import CostGraph, build_cost_graph
from repro.core.costmodel import CostEvaluator, make_cost_evaluator
from repro.core.vcdep import VCDepGraph
from repro.core.violation import ViolationCandidate, find_violation_candidates
from repro.ir.instr import Instr
from repro.obs.telemetry import NULL_TELEMETRY
from repro.resilience.watchdog import Watchdog


class PartitionResult:
    """Outcome of the optimal-partition search for one loop."""

    def __init__(
        self,
        loop,
        candidates: List[ViolationCandidate],
        prefork_vcs: List[ViolationCandidate],
        prefork_stmts: Set[Instr],
        cost: float,
        prefork_size: float,
        body_size: float,
        search_nodes: int,
        skipped_too_many_vcs: bool = False,
        evaluations: int = 0,
        cache_hits: int = 0,
        cost_node_visits: int = 0,
        pruned_size: int = 0,
        pruned_bound: int = 0,
        budget_exhausted: bool = False,
        deadline_exhausted: bool = False,
    ):
        self.loop = loop
        self.candidates = candidates
        #: Violation candidates assigned to the pre-fork region.
        self.prefork_vcs = prefork_vcs
        #: Full statement set of the pre-fork region (legality closure).
        self.prefork_stmts = prefork_stmts
        #: Optimal misspeculation cost (§4.2.4 units).
        self.cost = cost
        #: Pre-fork region size in elementary operations.
        self.prefork_size = prefork_size
        self.body_size = body_size
        #: Number of subsets the branch-and-bound evaluated.
        self.search_nodes = search_nodes
        #: True when the loop had too many VCs and was skipped (§5.2).
        self.skipped_too_many_vcs = skipped_too_many_vcs
        #: Cost evaluations performed (evaluator cache misses).
        self.evaluations = evaluations
        #: Cost evaluations answered from the evaluator cache.
        self.cache_hits = cache_hits
        #: Cost-graph nodes visited by probability propagation.
        self.cost_node_visits = cost_node_visits
        #: Subtrees cut by pruning heuristic 1 (size monotone) / 2
        #: (cost lower bound) of §5.2.1.
        self.pruned_size = pruned_size
        self.pruned_bound = pruned_bound
        #: True when the node budget (``max_search_nodes``) actually
        #: suppressed an expansion: the result is best-so-far, not
        #: proven optimal.
        self.budget_exhausted = budget_exhausted
        #: True when the anytime deadline (``search_deadline_ms``)
        #: stopped the search early.
        self.deadline_exhausted = deadline_exhausted
        #: Per-candidate cost breakdown: (vc, in_prefork, marginal)
        #: where ``marginal`` is the cost increase of evicting a
        #: pre-fork candidate / the saving of admitting a post-fork one.
        self.vc_breakdown: List[Tuple[ViolationCandidate, bool, float]] = []

    @property
    def cost_ratio(self) -> float:
        """Misspeculation cost relative to loop body size."""
        return self.cost / self.body_size if self.body_size else float("inf")

    @property
    def cache_hit_rate(self) -> float:
        requests = self.evaluations + self.cache_hits
        return self.cache_hits / requests if requests else 0.0

    @property
    def optimal(self) -> bool:
        """True when the search ran to completion: the returned
        partition is the proven optimum, not an anytime best-so-far."""
        return not (
            self.skipped_too_many_vcs
            or self.budget_exhausted
            or self.deadline_exhausted
        )

    def to_dict(self) -> dict:
        """A JSON-serializable summary of the search outcome."""
        return {
            "cost": round(self.cost, 6) if self.cost != float("inf") else None,
            "prefork_vcs": len(self.prefork_vcs),
            "violation_candidates": len(self.candidates),
            "prefork_size": round(self.prefork_size, 2),
            "body_size": round(self.body_size, 2),
            "search_nodes": self.search_nodes,
            "skipped_too_many_vcs": self.skipped_too_many_vcs,
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "cost_node_visits": self.cost_node_visits,
            "pruned_size": self.pruned_size,
            "pruned_bound": self.pruned_bound,
            "optimal": self.optimal,
            "budget_exhausted": self.budget_exhausted,
            "deadline_exhausted": self.deadline_exhausted,
        }

    def __repr__(self) -> str:
        return (
            f"PartitionResult(cost={self.cost:.3f}, "
            f"prefork={len(self.prefork_vcs)}/{len(self.candidates)} VCs, "
            f"size={self.prefork_size:.1f}/{self.body_size:.1f})"
        )


def find_optimal_partition(
    graph: LoopDepGraph,
    config: SptConfig = None,
    candidates: List[ViolationCandidate] = None,
    cost_graph: CostGraph = None,
    use_pruning: bool = True,
    telemetry=None,
) -> PartitionResult:
    """Search the optimal SPT partition for one loop.

    ``use_pruning=False`` disables heuristic 2 (for the ablation bench;
    the canonical-order constraint and the size bound stay, as without
    them the enumeration would revisit subsets).
    """
    config = config or SptConfig()
    telemetry = telemetry or NULL_TELEMETRY
    loop = graph.loop
    body_size = loop.body_size(graph.func)

    if candidates is None:
        candidates = find_violation_candidates(graph)

    if len(candidates) > config.max_violation_candidates:
        if telemetry.enabled:
            telemetry.count("partition.skipped_too_many_vcs")
        return PartitionResult(
            loop,
            candidates,
            prefork_vcs=[],
            prefork_stmts=set(),
            cost=float("inf"),
            prefork_size=0.0,
            body_size=body_size,
            search_nodes=0,
            skipped_too_many_vcs=True,
        )

    if cost_graph is None:
        cost_graph = build_cost_graph(graph, candidates)
    evaluator = make_cost_evaluator(cost_graph, config)

    # Candidates already in the header block execute before the fork by
    # construction (the fork sits after the header); they are pre-fork
    # for free and are not searched.
    forced = {
        vc.instr
        for vc in candidates
        if graph.info[vc.instr].block == graph.loop.header
    }
    searchable = [vc for vc in candidates if vc.instr not in forced]

    vcdep = VCDepGraph(graph, searchable)
    size_threshold = config.prefork_size_threshold(body_size)

    def vc_keys(indices) -> Set[Instr]:
        keys = {vcdep.candidates[i].instr for i in indices}
        keys |= forced
        return keys

    best_cost = evaluator.cost(forced)
    best_set: Set[int] = set()
    search_nodes = 1
    node_budget = config.max_search_nodes
    pruned_size = 0
    pruned_bound = 0
    budget_exhausted = False
    deadline_exhausted = False
    # Anytime protocol: the search polls this watchdog once per node
    # and keeps the incumbent (the empty pre-fork set is always a legal
    # seed, costed above) when the deadline passes.
    deadline = (
        Watchdog(deadline_ms=config.search_deadline_ms)
        if config.search_deadline_ms is not None
        else None
    )

    def lower_bound(selected: Set[int], cursor: int) -> float:
        """Cost if every candidate beyond ``cursor`` also moved pre-fork."""
        optimistic = set(selected)
        optimistic.update(range(cursor + 1, len(vcdep)))
        return evaluator.cost(vc_keys(optimistic))

    def search(selected: Set[int], cursor: int) -> None:
        nonlocal best_cost, best_set, search_nodes, pruned_size, \
            pruned_bound, budget_exhausted, deadline_exhausted
        for index in vcdep.addable(selected, cursor):
            if search_nodes >= node_budget:
                # The flag marks an actually-suppressed expansion, so a
                # search that finished with exactly budget-many nodes
                # still counts as proven optimal.
                budget_exhausted = True
                return
            if deadline_exhausted or (
                deadline is not None and deadline.expired()
            ):
                deadline_exhausted = True
                return
            # Trap against the innermost phase watchdog (if any), so a
            # containment deadline can break a runaway search too.
            Watchdog.poll_current()
            child = selected | {index}
            size = vcdep.partition_size(child)
            if size > size_threshold:
                # Pruning heuristic 1: size is monotone along the path.
                pruned_size += 1
                continue
            search_nodes += 1
            cost = evaluator.cost(vc_keys(child))
            if cost < best_cost - 1e-12 or (
                abs(cost - best_cost) <= 1e-12 and len(child) < len(best_set)
            ):
                best_cost = cost
                best_set = set(child)
            if use_pruning and lower_bound(child, index) >= best_cost - 1e-12:
                # Pruning heuristic 2: no offspring can improve.
                pruned_bound += 1
                continue
            search(child, index)

    search(set(), -1)

    prefork_vcs = [vcdep.candidates[i] for i in sorted(best_set)]
    prefork_stmts = vcdep.union_closure(best_set)
    result = PartitionResult(
        loop,
        candidates,
        prefork_vcs=prefork_vcs,
        prefork_stmts=prefork_stmts,
        cost=best_cost,
        prefork_size=vcdep.partition_size(best_set),
        body_size=body_size,
        search_nodes=search_nodes,
        evaluations=evaluator.evaluations,
        cache_hits=evaluator.cache_hits,
        cost_node_visits=evaluator.node_visits,
        pruned_size=pruned_size,
        pruned_bound=pruned_bound,
        budget_exhausted=budget_exhausted,
        deadline_exhausted=deadline_exhausted,
    )
    result.vc_breakdown = _vc_breakdown(
        candidates, best_set, best_cost, evaluator, vc_keys
    )
    if telemetry.enabled:
        telemetry.count("partition.loops_searched")
        telemetry.count("partition.search_nodes", search_nodes)
        telemetry.count("partition.cost_evaluations", evaluator.evaluations)
        telemetry.count("partition.cost_cache_hits", evaluator.cache_hits)
        telemetry.count("partition.cost_node_visits", evaluator.node_visits)
        telemetry.count("partition.pruned_size", pruned_size)
        telemetry.count("partition.pruned_bound", pruned_bound)
        if budget_exhausted:
            telemetry.count("partition.budget_exhausted")
        if deadline_exhausted:
            telemetry.count("partition.deadline_exhausted")
    return result


def _vc_breakdown(
    candidates, best_set, best_cost, evaluator, vc_keys
) -> List[Tuple[ViolationCandidate, bool, float]]:
    """Marginal misspeculation-cost attribution per violation candidate.

    Relative to the optimal pre-fork set: for a pre-fork candidate the
    cost increase of evicting it, for a post-fork candidate the saving
    of admitting it (the legality closure is ignored here -- this is an
    attribution, not a feasibility statement).  The evaluator's memo
    makes these |VC| extra evaluations cheap next to the search.
    """
    if best_cost == float("inf"):
        return [(vc, False, 0.0) for vc in candidates]
    best_keys = vc_keys(best_set)
    breakdown: List[Tuple[ViolationCandidate, bool, float]] = []
    for vc in candidates:
        in_prefork = vc.instr in best_keys
        if in_prefork:
            marginal = evaluator.cost(best_keys - {vc.instr}) - best_cost
        else:
            marginal = best_cost - evaluator.cost(best_keys | {vc.instr})
        breakdown.append((vc, in_prefork, marginal))
    return breakdown


def brute_force_partition(
    graph: LoopDepGraph,
    config: SptConfig = None,
    candidates: List[ViolationCandidate] = None,
) -> Optional[PartitionResult]:
    """Exhaustive reference implementation for testing: enumerate every
    downward-closed subset within the size threshold."""
    config = config or SptConfig()
    loop = graph.loop
    body_size = loop.body_size(graph.func)
    if candidates is None:
        candidates = find_violation_candidates(graph)
    cost_graph = build_cost_graph(graph, candidates)
    evaluator = CostEvaluator(cost_graph)
    forced = {
        vc.instr
        for vc in candidates
        if graph.info[vc.instr].block == graph.loop.header
    }
    searchable = [vc for vc in candidates if vc.instr not in forced]
    vcdep = VCDepGraph(graph, searchable)
    threshold = config.prefork_size_threshold(body_size)

    n = len(vcdep)
    best_cost = float("inf")
    best_set: Set[int] = set()
    explored = 0
    for mask in range(1 << n):
        selected = {i for i in range(n) if mask & (1 << i)}
        if not vcdep.downward_closed(selected):
            continue
        if vcdep.partition_size(selected) > threshold:
            continue
        explored += 1
        cost = evaluator.cost(
            {vcdep.candidates[i].instr for i in selected} | forced
        )
        if cost < best_cost - 1e-12 or (
            abs(cost - best_cost) <= 1e-12 and len(selected) < len(best_set)
        ):
            best_cost = cost
            best_set = selected
    return PartitionResult(
        loop,
        candidates,
        prefork_vcs=[vcdep.candidates[i] for i in sorted(best_set)],
        prefork_stmts=vcdep.union_closure(best_set),
        cost=best_cost,
        prefork_size=vcdep.partition_size(best_set),
        body_size=body_size,
        search_nodes=explored,
        evaluations=evaluator.evaluations,
        cache_hits=evaluator.cache_hits,
        cost_node_visits=evaluator.node_visits,
    )
