"""The paper's primary contribution: the cost-driven SPT compilation
framework (cost model, optimal partition search, two-pass selection and
transformation, and the enabling techniques)."""

from repro.core.config import (
    SptConfig,
    anticipated_config,
    basic_config,
    best_config,
)
from repro.core.costgraph import CostGraph, PseudoNode, build_cost_graph
from repro.core.costmodel import (
    CostEvaluator,
    IncrementalCostEvaluator,
    make_cost_evaluator,
    misspeculation_cost,
    reexecution_probabilities,
)
from repro.core.partition import (
    PartitionResult,
    brute_force_partition,
    find_optimal_partition,
)
from repro.core.pipeline import CompilationResult, Workload, compile_spt
from repro.core.privatize import privatize
from repro.core.regions import (
    RegionSplit,
    choose_region_split,
    find_region_splits,
    spine_blocks,
)
from repro.core.selection import (
    ALL_CATEGORIES,
    LoopCandidate,
    category_histogram,
    classify,
    estimated_benefit,
    select_spt_loops,
)
from repro.core.svp import SvpInfo, apply_svp, critical_candidates
from repro.core.transform import (
    SptLoopInfo,
    TransformError,
    check_transformable,
    transform_loop,
)
from repro.core.unroll import UnrollReport, choose_factor, unroll_function, unroll_loop
from repro.core.vcdep import VCDepGraph, closure_size, statement_closure
from repro.core.violation import ViolationCandidate, find_violation_candidates

__all__ = [
    "ALL_CATEGORIES",
    "CompilationResult",
    "CostEvaluator",
    "IncrementalCostEvaluator",
    "make_cost_evaluator",
    "CostGraph",
    "LoopCandidate",
    "PartitionResult",
    "PseudoNode",
    "RegionSplit",
    "SptConfig",
    "SptLoopInfo",
    "SvpInfo",
    "TransformError",
    "UnrollReport",
    "VCDepGraph",
    "ViolationCandidate",
    "Workload",
    "anticipated_config",
    "apply_svp",
    "basic_config",
    "best_config",
    "brute_force_partition",
    "build_cost_graph",
    "category_histogram",
    "check_transformable",
    "choose_factor",
    "choose_region_split",
    "find_region_splits",
    "spine_blocks",
    "classify",
    "closure_size",
    "compile_spt",
    "critical_candidates",
    "estimated_benefit",
    "find_optimal_partition",
    "find_violation_candidates",
    "misspeculation_cost",
    "privatize",
    "reexecution_probabilities",
    "select_spt_loops",
    "statement_closure",
    "transform_loop",
    "unroll_function",
    "unroll_loop",
]
