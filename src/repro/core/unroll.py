"""Loop unrolling (paper §7.1).

SPT loops need bodies big enough to amortize the fork/commit overheads,
so small loops are unrolled before everything else -- the paper inserts
a loop-unrolling pragma before ORC's LNO phase; our equivalent runs on
the pre-SSA IR right after the frontend.

The unroller recognizes *counted* loops::

    header:  c = lt i, n ; br c, body..., exit
    body:    ... exactly one  i = i + step  ...

and performs guarded unrolling: a new guard header tests ``i + (k-1) *
step < n`` and runs ``k`` test-free body copies per trip; iterations
that fail the guard fall into the original loop, which survives intact
as the remainder.  The unrolled loop keeps a single header-exit, which
is exactly the shape the SPT transformation requires.

ORC could only unroll counted DO loops; ``while`` loops whose condition
happens to match the counted pattern are only unrolled when
``SptConfig.unroll_while_loops`` is set (the paper's *anticipated*
while-loop unrolling).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.analysis.cfg import CFG
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import Loop, LoopNest
from repro.core.config import SptConfig
from repro.ir.block import Block
from repro.ir.function import Function
from repro.ir.instr import BinOp, Branch, Instr, Jump, Phi
from repro.ir.values import Const, Value, Var


class UnrollReport:
    """What the unroller did to one function."""

    def __init__(self):
        #: (header label, factor, loop kind) per unrolled loop.
        self.unrolled: List[tuple] = []
        #: headers skipped because they are while-loops and while-loop
        #: unrolling is disabled.
        self.skipped_while: List[str] = []
        #: headers skipped because they do not match the counted-loop
        #: pattern at all.
        self.skipped_uncounted: List[str] = []

    def __repr__(self) -> str:
        return f"UnrollReport({self.unrolled})"


class CountedLoop(NamedTuple):
    """A recognized ``for (i; i < n; i += step)`` loop."""

    counter: Var
    bound: Value
    cmp_op: str  # normalized: counter on the left
    step: int
    update: BinOp
    exit_label: str
    body_entry: str


def loop_kind(func: Function, loop: Loop) -> str:
    """"for" when the frontend tagged the header as a counted loop,
    else "while"."""
    return func.block(loop.header).annotations.get("loop_kind", "while")


def choose_factor(body_size: float, config: SptConfig) -> int:
    """Unroll factor aiming at ``config.unroll_target_size``."""
    if body_size <= 0:
        return 1
    factor = 1
    while (
        body_size * factor < config.unroll_target_size
        and factor < config.max_unroll_factor
    ):
        factor += 1
    return factor


def match_counted_loop(func: Function, loop: Loop, cfg: CFG = None) -> Optional[CountedLoop]:
    """Recognize the counted-loop pattern on pre-SSA IR, or None."""
    cfg = cfg or CFG.build(func)
    header = func.block(loop.header)
    term = header.terminator
    if not isinstance(term, Branch):
        return None
    in_loop = [t for t in term.targets() if t in loop.body and t != loop.header]
    out_loop = [t for t in term.targets() if t not in loop.body]
    if len(in_loop) != 1 or len(out_loop) != 1:
        return None
    # Any other exit makes the loop uncounted for our purposes.
    if any(src != loop.header for src, _ in loop.exit_edges(cfg)):
        return None

    # The branch condition: a comparison defined in the header.
    cond_def = None
    for instr in header.instrs:
        if instr.dest is not None and instr.dest == term.cond:
            cond_def = instr
    if not isinstance(cond_def, BinOp) or cond_def.op not in ("lt", "le", "gt", "ge"):
        return None

    # One side is the counter (a Var updated in the loop), the other the
    # bound (invariant).  Normalize to counter-on-the-left.
    defs_in_loop: Dict[Var, List[Instr]] = {}
    for blk in loop.blocks(func):
        for instr in blk.instrs:
            if instr.dest is not None:
                defs_in_loop.setdefault(instr.dest, []).append(instr)

    def normalized(counter_side: Value, bound_side: Value, op: str):
        if not isinstance(counter_side, Var):
            return None
        if isinstance(bound_side, Var) and bound_side in defs_in_loop:
            return None  # bound changes inside the loop
        updates = [
            i for i in defs_in_loop.get(counter_side, []) if i is not cond_def
        ]
        if len(updates) != 1:
            return None
        update = updates[0]
        if not isinstance(update, BinOp) or update.op not in ("add", "sub"):
            return None
        if update.lhs == counter_side and isinstance(update.rhs, Const):
            step = update.rhs.value if update.op == "add" else -update.rhs.value
        elif (
            update.op == "add"
            and update.rhs == counter_side
            and isinstance(update.lhs, Const)
        ):
            step = update.lhs.value
        else:
            return None
        if not isinstance(step, int) or step == 0:
            return None
        # Direction must agree with the comparison or the guard math is
        # meaningless.
        if op in ("lt", "le") and step < 0:
            return None
        if op in ("gt", "ge") and step > 0:
            return None
        # The update must run exactly once per iteration.
        domtree = DominatorTree.build(func, cfg=cfg)
        update_block = next(
            blk.label for blk in loop.blocks(func) if update in blk.instrs
        )
        for latch in loop.latches(cfg):
            if not domtree.dominates(update_block, latch):
                return None
        return CountedLoop(
            counter_side, bound_side, op, step, update, out_loop[0], in_loop[0]
        )

    result = normalized(cond_def.lhs, cond_def.rhs, cond_def.op)
    if result is not None:
        return result
    flipped = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}[cond_def.op]
    return normalized(cond_def.rhs, cond_def.lhs, flipped)


def unroll_loop(func: Function, loop: Loop, factor: int) -> bool:
    """Guarded-unroll ``loop`` in place by ``factor`` (pre-SSA IR only).

    Returns False (leaving the function untouched) when the loop does
    not match the counted pattern.
    """
    if factor <= 1:
        return True
    if any(
        isinstance(instr, Phi)
        for blk in loop.blocks(func)
        for instr in blk.instrs
    ):
        raise ValueError("unrolling must run before SSA construction")
    cfg = CFG.build(func)
    counted = match_counted_loop(func, loop, cfg)
    if counted is None:
        return False

    header = func.block(loop.header)
    latches = loop.latches(cfg)
    body_labels = [blk.label for blk in func.blocks if blk.label in loop.body]

    guard_label = func.fresh_label(f"{loop.header}.guard")

    def copy_label(label: str, iteration: int) -> str:
        return f"{label}.u{iteration}"

    # -- guard block -----------------------------------------------------
    guard = Block(guard_label)
    guard.annotations.update(func.block(loop.header).annotations)
    lookahead = func.fresh_var("unroll_ahead")
    guard_cond = func.fresh_var("unroll_ok")
    offset = (factor - 1) * counted.step
    guard.append(BinOp("add", lookahead, counted.counter, Const(offset)))
    guard.append(BinOp(counted.cmp_op, guard_cond, lookahead, counted.bound))
    guard.append(
        Branch(guard_cond, copy_label(loop.header, 1), loop.header)
    )

    # -- body copies ----------------------------------------------------------
    new_blocks: List[Block] = [guard]
    for iteration in range(1, factor + 1):
        for label in body_labels:
            src = func.block(label)
            dst = Block(copy_label(label, iteration))
            for instr in src.instrs:
                dst.instrs.append(instr.clone())
            term = dst.terminator
            if label == loop.header:
                # The copy's exit test is subsumed by the guard: fall
                # straight into the body (the dead compare is DCE'd).
                dst.instrs[-1] = Jump(copy_label(counted.body_entry, iteration))
            elif isinstance(term, (Jump, Branch)):
                for attr in ("target", "iftrue", "iffalse"):
                    old = getattr(term, attr, None)
                    if old is None:
                        continue
                    if old == loop.header and label in latches:
                        new = (
                            copy_label(loop.header, iteration + 1)
                            if iteration < factor
                            else guard_label
                        )
                    elif old in loop.body:
                        new = copy_label(old, iteration)
                    else:
                        new = old  # should not happen: no mid-body exits
                    setattr(term, attr, new)
            new_blocks.append(dst)

    # -- rewire entries ---------------------------------------------------------
    for blk in func.blocks:
        if blk.label in loop.body and blk.label in latches:
            continue  # remainder back edge stays on the original header
        if blk.label in loop.body:
            continue
        term = blk.terminator
        if term is None:
            continue
        for attr in ("target", "iftrue", "iffalse"):
            if getattr(term, attr, None) == loop.header:
                setattr(term, attr, guard_label)

    header_index = func.blocks.index(header)
    for offset_index, blk in enumerate(new_blocks):
        func.blocks.insert(header_index + offset_index, blk)
    return True


def unroll_function(func: Function, config: SptConfig) -> UnrollReport:
    """Unroll every innermost loop of ``func`` per the configuration."""
    report = UnrollReport()
    if not config.enable_unrolling:
        return report

    nest = LoopNest.build(func)
    for loop in nest.innermost():
        kind = loop_kind(func, loop)
        if kind == "while" and not config.unroll_while_loops:
            report.skipped_while.append(loop.header)
            continue
        body_size = loop.body_size(func)
        factor = choose_factor(body_size, config)
        if factor > 1:
            if unroll_loop(func, loop, factor):
                report.unrolled.append((loop.header, factor, kind))
            else:
                report.skipped_uncounted.append(loop.header)
    return report
