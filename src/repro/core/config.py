"""All tunables of the SPT compilation framework in one place.

The thresholds mirror the paper's selection criteria (§6.1) and search
constraints (§5).  Sizes are measured in elementary-operation units
(``Instr.cost``), the same unit the misspeculation cost is expressed in.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace
from typing import Optional


@dataclass
class SptConfig:
    """Configuration for the cost-driven speculative parallelization."""

    # -- §5: optimal partition search -----------------------------------
    #: Pre-fork region size threshold, as a fraction of loop body size
    #: (criterion 2 of §6.1 and pruning heuristic 1 of §5.2.1).
    prefork_fraction: float = 0.4
    #: Loops with more violation candidates than this are skipped (§5.2:
    #: "loops with too many violation candidates are skipped"; the paper
    #: reports using 30).
    max_violation_candidates: int = 30
    #: Hard cap on branch-and-bound search nodes (safety valve; the
    #: monotone pruning normally keeps the search tiny).  Exhaustion is
    #: surfaced as ``PartitionResult.budget_exhausted`` (and a
    #: ``search_budget`` degradation record), never silent.
    max_search_nodes: int = 200_000
    #: Anytime-search wall-clock deadline in milliseconds (None = no
    #: deadline).  On expiry the search returns its best-so-far legal
    #: partition flagged ``optimal: false`` -- the empty pre-fork set is
    #: always a legal seed, so a result always exists.
    search_deadline_ms: Optional[float] = None

    # -- fault containment (repro.resilience) ---------------------------------
    #: Wall-clock watchdog armed around each firewalled pipeline phase,
    #: in milliseconds (None = phases are firewalled but not timed).  A
    #: phase overrunning it degrades that loop with a
    #: ``watchdog_timeout`` record instead of wedging the compilation.
    phase_deadline_ms: Optional[float] = None
    #: Retry a faulted loop analysis on cheaper configurations
    #: (no_incremental → small_budget) before skipping the loop.
    enable_degradation_ladder: bool = True
    #: Batch-driver stall backstop in seconds: total silence (no
    #: results, no live claimed work) for this long marks the remaining
    #: tasks lost (``repro batch --stall-timeout``).
    batch_stall_timeout_s: float = 60.0

    # -- §6.1: SPT loop selection ------------------------------------------
    #: Misspeculation cost threshold, as a fraction of loop body size
    #: (criterion 1).
    cost_fraction: float = 0.15
    #: Minimum loop body size in elementary operations (criterion 3a).
    min_body_size: int = 12
    #: Maximum loop body size (criterion 3b; the paper's experiments used
    #: a maximum loop size limit of 1000).
    max_body_size: int = 1000
    #: Minimum expected iteration count (criterion 4: "a number smaller
    #: than 2 means the next iteration is not likely to be executed").
    min_trip_count: float = 2.0

    # -- §7.1: loop unrolling ------------------------------------------------
    #: Whether to unroll loops at all ("loop unrolling is always enabled
    #: in all our experiments").
    enable_unrolling: bool = True
    #: Whether while-loops (non-counted loops) may be unrolled.  The
    #: paper's ORC could only unroll DO loops; while-loop unrolling is
    #: part of the *anticipated* compilation.
    unroll_while_loops: bool = False
    #: Target body size the unroller aims for (the paper's SPT loops
    #: average ~400 dynamic instructions per iteration; fork/commit
    #: overheads need bodies well above the minimum).
    unroll_target_size: int = 64
    #: Maximum unroll factor.
    max_unroll_factor: int = 8

    # -- §7.2: software value prediction ------------------------------------
    enable_svp: bool = False
    #: Minimum profiled hit rate before SVP code is inserted ("both the
    #: value-prediction overhead and the mis-prediction cost are
    #: acceptably low").
    svp_min_hit_rate: float = 0.85

    # -- §7.3: dependence profiling -------------------------------------------
    enable_dep_profiling: bool = False
    #: Static probability assumed for unprofiled may-alias memory deps.
    static_mem_prob: float = 0.5
    #: Static probability assumed for impure-call dependences.
    static_call_prob: float = 0.5

    # -- §9 future work: general code regions ---------------------------------
    #: Evaluate intra-iteration region splits for loops rejected with
    #: too-large bodies (off by default: the paper left this as future
    #: work; see repro.core.regions).
    enable_region_speculation: bool = False

    # -- anticipated-compilation extras (§8, third bar of Figure 14) ---------
    #: Use interprocedural mod/ref summaries for calls to local functions
    #: instead of worst-case aliasing (stands in for the paper's manual
    #: "export of global variables beyond their visible scopes").
    enable_modref_summaries: bool = False
    #: Enable scalar/array privatization of provably iteration-local
    #: buffers (part of the anticipated compilation).
    enable_privatization: bool = False

    # -- framework fast paths (infrastructure, not paper semantics) ----------
    #: Profile workloads on the block-compiled interpreter
    #: (repro.profiling.compiled).  The reference interpreter stays
    #: available as the oracle for differential testing.
    fast_interp: bool = True
    #: Splice hot block paths into superblock traces on the compiled
    #: interpreter (repro.profiling.traces): guarded straight-line
    #: closures with fall-back to block execution on guard failure.
    #: Bitwise-identical results; only wall-clock changes.  Excluded
    #: from the fingerprint (infrastructure knob, not semantics).
    trace_interp: bool = field(
        default=True, metadata={"fingerprint": False}
    )
    #: Batch timing/cache accounting per block or trace instead of per
    #: op (repro.machine.vector_timing).  Exact under the integer-tick
    #: timing model, so simulated cycle counts are unchanged.  Excluded
    #: from the fingerprint for the same reason as ``trace_interp``.
    vector_timing: bool = field(
        default=True, metadata={"fingerprint": False}
    )
    #: Evaluate misspeculation costs incrementally during the partition
    #: search: only cost-graph nodes downstream of the pseudo nodes that
    #: changed are re-propagated.  ``False`` selects the full-recompute
    #: reference evaluator.
    incremental_cost: bool = True
    #: LRU bound on memoized cost evaluations / incremental states per
    #: partition search.
    cost_cache_size: int = 4096

    # -- machine overheads (used by selection gain estimates) ---------------
    fork_overhead_cycles: float = 6.0
    commit_overhead_cycles: float = 5.0
    #: Average cycles one elementary operation retires in on the target
    #: core (multi-issue makes it well under 1); converts the cost
    #: model's op-unit sizes into cycles for the benefit estimate.
    cycles_per_op: float = 0.55
    #: Safety margin: a loop is selected only when the predicted SPT
    #: round beats sequential execution by at least this factor.
    selection_margin: float = 0.95

    def __post_init__(self):
        if not 0.0 <= self.prefork_fraction <= 1.0:
            raise ValueError("prefork_fraction must be in [0, 1]")
        if self.cost_fraction < 0.0:
            raise ValueError("cost_fraction must be non-negative")
        if self.min_body_size < 0 or self.max_body_size < self.min_body_size:
            raise ValueError("need 0 <= min_body_size <= max_body_size")
        if self.max_violation_candidates < 1:
            raise ValueError("max_violation_candidates must be positive")
        if self.max_unroll_factor < 1:
            raise ValueError("max_unroll_factor must be positive")
        if not 0.0 <= self.svp_min_hit_rate <= 1.0:
            raise ValueError("svp_min_hit_rate must be in [0, 1]")
        if self.cycles_per_op <= 0:
            raise ValueError("cycles_per_op must be positive")
        if self.cost_cache_size < 1:
            raise ValueError("cost_cache_size must be positive")
        if self.search_deadline_ms is not None and self.search_deadline_ms <= 0:
            raise ValueError("search_deadline_ms must be positive when set")
        if self.phase_deadline_ms is not None and self.phase_deadline_ms <= 0:
            raise ValueError("phase_deadline_ms must be positive when set")
        if self.batch_stall_timeout_s <= 0:
            raise ValueError("batch_stall_timeout_s must be positive")

    def with_overrides(self, **kwargs) -> "SptConfig":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)

    def fingerprint(self) -> str:
        """A stable SHA-256 hex digest over every tunable.

        Two configs with identical field values always fingerprint
        identically (across processes and sessions), and any field
        change -- including of fields added in future versions --
        produces a new digest.  The batch result cache
        (:mod:`repro.batch.cache`) keys every entry on this, so cached
        analyses can never be served under a different configuration.

        Fields marked ``metadata={"fingerprint": False}`` are pure
        infrastructure accelerators whose on/off state provably cannot
        change any analysis result (``trace_interp``,
        ``vector_timing``); they are excluded so cached results and
        golden manifests stay valid across those switches.
        """
        parts = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self)
            if f.metadata.get("fingerprint", True)
        ]
        return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()

    # -- derived thresholds ----------------------------------------------------

    def prefork_size_threshold(self, body_size: float) -> float:
        return self.prefork_fraction * body_size

    def cost_threshold(self, body_size: float) -> float:
        return self.cost_fraction * body_size


def basic_config() -> SptConfig:
    """The paper's *basic compilation*: cost model + code reordering +
    loop unrolling, with control-flow edge profiling only."""
    return SptConfig()


def best_config() -> SptConfig:
    """The paper's *current best compilation*: basic plus software value
    prediction and data-dependence profiling feedback."""
    return SptConfig(enable_svp=True, enable_dep_profiling=True)


def anticipated_config() -> SptConfig:
    """The paper's *anticipated best compilation*: best plus while-loop
    unrolling, privatization and interprocedural summaries."""
    return SptConfig(
        enable_svp=True,
        enable_dep_profiling=True,
        unroll_while_loops=True,
        enable_modref_summaries=True,
        enable_privatization=True,
    )
