"""Violation-candidate identification (paper §4.2.1).

A *violation candidate* (VC) is the source of a cross-iteration true
data dependence: if it executes in the main thread's post-fork region,
the speculative thread (running the next iteration) may consume a stale
value and must re-execute the affected computation.

Register-carried candidates come from SSA structure: the definitions
feeding a loop-header phi around the back edge.  When the latch-incoming
value is itself a non-header phi (a conditional update, or the
check-and-recovery merge that software value prediction introduces), the
phi is *expanded* into the set of real definitions feeding it; each
inherits the phi's readers and a violation probability equal to its own
reaching probability.  This is what step 1 of §4.2.3 calls the violation
ratio: "how often the main thread will reach it and modify its results".

Memory-carried candidates are the sources of cross-iteration store->load
(or call) edges from the dependence graph.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.depgraph import DepEdge, LoopDepGraph
from repro.ir.instr import Instr, Phi
from repro.ir.values import Var


class ViolationCandidate:
    """One violation candidate with its cross-iteration readers."""

    def __init__(self, instr: Instr, violation_prob: float):
        self.instr = instr
        #: Probability, per iteration, that this statement executes and
        #: modifies the carried value (§4.2.3 step 1).
        self.violation_prob = violation_prob
        #: (reader instr, dependence probability) pairs -- the edges the
        #: cost graph draws from this candidate's pseudo node.
        self.readers: List[Tuple[Instr, float]] = []

    def add_reader(self, reader: Instr, prob: float) -> None:
        for index, (existing, old_prob) in enumerate(self.readers):
            if existing is reader:
                # Independent carriers combine: 1 - (1-p1)(1-p2).
                self.readers[index] = (existing, 1 - (1 - old_prob) * (1 - prob))
                return
        self.readers.append((reader, prob))

    def __repr__(self) -> str:
        return (
            f"VC({self.instr!r}, p_violate={self.violation_prob:.2f}, "
            f"{len(self.readers)} readers)"
        )


def _expand_phi_sources(
    graph: LoopDepGraph, instr: Instr, path_prob: float = 1.0, seen=None
) -> List[Tuple[Instr, float]]:
    """Resolve a non-header phi into the concrete defs feeding it.

    Each source carries the probability that *its* value is the one the
    phi selects (the product of phi-selection probabilities along the
    chain) -- this is what makes a rarely-taken SVP recovery path a
    low-probability violation candidate.
    """
    if seen is None:
        seen = set()
    if id(instr) in seen:
        return []
    seen.add(id(instr))

    header_label = graph.loop.header
    info = graph.info.get(instr)
    is_header_phi = (
        isinstance(instr, Phi) and info is not None and info.block == header_label
    )
    if is_header_phi:
        # Reaching a header phi means the value survived the iteration
        # unmodified -- no statement to blame, no violation.
        return []
    if not isinstance(instr, Phi):
        return [(instr, path_prob)]

    sources: List[Tuple[Instr, float]] = []
    for edge in graph.intra_preds(instr, kinds=("true",)):
        sources.extend(
            _expand_phi_sources(graph, edge.src, path_prob * edge.prob, seen)
        )
    return sources


def find_violation_candidates(graph: LoopDepGraph) -> List[ViolationCandidate]:
    """All violation candidates of the loop, with readers attached.

    Candidates are returned in program order (deterministic).
    """
    by_instr: Dict[int, ViolationCandidate] = {}

    def candidate_for(instr: Instr, prob: float) -> ViolationCandidate:
        vc = by_instr.get(id(instr))
        if vc is None:
            vc = ViolationCandidate(instr, prob)
            by_instr[id(instr)] = vc
        else:
            # The same statement reached through several carriers is
            # still one modification event: keep the strongest estimate.
            vc.violation_prob = max(vc.violation_prob, prob)
        return vc

    for edge in graph.cross_true_edges():
        sources = _expand_phi_sources(graph, edge.src)
        for src, path_prob in sources:
            if src not in graph.info:
                continue
            prob = min(graph.reach(src), path_prob)
            vc = candidate_for(src, prob)
            vc.add_reader(edge.dst, edge.prob)

    candidates = list(by_instr.values())
    candidates.sort(key=lambda vc: graph.order(vc.instr))
    return candidates
