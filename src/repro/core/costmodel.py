"""Misspeculation cost computation (paper §4.2.3-4.2.4).

Given a cost graph and an SPT loop partition (the set of violation
candidates placed in the pre-fork region), compute:

1. each pseudo node's initial re-execution probability: 0 when its
   candidate is pre-fork, its violation ratio otherwise;
2. each operation node's re-execution probability in topological order,
   folding predecessors under an independence assumption::

       x = 1 - (1 - x) * (1 - r * v(p))

3. the misspeculation cost ``sum v(c) * Cost(c)`` over operation nodes
   (pseudo nodes excluded).

The cost is monotonically non-increasing in the pre-fork set -- adding a
candidate to the pre-fork region can only zero one pseudo node's
probability -- which is the property the branch-and-bound partition
search exploits (§5).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Set

from repro.core.costgraph import CostGraph, PseudoNode


def reexecution_probabilities(
    cg: CostGraph, prefork: Iterable[Hashable]
) -> Dict[Hashable, float]:
    """Re-execution probability of every node (pseudo keys included).

    ``prefork`` holds the keys of violation candidates assigned to the
    pre-fork region.
    """
    prefork_set: Set[Hashable] = set(prefork)
    v: Dict[object, float] = {}

    for key, pseudo in cg.pseudos.items():
        v[pseudo] = 0.0 if key in prefork_set else pseudo.violation_prob

    for node in cg.topo_nodes:
        x = 0.0
        for pred, r in cg.in_edges.get(node, ()):
            pred_v = v.get(pred, 0.0) if isinstance(pred, PseudoNode) else v.get(pred, 0.0)
            x = 1.0 - (1.0 - x) * (1.0 - r * pred_v)
        v[node] = x

    # Re-key pseudo entries by their candidate for external consumption.
    result: Dict[Hashable, float] = {}
    for node in cg.topo_nodes:
        result[node] = v[node]
    for key, pseudo in cg.pseudos.items():
        result[("pseudo", key)] = v[pseudo]
    return result


def misspeculation_cost(cg: CostGraph, prefork: Iterable[Hashable]) -> float:
    """Expected re-executed computation per speculative iteration
    (§4.2.4)."""
    prefork_set: Set[Hashable] = set(prefork)
    v: Dict[object, float] = {}
    for key, pseudo in cg.pseudos.items():
        v[pseudo] = 0.0 if key in prefork_set else pseudo.violation_prob

    total = 0.0
    for node in cg.topo_nodes:
        x = 0.0
        for pred, r in cg.in_edges.get(node, ()):
            x = 1.0 - (1.0 - x) * (1.0 - r * v.get(pred, 0.0))
        v[node] = x
        total += x * cg.costs[node]
    return total


class CostEvaluator:
    """Memoized misspeculation-cost evaluation over candidate subsets.

    The branch-and-bound search evaluates many nearby partitions; the
    evaluator caches results by frozen pre-fork set.
    """

    def __init__(self, cg: CostGraph):
        self.cg = cg
        self._cache: Dict[FrozenSet, float] = {}
        self.evaluations = 0

    def cost(self, prefork: Iterable[Hashable]) -> float:
        key = frozenset(prefork)
        if key not in self._cache:
            self.evaluations += 1
            self._cache[key] = misspeculation_cost(self.cg, key)
        return self._cache[key]
