"""Misspeculation cost computation (paper §4.2.3-4.2.4).

Given a cost graph and an SPT loop partition (the set of violation
candidates placed in the pre-fork region), compute:

1. each pseudo node's initial re-execution probability: 0 when its
   candidate is pre-fork, its violation ratio otherwise;
2. each operation node's re-execution probability in topological order,
   folding predecessors under an independence assumption::

       x = 1 - (1 - x) * (1 - r * v(p))

3. the misspeculation cost ``sum v(c) * Cost(c)`` over operation nodes
   (pseudo nodes excluded).

The cost is monotonically non-increasing in the pre-fork set -- adding a
candidate to the pre-fork region can only zero one pseudo node's
probability -- which is the property the branch-and-bound partition
search exploits (§5).

Two evaluators serve the search:

* :class:`CostEvaluator` -- the reference oracle: a bounded-LRU memo
  over full-graph recomputation;
* :class:`IncrementalCostEvaluator` -- the fast path: when the search
  moves from a cached pre-fork set to a nearby one, only the nodes
  downstream of the pseudo nodes that actually changed are
  re-propagated (precomputed reachability + per-state memo).  The
  propagated probabilities are bitwise identical to a full recompute,
  so both evaluators drive the search to the same optimum.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.core.costgraph import CostGraph, PseudoNode

#: Default bound on memoized entries/states per evaluator.
DEFAULT_CACHE_SIZE = 4096


def reexecution_probabilities(
    cg: CostGraph, prefork: Iterable[Hashable]
) -> Dict[Hashable, float]:
    """Re-execution probability of every node (pseudo keys included).

    ``prefork`` holds the keys of violation candidates assigned to the
    pre-fork region.
    """
    prefork_set: Set[Hashable] = set(prefork)
    v: Dict[object, float] = {}

    for key, pseudo in cg.pseudos.items():
        v[pseudo] = 0.0 if key in prefork_set else pseudo.violation_prob

    for node in cg.topo_nodes:
        x = 0.0
        for pred, r in cg.in_edges.get(node, ()):
            x = 1.0 - (1.0 - x) * (1.0 - r * v.get(pred, 0.0))
        v[node] = x

    # Re-key pseudo entries by their candidate for external consumption.
    result: Dict[Hashable, float] = {}
    for node in cg.topo_nodes:
        result[node] = v[node]
    for key, pseudo in cg.pseudos.items():
        result[("pseudo", key)] = v[pseudo]
    return result


def misspeculation_cost(cg: CostGraph, prefork: Iterable[Hashable]) -> float:
    """Expected re-executed computation per speculative iteration
    (§4.2.4)."""
    prefork_set: Set[Hashable] = set(prefork)
    v: Dict[object, float] = {}
    for key, pseudo in cg.pseudos.items():
        v[pseudo] = 0.0 if key in prefork_set else pseudo.violation_prob

    total = 0.0
    for node in cg.topo_nodes:
        x = 0.0
        for pred, r in cg.in_edges.get(node, ()):
            x = 1.0 - (1.0 - x) * (1.0 - r * v.get(pred, 0.0))
        v[node] = x
        total += x * cg.costs[node]
    return total


class CostEvaluator:
    """Memoized full-recompute misspeculation-cost evaluation.

    The branch-and-bound search evaluates many nearby partitions; the
    evaluator caches results by frozen pre-fork set.  The cache is
    LRU-bounded so large VC sets cannot grow it without limit.
    """

    def __init__(self, cg: CostGraph, max_size: int = DEFAULT_CACHE_SIZE):
        self.cg = cg
        self.max_size = max_size
        self._cache: "OrderedDict[FrozenSet, float]" = OrderedDict()
        #: Number of cost computations actually performed (cache misses).
        self.evaluations = 0
        #: Number of cache hits.
        self.cache_hits = 0
        #: Cost-graph nodes visited by propagation.
        self.node_visits = 0

    @property
    def hit_rate(self) -> float:
        requests = self.evaluations + self.cache_hits
        return self.cache_hits / requests if requests else 0.0

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for telemetry and diagnostics."""
        return _evaluator_stats(self)

    def cost(self, prefork: Iterable[Hashable]) -> float:
        key = frozenset(prefork)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            self._cache.move_to_end(key)
            return cached
        self.evaluations += 1
        self.node_visits += self.cg.size
        value = misspeculation_cost(self.cg, key)
        self._cache[key] = value
        if len(self._cache) > self.max_size:
            self._cache.popitem(last=False)
        return value


class IncrementalCostEvaluator:
    """Incremental misspeculation-cost evaluation over nearby subsets.

    The search's moves are tiny: a child subset adds one VC to the
    pre-fork set, and ``lower_bound`` sweeps a suffix in.  Zeroing a
    pseudo node's probability can only change nodes *downstream* of
    that pseudo, so the evaluator keeps, per cached pre-fork set, the
    full probability vector, and re-propagates only the union of the
    changed pseudos' downstream cones (precomputed per pseudo) relative
    to the nearest cached state.

    Because un-affected nodes keep their exact values and affected
    nodes are recomputed in topological order from them, every cached
    probability vector -- and therefore every returned cost -- is
    bitwise identical to :func:`misspeculation_cost` on the same set.
    """

    def __init__(self, cg: CostGraph, max_states: int = DEFAULT_CACHE_SIZE):
        self.cg = cg
        self.max_states = max_states
        #: frozen pre-fork set -> (probability vector, cost)
        self._states: "OrderedDict[FrozenSet, Tuple[Dict, float]]" = OrderedDict()
        self.evaluations = 0
        self.cache_hits = 0
        #: Cost-graph nodes visited by propagation (the ≥5× metric).
        self.node_visits = 0

        #: successor adjacency: PseudoNode or node key -> [op nodes]
        self._succs: Dict[object, List[Hashable]] = {}
        for node, edges in cg.in_edges.items():
            for pred, _r in edges:
                self._succs.setdefault(pred, []).append(node)
        self._topo_index: Dict[Hashable, int] = {
            node: i for i, node in enumerate(cg.topo_nodes)
        }
        #: vc key -> topo-sorted list of operation nodes downstream of
        #: its pseudo node (computed lazily, memoized).
        self._downstream: Dict[Hashable, List[Hashable]] = {}

    @property
    def hit_rate(self) -> float:
        requests = self.evaluations + self.cache_hits
        return self.cache_hits / requests if requests else 0.0

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for telemetry and diagnostics."""
        return _evaluator_stats(self)

    # -- reachability ---------------------------------------------------

    def _downstream_of(self, vc_key: Hashable) -> List[Hashable]:
        cached = self._downstream.get(vc_key)
        if cached is not None:
            return cached
        pseudo = self.cg.pseudos[vc_key]
        seen: Set[Hashable] = set()
        stack = list(self._succs.get(pseudo, ()))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succs.get(node, ()))
        ordered = sorted(seen, key=self._topo_index.__getitem__)
        self._downstream[vc_key] = ordered
        return ordered

    # -- state construction ---------------------------------------------

    def _full_state(self, key: FrozenSet) -> Tuple[Dict, float]:
        """Propagate the whole graph (mirrors misspeculation_cost)."""
        cg = self.cg
        v: Dict[object, float] = {}
        for vc_key, pseudo in cg.pseudos.items():
            v[pseudo] = 0.0 if vc_key in key else pseudo.violation_prob
        for node in cg.topo_nodes:
            x = 0.0
            for pred, r in cg.in_edges.get(node, ()):
                x = 1.0 - (1.0 - x) * (1.0 - r * v.get(pred, 0.0))
            v[node] = x
        self.node_visits += cg.size
        return v, self._total(v)

    def _total(self, v: Dict) -> float:
        # Summed in topological order with the same accumulation order
        # as misspeculation_cost, so results agree bitwise.
        cg = self.cg
        total = 0.0
        for node in cg.topo_nodes:
            total += v[node] * cg.costs[node]
        return total

    def _incremental_state(
        self, parent: Tuple[Dict, float], parent_key: FrozenSet, key: FrozenSet
    ) -> Tuple[Dict, float]:
        """Change-driven re-propagation from ``parent``'s vector.

        A node is recomputed only when a predecessor's value actually
        changed; the frontier pops in topological order, so every
        predecessor is final by the time a node is visited.  Nodes
        whose inputs are bitwise unchanged keep bitwise-unchanged
        values, which is what makes skipping them sound.
        """
        from heapq import heappop, heappush

        cg = self.cg
        topo_nodes = cg.topo_nodes
        topo_index = self._topo_index
        v = dict(parent[0])

        heap: List[int] = []
        queued: Set[int] = set()

        def enqueue_succs(obj) -> None:
            for succ in self._succs.get(obj, ()):
                index = topo_index[succ]
                if index not in queued:
                    queued.add(index)
                    heappush(heap, index)

        for vc_key in parent_key ^ key:
            pseudo = cg.pseudos.get(vc_key)
            if pseudo is None:
                continue
            value = 0.0 if vc_key in key else pseudo.violation_prob
            if value != v[pseudo]:
                v[pseudo] = value
                enqueue_succs(pseudo)

        visits = 0
        while heap:
            node = topo_nodes[heappop(heap)]
            x = 0.0
            for pred, r in cg.in_edges.get(node, ()):
                x = 1.0 - (1.0 - x) * (1.0 - r * v.get(pred, 0.0))
            visits += 1
            if x != v[node]:
                v[node] = x
                enqueue_succs(node)
        self.node_visits += visits
        return v, self._total(v)

    # -- parent selection ------------------------------------------------

    def _estimate(self, parent_key: FrozenSet, key: FrozenSet) -> int:
        """Upper bound on nodes re-propagated from ``parent_key``."""
        total = 0
        for k in parent_key ^ key:
            if k in self.cg.pseudos:
                total += len(self._downstream_of(k))
        return total

    def _find_parent(
        self, key: FrozenSet
    ) -> Optional[Tuple[FrozenSet, Tuple[Dict, float]]]:
        states = self._states
        if not states:
            return None
        best: Optional[Tuple[int, FrozenSet]] = None

        def consider(candidate: FrozenSet) -> None:
            nonlocal best
            estimate = self._estimate(candidate, key)
            if best is None or estimate < best[0]:
                best = (estimate, candidate)

        # One-removed parents (the search's child moves), one-added
        # parents (consecutive lower_bound suffixes), and the
        # most-recently-used state (whatever the search just touched).
        for element in key:
            parent = key - {element}
            if parent in states:
                consider(parent)
        for vc_key in self.cg.pseudos:
            if vc_key not in key:
                parent = key | {vc_key}
                if parent in states:
                    consider(parent)
        consider(next(reversed(states)))
        return best[1], states[best[1]]

    # -- the public evaluation API ---------------------------------------

    def cost(self, prefork: Iterable[Hashable]) -> float:
        key = frozenset(prefork)
        state = self._states.get(key)
        if state is not None:
            self.cache_hits += 1
            self._states.move_to_end(key)
            return state[1]
        self.evaluations += 1
        parent = self._find_parent(key)
        if parent is None:
            state = self._full_state(key)
        else:
            parent_key, parent_state = parent
            state = self._incremental_state(parent_state, parent_key, key)
        self._states[key] = state
        if len(self._states) > self.max_states:
            self._states.popitem(last=False)
        return state[1]

    def probabilities(self, prefork: Iterable[Hashable]) -> Dict[Hashable, float]:
        """The re-execution probability vector behind :meth:`cost`
        (re-keyed like :func:`reexecution_probabilities`)."""
        key = frozenset(prefork)
        self.cost(key)
        v = self._states[key][0]
        result: Dict[Hashable, float] = {}
        for node in self.cg.topo_nodes:
            result[node] = v[node]
        for vc_key, pseudo in self.cg.pseudos.items():
            result[("pseudo", vc_key)] = v[pseudo]
        return result


def _evaluator_stats(evaluator) -> Dict[str, float]:
    """The common counter snapshot both evaluator flavours expose."""
    return {
        "evaluations": evaluator.evaluations,
        "cache_hits": evaluator.cache_hits,
        "hit_rate": evaluator.hit_rate,
        "node_visits": evaluator.node_visits,
    }


def make_cost_evaluator(cg: CostGraph, config=None):
    """The evaluator the partition search should use under ``config``.

    Falls back to the incremental fast path when no config is given;
    ``SptConfig.incremental_cost=False`` selects the reference oracle.
    """
    if config is None:
        return IncrementalCostEvaluator(cg)
    if getattr(config, "incremental_cost", True):
        return IncrementalCostEvaluator(cg, max_states=config.cost_cache_size)
    return CostEvaluator(cg, max_size=config.cost_cache_size)
