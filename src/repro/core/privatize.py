"""Static privatization of iteration-local memory (anticipated
compilation, §8).

A load whose location is *always written earlier in the same iteration*
(a same-location dominating store with realization probability 1) can
never consume a value from the previous iteration: the buffer is
effectively private per iteration.  Cross-iteration dependence edges
into such loads are dropped from the dependence graph before the cost
model runs.

This is the static counterpart of what dependence profiling discovers
dynamically; the anticipated configuration enables it so that
write-before-read temporaries stop serializing loops even on unprofiled
paths.
"""

from __future__ import annotations

from typing import List

from repro.analysis import alias as alias_mod
from repro.analysis.depgraph import DepEdge, LoopDepGraph
from repro.analysis.dominators import DominatorTree
from repro.ir.instr import Load


def privatize(graph: LoopDepGraph) -> int:
    """Remove cross-iteration edges into provably iteration-local loads.

    Returns the number of edges removed.
    """
    domtree = DominatorTree.build(graph.func)

    def covered(load) -> bool:
        info = graph.info[load]
        for edge in graph.intra_preds(load, kinds=("true",)):
            if edge.carrier != "mem" or edge.prob < 1.0:
                continue
            if not alias_mod.same_location(edge.src, load):
                continue
            src_info = graph.info[edge.src]
            if src_info.block == info.block:
                if src_info.index < info.index:
                    return True
            elif domtree.dominates(src_info.block, info.block):
                return True
        return False

    removable: List[DepEdge] = []
    for edge in graph.cross_true_edges():
        if edge.carrier != "mem" or not isinstance(edge.dst, Load):
            continue
        if covered(edge.dst):
            removable.append(edge)

    for edge in removable:
        graph.edges.remove(edge)
        graph.out_edges[edge.src].remove(edge)
        graph.in_edges[edge.dst].remove(edge)
    return len(removable)
