"""Fault containment for the two-pass SPT pipeline.

The SPT execution model's universal recovery path is "run the loop
sequentially" -- which means *no* per-loop failure ever needs to abort
a compilation.  This package makes that operational:

* :mod:`~repro.resilience.degradation` -- the closed error taxonomy and
  the :class:`DegradationRecord` every contained fault becomes;
* :mod:`~repro.resilience.containment` -- :func:`run_contained`, the
  phase firewall wrapping each per-loop phase of pass 1 and each
  per-loop transform of pass 2;
* :mod:`~repro.resilience.ladder` -- the graceful-degradation retry
  ladder (full → no_incremental → small_budget → skip);
* :mod:`~repro.resilience.watchdog` -- wall-clock / recursion guards
  shared by the interpreters, the partition search, and the firewalls;
* :mod:`~repro.resilience.faults` -- the ``$REPRO_FAULT`` chaos hook
  (phase → raise / hang / slow) behind the chaos test suite and CI.

See ``docs/resilience.md``.
"""

from repro.resilience.containment import PASSTHROUGH, run_contained
from repro.resilience.degradation import (
    ALL_KINDS,
    DegradationRecord,
    KIND_ANALYSIS_ERROR,
    KIND_PROFILE_BUDGET,
    KIND_RESOURCE_GUARD,
    KIND_SEARCH_BUDGET,
    KIND_TRANSFORM_ERROR,
    KIND_WATCHDOG_TIMEOUT,
    classify_exception,
)
from repro.resilience.faults import (
    FAULT_ENV_VAR,
    FaultInjected,
    HANG_ENV_VAR,
    maybe_inject,
    parse_fault_specs,
    reset_fault_state,
)
from repro.resilience.ladder import (
    RUNG_FULL,
    RUNG_NO_INCREMENTAL,
    RUNG_SKIP,
    RUNG_SMALL_BUDGET,
    degraded_retry_overrides,
    ladder_rungs,
)
from repro.resilience.watchdog import (
    DepthExceeded,
    ProgramTimeout,
    Watchdog,
    WatchdogTimeout,
)

__all__ = [
    "ALL_KINDS",
    "DegradationRecord",
    "DepthExceeded",
    "FAULT_ENV_VAR",
    "FaultInjected",
    "HANG_ENV_VAR",
    "KIND_ANALYSIS_ERROR",
    "KIND_PROFILE_BUDGET",
    "KIND_RESOURCE_GUARD",
    "KIND_SEARCH_BUDGET",
    "KIND_TRANSFORM_ERROR",
    "KIND_WATCHDOG_TIMEOUT",
    "PASSTHROUGH",
    "ProgramTimeout",
    "RUNG_FULL",
    "RUNG_NO_INCREMENTAL",
    "RUNG_SKIP",
    "RUNG_SMALL_BUDGET",
    "Watchdog",
    "WatchdogTimeout",
    "classify_exception",
    "degraded_retry_overrides",
    "ladder_rungs",
    "maybe_inject",
    "parse_fault_specs",
    "reset_fault_state",
    "run_contained",
]
