"""The graceful-degradation ladder: retry a faulted loop ever cheaper.

When a per-loop analysis phase faults, the pipeline does not give up on
the loop immediately: it retries the analysis on successively cheaper
rungs before falling back to the always-legal "keep it sequential"
baseline.

====================  =====================================================
rung                  what changes
====================  =====================================================
``full``              the configured analysis (not a retry)
``no_incremental``    incremental cost evaluation disabled -- the full
                      recompute evaluator is the reference implementation
                      and has no cache/frontier state to corrupt
``small_budget``      tiny search-node budget plus a short anytime
                      deadline -- the search returns a best-so-far legal
                      partition almost immediately
``skip``              the loop stays sequential (a degraded
                      :class:`~repro.core.selection.LoopCandidate`)
====================  =====================================================

Each rung taken is counted (``resilience.ladder.<rung>``) and emitted
as an obs event, so a production batch can alert when loops start
sliding down the ladder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Tuple

if TYPE_CHECKING:  # import at runtime would cycle back through repro.core
    from repro.core.config import SptConfig

__all__ = [
    "LADDER_SEARCH_DEADLINE_MS",
    "LADDER_SEARCH_NODES",
    "RUNG_FULL",
    "RUNG_NO_INCREMENTAL",
    "RUNG_SKIP",
    "RUNG_SMALL_BUDGET",
    "degraded_retry_overrides",
    "ladder_rungs",
]

RUNG_FULL = "full"
RUNG_NO_INCREMENTAL = "no_incremental"
RUNG_SMALL_BUDGET = "small_budget"
RUNG_SKIP = "skip"

#: Node budget / anytime deadline of the ``small_budget`` rung.
LADDER_SEARCH_NODES = 2_000
LADDER_SEARCH_DEADLINE_MS = 100.0


def ladder_rungs(config: SptConfig) -> Iterator[Tuple[str, SptConfig]]:
    """Yield (rung name, config) from most to least capable.

    The first rung is always the configured analysis itself; retry
    rungs follow only when the ladder is enabled.  ``skip`` is not
    yielded -- it is what the caller does when the ladder runs out.
    """
    yield RUNG_FULL, config
    if not config.enable_degradation_ladder:
        return
    yield RUNG_NO_INCREMENTAL, config.with_overrides(incremental_cost=False)
    yield RUNG_SMALL_BUDGET, config.with_overrides(
        incremental_cost=False,
        max_search_nodes=min(config.max_search_nodes, LADDER_SEARCH_NODES),
        search_deadline_ms=(
            LADDER_SEARCH_DEADLINE_MS
            if config.search_deadline_ms is None
            else min(config.search_deadline_ms, LADDER_SEARCH_DEADLINE_MS)
        ),
    )


def degraded_retry_overrides(config: SptConfig) -> dict:
    """Config overrides for the batch worker's one post-timeout retry.

    Everything expensive or unbounded is dialed down: feedback passes
    off, search budgets tiny, and a phase deadline armed so even an
    uncooperative hang inside a phase is broken by the watchdog instead
    of a second SIGALRM."""
    return {
        "enable_svp": False,
        "enable_dep_profiling": False,
        "incremental_cost": False,
        "max_search_nodes": min(config.max_search_nodes, LADDER_SEARCH_NODES),
        "search_deadline_ms": LADDER_SEARCH_DEADLINE_MS,
        "phase_deadline_ms": (
            config.phase_deadline_ms
            if config.phase_deadline_ms is not None
            else 2_000.0
        ),
    }
