"""Chaos-engineering fault injection (``$REPRO_FAULT``).

Generalizes the batch layer's ``$REPRO_BATCH_CRASH_ON`` hook (which
simulates hard process deaths) to *in-process* faults targeted at
individual firewalled phases.  The spec grammar is::

    REPRO_FAULT = spec[,spec...]
    spec        = phase ":" mode [":" arg]
    mode        = "raise" | "hang" | "slow" | "torn"

``phase`` names a containment scope ("profile", "depgraph", "search",
"svp", "transform", "region_splits"), a request boundary outside
the pipeline firewall ("serve.request", fired by the ``repro serve``
daemon per admitted request), or a checkpoint IO site
("checkpoint.save" / "checkpoint.restore", fired by the snapshot
store around each write/read).  Modes:

``raise``
    Raise :class:`FaultInjected` at phase entry.  ``arg`` bounds how
    many times the fault fires in this process (default: unbounded) --
    a bounded fault lets tests watch the degradation ladder *recover*
    on a later rung.
``hang``
    Busy-wait inside the phase.  The hang is cooperative: it traps
    against the innermost active :class:`~repro.resilience.watchdog.
    Watchdog` (raising ``WatchdogTimeout`` for the firewall to
    contain) and gives up after ``$REPRO_FAULT_HANG_S`` seconds
    (default 60) so an unguarded run wedges visibly but not forever.
    An *uncooperative* hang -- one only a SIGALRM program timeout can
    break -- is what the hang looks like to a worker with no phase
    deadline configured.
``slow``
    Sleep ``arg`` seconds (default 0.05) at phase entry, for deadline
    and anytime-search tests.
``torn``
    Not raised at phase entry at all: write sites that support it
    (the checkpoint store, via :mod:`repro.util.atomicio`) ask
    :func:`consume_torn_fault` whether to publish a deliberately
    truncated document instead of the real one.  ``arg`` bounds the
    fire count like ``raise`` (default: fire once -- a forever-torn
    writer would starve any retry loop).

Injection sites call :func:`maybe_inject` with their phase name; the
disabled path is one environment lookup.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from repro.resilience.watchdog import Watchdog

__all__ = [
    "FAULT_ENV_VAR",
    "FaultInjected",
    "HANG_ENV_VAR",
    "consume_torn_fault",
    "maybe_inject",
    "parse_fault_specs",
    "reset_fault_state",
]

FAULT_ENV_VAR = "REPRO_FAULT"
HANG_ENV_VAR = "REPRO_FAULT_HANG_S"

_MODES = ("raise", "hang", "slow", "torn")


class FaultInjected(RuntimeError):
    """The synthetic failure ``REPRO_FAULT=<phase>:raise`` raises."""


#: Per-process fire counts per (phase, mode, arg) spec, so bounded
#: ``raise`` specs can stop firing after N injections.
_fired: Dict[Tuple[str, str, Optional[str]], int] = {}


def reset_fault_state() -> None:
    """Forget fire counts (tests re-arming bounded faults)."""
    _fired.clear()


def parse_fault_specs(raw: str) -> List[Tuple[str, str, Optional[str]]]:
    """Parse a ``REPRO_FAULT`` value into (phase, mode, arg) triples.

    Malformed specs are ignored rather than raised: a typo in a chaos
    environment variable must not itself take the compiler down."""
    specs: List[Tuple[str, str, Optional[str]]] = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) < 2 or len(fields) > 3:
            continue
        phase, mode = fields[0], fields[1]
        if not phase or mode not in _MODES:
            continue
        specs.append((phase, mode, fields[2] if len(fields) == 3 else None))
    return specs


def _hang() -> None:
    limit = 60.0
    raw = os.environ.get(HANG_ENV_VAR)
    if raw:
        try:
            limit = float(raw)
        except ValueError:
            pass
    end = time.monotonic() + limit
    while time.monotonic() < end:
        # Cooperative: an active phase watchdog breaks the hang with
        # WatchdogTimeout; a SIGALRM program timeout breaks the sleep.
        Watchdog.poll_current()
        time.sleep(0.01)


def maybe_inject(phase: str) -> None:
    """Fire any ``REPRO_FAULT`` spec matching ``phase``.

    Called at the entry of every containment scope; does nothing (one
    env lookup) unless the variable is set."""
    raw = os.environ.get(FAULT_ENV_VAR)
    if not raw:
        return
    for spec in parse_fault_specs(raw):
        spec_phase, mode, arg = spec
        if spec_phase != phase:
            continue
        if mode == "raise":
            limit = None
            if arg is not None:
                try:
                    limit = int(arg)
                except ValueError:
                    limit = None
            count = _fired.get(spec, 0)
            if limit is not None and count >= limit:
                continue
            _fired[spec] = count + 1
            raise FaultInjected(
                f"injected fault in phase {phase!r} "
                f"(fire {count + 1}"
                + (f"/{limit})" if limit is not None else ")")
            )
        if mode == "hang":
            _fired[spec] = _fired.get(spec, 0) + 1
            _hang()
        elif mode == "slow":
            delay = 0.05
            if arg is not None:
                try:
                    delay = float(arg)
                except ValueError:
                    pass
            _fired[spec] = _fired.get(spec, 0) + 1
            time.sleep(delay)
        # "torn" is never fired here: write sites pull it explicitly
        # through consume_torn_fault.


def consume_torn_fault(site: str) -> bool:
    """Whether a ``<site>:torn`` spec wants the next write truncated.

    Fires at most ``arg`` times per process (default once), so a
    store's cold-start retry after detecting the corrupt file is not
    itself torn again."""
    raw = os.environ.get(FAULT_ENV_VAR)
    if not raw:
        return False
    for spec in parse_fault_specs(raw):
        spec_phase, mode, arg = spec
        if spec_phase != site or mode != "torn":
            continue
        limit = 1
        if arg is not None:
            try:
                limit = int(arg)
            except ValueError:
                limit = 1
        count = _fired.get(spec, 0)
        if count >= limit:
            continue
        _fired[spec] = count + 1
        return True
    return False
