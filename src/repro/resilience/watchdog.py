"""Wall-clock and recursion watchdogs for long-running phases.

A :class:`Watchdog` bounds one unit of work (a partition search, a
profiling run, a contained pipeline phase) by wall-clock deadline and,
optionally, by recursion depth.  Two usage styles:

* polling -- the search calls :meth:`Watchdog.expired` once per node
  and returns its best-so-far answer when the deadline passes (the
  *anytime* protocol: no exception, just a truncated-but-legal result);
* trapping -- interpreters and containment scopes call
  :meth:`Watchdog.poll`, which raises :class:`WatchdogTimeout` so the
  enclosing firewall converts the overrun into a structured
  degradation.

Clock reads are amortized: ``poll()`` only consults the clock every
:data:`POLL_STRIDE` calls, so a watchdog in an interpreter hot loop
costs one integer increment per instruction.

The active watchdog is also published on a stack
(:meth:`Watchdog.push` / :meth:`Watchdog.pop`, normally managed by
``repro.resilience.containment``) so deep helpers -- including the
fault injector's cooperative ``hang`` mode -- can honor the innermost
deadline via :meth:`Watchdog.poll_current` without threading the
object through every signature.
"""

from __future__ import annotations

import time
from typing import List, Optional

__all__ = [
    "POLL_STRIDE",
    "DepthExceeded",
    "ProgramTimeout",
    "Watchdog",
    "WatchdogTimeout",
]

#: ``poll()`` consults the clock once per this many calls.
POLL_STRIDE = 256


class WatchdogTimeout(RuntimeError):
    """A watchdog's wall-clock deadline passed (degrades a phase)."""


class DepthExceeded(RuntimeError):
    """A watchdog's recursion-depth bound was exceeded (resource guard)."""


class ProgramTimeout(RuntimeError):
    """A whole-program compilation overran ``--program-timeout``.

    Raised by the batch worker's SIGALRM handler.  Deliberately *not* a
    :class:`WatchdogTimeout`: containment scopes must let it pass
    through so the worker -- not a per-loop firewall -- decides on the
    degraded retry.
    """


#: Watchdogs currently active, innermost last.  The pipeline is
#: single-threaded per compilation (one process per batch worker), so a
#: plain module list is sufficient and keeps poll_current allocation-free.
_ACTIVE: List["Watchdog"] = []


class Watchdog:
    """One wall-clock (and optional recursion-depth) guard."""

    __slots__ = ("deadline", "max_depth", "depth", "_clock", "_ticks")

    def __init__(
        self,
        deadline_ms: Optional[float] = None,
        max_depth: Optional[int] = None,
        clock=None,
    ):
        self._clock = clock or time.monotonic
        #: Absolute clock value after which the watchdog is expired
        #: (None = never expires by time).
        self.deadline: Optional[float] = (
            self._clock() + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )
        self.max_depth = max_depth
        self.depth = 0
        self._ticks = 0

    # -- polling protocol (anytime consumers) ----------------------------

    def expired(self) -> bool:
        """True once the wall-clock deadline has passed."""
        return self.deadline is not None and self._clock() >= self.deadline

    # -- trapping protocol (firewalled consumers) -------------------------

    def check(self) -> None:
        """Raise :class:`WatchdogTimeout` if the deadline has passed."""
        if self.expired():
            raise WatchdogTimeout(
                f"watchdog deadline exceeded after {self.depth} frames"
                if self.depth
                else "watchdog deadline exceeded"
            )

    def poll(self) -> None:
        """Amortized :meth:`check`: consults the clock every
        :data:`POLL_STRIDE` calls, for per-instruction call sites."""
        self._ticks += 1
        if self._ticks % POLL_STRIDE == 0:
            self.check()

    # -- recursion guard ---------------------------------------------------

    def descend(self) -> None:
        """Enter one recursion level; raises :class:`DepthExceeded`
        beyond ``max_depth``."""
        self.depth += 1
        if self.max_depth is not None and self.depth > self.max_depth:
            raise DepthExceeded(
                f"recursion depth {self.depth} exceeds bound {self.max_depth}"
            )

    def ascend(self) -> None:
        self.depth -= 1

    # -- ambient stack -----------------------------------------------------

    def push(self) -> "Watchdog":
        _ACTIVE.append(self)
        return self

    def pop(self) -> None:
        if _ACTIVE and _ACTIVE[-1] is self:
            _ACTIVE.pop()
        elif self in _ACTIVE:  # tolerate mis-nested teardown
            _ACTIVE.remove(self)

    @staticmethod
    def current() -> Optional["Watchdog"]:
        return _ACTIVE[-1] if _ACTIVE else None

    @staticmethod
    def poll_current() -> None:
        """Trap against the innermost active watchdog, if any."""
        if _ACTIVE:
            _ACTIVE[-1].check()

    def __repr__(self) -> str:
        remaining = (
            f"{self.deadline - self._clock():.3f}s left"
            if self.deadline is not None
            else "no deadline"
        )
        return f"Watchdog({remaining}, depth={self.depth})"
