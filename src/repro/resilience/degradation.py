"""The degradation taxonomy: structured records of contained faults.

Every fault a phase firewall contains -- and every budget the anytime
machinery exhausts -- becomes one :class:`DegradationRecord` with a
``kind`` from the closed taxonomy below.  Records are attached to the
:class:`~repro.core.selection.LoopCandidate` they degraded (or to the
:class:`~repro.core.pipeline.CompilationResult` for module-level
phases like profiling), serialized into summaries and manifests, and
counted into telemetry, so a production batch can alert on *which*
safety valve is firing without ever aborting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.resilience.watchdog import DepthExceeded, WatchdogTimeout

__all__ = [
    "ALL_KINDS",
    "DegradationRecord",
    "KIND_ANALYSIS_ERROR",
    "KIND_PROFILE_BUDGET",
    "KIND_RESOURCE_GUARD",
    "KIND_SEARCH_BUDGET",
    "KIND_TRANSFORM_ERROR",
    "KIND_WATCHDOG_TIMEOUT",
    "classify_exception",
]

#: Any exception from dependence/cost analysis the taxonomy does not
#: recognize more precisely.
KIND_ANALYSIS_ERROR = "analysis_error"
#: The partition search exhausted its node budget or anytime deadline
#: and returned a best-so-far (legal, possibly sub-optimal) partition.
KIND_SEARCH_BUDGET = "search_budget"
#: A profiling run exhausted ``Workload.fuel``; profiles are partial.
KIND_PROFILE_BUDGET = "profile_budget"
#: The SPT transformation refused or failed on this loop.
KIND_TRANSFORM_ERROR = "transform_error"
#: A wall-clock watchdog expired inside the phase.
KIND_WATCHDOG_TIMEOUT = "watchdog_timeout"
#: A process-resource guard tripped (recursion depth, memory).
KIND_RESOURCE_GUARD = "resource_guard"

ALL_KINDS = (
    KIND_ANALYSIS_ERROR,
    KIND_SEARCH_BUDGET,
    KIND_PROFILE_BUDGET,
    KIND_TRANSFORM_ERROR,
    KIND_WATCHDOG_TIMEOUT,
    KIND_RESOURCE_GUARD,
)


def classify_exception(exc: BaseException) -> str:
    """Map a contained exception to its taxonomy kind."""
    # Imported lazily to avoid cycles: this package must stay importable
    # before (and without) repro.core / repro.profiling.
    from repro.core.transform import TransformError
    from repro.profiling.interp import FuelExhausted

    if isinstance(exc, WatchdogTimeout):
        return KIND_WATCHDOG_TIMEOUT
    if isinstance(exc, FuelExhausted):
        return KIND_PROFILE_BUDGET
    if isinstance(exc, TransformError):
        return KIND_TRANSFORM_ERROR
    if isinstance(exc, (DepthExceeded, RecursionError, MemoryError)):
        return KIND_RESOURCE_GUARD
    return KIND_ANALYSIS_ERROR


@dataclass
class DegradationRecord:
    """One contained fault (or exhausted budget), fully attributed."""

    #: The firewalled phase ("depgraph", "search", "profile", "svp",
    #: "transform", "region_splits", "worker").
    phase: str
    #: Taxonomy kind (one of :data:`ALL_KINDS`).
    kind: str
    #: Human-readable cause (exception message or budget description).
    message: str = ""
    #: Exception class name, when an exception was contained.
    error_type: Optional[str] = None
    #: ``func:header`` when the degradation is scoped to one loop.
    loop: Optional[str] = None
    #: Ladder rung that finally applied ("full", "no_incremental",
    #: "small_budget", "skip") -- None for budget records that did not
    #: go through the retry ladder.
    rung: Optional[str] = None

    @classmethod
    def from_exception(
        cls,
        phase: str,
        exc: BaseException,
        loop: Optional[str] = None,
        rung: Optional[str] = None,
    ) -> "DegradationRecord":
        return cls(
            phase=phase,
            kind=classify_exception(exc),
            message=str(exc),
            error_type=exc.__class__.__name__,
            loop=loop,
            rung=rung,
        )

    def to_dict(self) -> Dict:
        """Deterministic JSON form (key order fixed, no volatile data)."""
        out: Dict = {"phase": self.phase, "kind": self.kind}
        if self.loop is not None:
            out["loop"] = self.loop
        if self.error_type is not None:
            out["error_type"] = self.error_type
        if self.message:
            out["message"] = self.message
        if self.rung is not None:
            out["rung"] = self.rung
        return out

    def __str__(self) -> str:
        where = f" [{self.loop}]" if self.loop else ""
        rung = f" (rung: {self.rung})" if self.rung else ""
        detail = f": {self.message}" if self.message else ""
        return f"{self.phase}/{self.kind}{where}{rung}{detail}"
