"""Phase firewalls: run one pipeline phase, contain anything it throws.

:func:`run_contained` is the single choke point every firewalled phase
goes through.  It arms the phase watchdog (when a deadline is
configured), fires any matching ``$REPRO_FAULT`` chaos spec, runs the
phase, and converts any escaping exception into a structured
:class:`~repro.resilience.degradation.DegradationRecord` -- the caller
gets ``(None, record)`` instead of a crash and degrades that one loop
(or phase) back to the sequential baseline the SPT model guarantees is
always legal.

Pass-through exceptions: :class:`~repro.resilience.watchdog.
ProgramTimeout` (the batch worker's whole-program SIGALRM) must reach
the worker loop, not be eaten by an inner firewall; ``KeyboardInterrupt``
and ``SystemExit`` derive from ``BaseException`` and are never caught.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.obs.telemetry import NULL_TELEMETRY
from repro.resilience.degradation import DegradationRecord
from repro.resilience.faults import maybe_inject
from repro.resilience.watchdog import ProgramTimeout, Watchdog

__all__ = ["PASSTHROUGH", "run_contained"]

#: Exceptions a firewall must never contain.
PASSTHROUGH = (ProgramTimeout,)


def run_contained(
    phase: str,
    fn: Callable[[Optional[Watchdog]], object],
    *,
    telemetry=NULL_TELEMETRY,
    deadline_ms: Optional[float] = None,
    loop: Optional[str] = None,
    rung: Optional[str] = None,
) -> Tuple[object, Optional[DegradationRecord]]:
    """Run ``fn(watchdog)`` inside the ``phase`` firewall.

    Returns ``(result, None)`` on success or ``(None, record)`` when a
    fault was contained.  ``fn`` receives the armed phase watchdog (or
    None when no ``deadline_ms`` is configured) so it can thread it
    into interpreters and searches; the same watchdog is also published
    on the ambient stack for :meth:`Watchdog.poll_current` callers.
    """
    watchdog: Optional[Watchdog] = None
    if deadline_ms is not None:
        watchdog = Watchdog(deadline_ms=deadline_ms).push()
    attrs = {}
    if loop is not None:
        attrs["loop"] = loop
    if rung is not None:
        attrs["rung"] = rung
    try:
        with telemetry.span(phase, **attrs):
            maybe_inject(phase)
            return fn(watchdog), None
    except PASSTHROUGH:
        raise
    except Exception as exc:  # noqa: BLE001 - the firewall's whole job
        record = DegradationRecord.from_exception(
            phase, exc, loop=loop, rung=rung
        )
        telemetry.record_degradation(record)
        return None, record
    finally:
        if watchdog is not None:
            watchdog.pop()
