"""Interpreter and interpreter-driven profilers (edge, dependence, value)."""

from repro.profiling.compiled import CompiledMachine, make_machine
from repro.profiling.dep_profile import DependenceProfile, LoopDepView
from repro.profiling.edge_profile import EdgeProfile
from repro.profiling.interp import (
    FuelExhausted,
    InterpError,
    Machine,
    Tracer,
    TracerEventCounter,
    run_module,
)
from repro.profiling.traces import CompiledTrace, TraceStats
from repro.profiling.value_profile import ValuePattern, ValueProfile

__all__ = [
    "CompiledMachine",
    "CompiledTrace",
    "DependenceProfile",
    "EdgeProfile",
    "FuelExhausted",
    "InterpError",
    "LoopDepView",
    "Machine",
    "TraceStats",
    "Tracer",
    "TracerEventCounter",
    "ValuePattern",
    "ValueProfile",
    "make_machine",
    "run_module",
]
