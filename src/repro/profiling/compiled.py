"""Block-compiled interpreter fast path.

:class:`~repro.profiling.interp.Machine` dispatches every dynamic
instruction through an ``isinstance`` chain and evaluates operands
through :meth:`Machine._eval`, paying the full interpretive overhead
50 million times per profiling run.  :class:`CompiledMachine` removes
that overhead by pre-compiling each basic block *once*, on first
execution, into a flat list of specialized closures:

* **operand accessors are resolved at compile time** -- constants are
  captured as Python values, variables become single dict lookups, and
  ``LoadAddr`` folds the symbol table lookup into a constant;
* **opcode dispatch is hoisted** -- the ``_BINOPS`` table lookup happens
  at block-compile time, so executing an ``add`` is one closure call;
* **phi batches are precomputed per predecessor label** -- entering a
  block through label ``L`` applies a prepared (dest, accessor) list
  with the parallel-assignment semantics of the reference interpreter;
* **tracer-aware specialization** -- at ``run()`` time the machine
  inspects which :class:`Tracer` hooks each attached tracer actually
  overrides and emits hook calls only for those, so the common
  zero-tracer (and edge-profile-only) case pays nothing for the
  observer interface;
* **batched fuel accounting** -- fuel is charged once per block with a
  single comparison instead of once per instruction.

Semantics match the reference interpreter exactly on well-formed
programs: return values, memory state, ``Machine.executed`` counts and
tracer event streams are all identical (the differential tests in
``tests/profiling/test_compiled.py`` assert this over the whole
benchmark suite).  The only tolerated divergence is *which* error
surfaces first on already-broken programs: batched fuel may exhaust at
block entry where the reference interpreter would first hit, say, a
division by zero mid-block.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.block import Block
from repro.ir.function import Function, Module
from repro.ir.instr import (
    BinOp,
    Branch,
    Call,
    Copy,
    Instr,
    Jump,
    Load,
    LoadAddr,
    Phi,
    Return,
    SptFork,
    SptKill,
    Store,
    UnOp,
)
from repro.ir.values import Const, Value, Var
from repro.profiling.interp import (
    _BINOPS,
    _UNOPS,
    _div,
    _mod,
    FuelExhausted,
    InterpError,
    Machine,
    Tracer,
)

#: Sentinel returned by terminator closures on function return.
_RETURN = object()

#: Tracer hook names that affect compiled code generation.
_HOOK_NAMES = (
    "on_enter_function",
    "on_exit_function",
    "on_block",
    "on_edge",
    "on_instr",
    "on_def",
    "on_load",
    "on_store",
    "on_call",
)


class _Hooks:
    """Tracers bucketed by the hooks they actually override.

    A tracer subscribes to a hook iff its class overrides the base
    :class:`Tracer` method; un-overridden no-op hooks are elided from
    the compiled code entirely.
    """

    __slots__ = _HOOK_NAMES + ("signature",)

    def __init__(self, tracers):
        signature = []
        for name in _HOOK_NAMES:
            base = getattr(Tracer, name)
            subscribed = tuple(
                t for t in tracers if getattr(type(t), name, base) is not base
            )
            setattr(self, name, subscribed)
            signature.append(tuple(id(t) for t in subscribed))
        self.signature = tuple(signature)

    @property
    def per_instr(self) -> bool:
        """Whether any per-instruction hook is live."""
        return bool(self.on_instr or self.on_def)


class _CompiledBlock:
    """One basic block lowered to closures."""

    __slots__ = ("block", "fuel", "ops", "term", "phis", "phi_batches", "hooked_phis")

    def __init__(self, block: Block):
        self.block = block
        #: Fuel charged on entry: the instructions the reference
        #: interpreter would execute in this block.
        self.fuel = 0
        #: Straight-line (non-phi, non-terminator) closures.
        self.ops: Tuple[Callable, ...] = ()
        #: Terminator closure: env -> next label | _RETURN (or raises).
        self.term: Callable = None
        #: The phi prefix (for diagnostics), or ().
        self.phis: Tuple[Phi, ...] = ()
        #: prev label -> precomputed batch, or None when the block has
        #: no phis.  Batch entries are (dest_name, accessor) pairs, or
        #: (phi, dest_name, accessor) triples when per-instruction
        #: hooks are live.
        self.phi_batches: Optional[Dict[str, tuple]] = None
        self.hooked_phis = False


class _CompiledFunction:
    """Lazily block-compiled code for one function on one machine."""

    def __init__(self, machine: "CompiledMachine", func: Function, hooks: _Hooks):
        self.machine = machine
        self.func = func
        self.hooks = hooks
        self.block_map = func.block_map()
        self.blocks: Dict[str, _CompiledBlock] = {}

    # -- operand accessors -------------------------------------------

    def _accessor(self, value: Value) -> Callable:
        if isinstance(value, Const):
            const = value.value
            return lambda env: const
        if isinstance(value, Var):
            name = value.name
            func_name = self.func.name

            def get(env):
                try:
                    return env[name]
                except KeyError:
                    raise InterpError(
                        f"use of undefined variable {name} in {func_name}"
                    ) from None

            return get
        raise InterpError(f"cannot evaluate {value!r}")

    # -- per-instruction cores ---------------------------------------
    #
    # A core executes one instruction against an environment and
    # returns the defined value (or None for pure effects); hook
    # wrapping happens in :meth:`_wrap`.

    def _binop_core(self, instr: BinOp) -> Callable:
        dest = instr.dest.name
        if instr.op == "div":
            fn = _div
        elif instr.op == "mod":
            fn = _mod
        else:
            fn = _BINOPS[instr.op]
        lhs, rhs = instr.lhs, instr.rhs
        func_name = self.func.name
        # The Var/Var and Var/Const shapes dominate hot loops; inline
        # the environment lookups so one closure call executes the op.
        if isinstance(lhs, Var) and isinstance(rhs, Var):
            n1, n2 = lhs.name, rhs.name

            def core(env):
                try:
                    value = fn(env[n1], env[n2])
                except KeyError as exc:
                    raise InterpError(
                        f"use of undefined variable {exc.args[0]} in {func_name}"
                    ) from None
                env[dest] = value
                return value

            return core
        if isinstance(lhs, Var) and isinstance(rhs, Const):
            n1, c2 = lhs.name, rhs.value

            def core(env):
                try:
                    value = fn(env[n1], c2)
                except KeyError:
                    raise InterpError(
                        f"use of undefined variable {n1} in {func_name}"
                    ) from None
                env[dest] = value
                return value

            return core
        get_lhs = self._accessor(lhs)
        get_rhs = self._accessor(rhs)

        def core(env):
            value = fn(get_lhs(env), get_rhs(env))
            env[dest] = value
            return value

        return core

    def _unop_core(self, instr: UnOp) -> Callable:
        dest = instr.dest.name
        fn = _UNOPS[instr.op]
        get_src = self._accessor(instr.src)

        def core(env):
            value = fn(get_src(env))
            env[dest] = value
            return value

        return core

    def _copy_core(self, instr: Copy) -> Callable:
        dest = instr.dest.name
        get_src = self._accessor(instr.src)

        def core(env):
            value = get_src(env)
            env[dest] = value
            return value

        return core

    def _loadaddr_core(self, instr: LoadAddr) -> Callable:
        # The symbol table is fixed at machine construction; fold the
        # lookup into a constant.
        base = self.machine.symbol_base(self.func, instr.sym)
        dest = instr.dest.name

        def core(env):
            env[dest] = base
            return base

        return core

    def _load_core(self, instr: Load) -> Callable:
        dest = instr.dest.name
        get_base = self._accessor(instr.base)
        get_off = self._accessor(instr.offset)
        machine = self.machine
        on_load = self.hooks.on_load
        if on_load:

            def core(env):
                addr = int(get_base(env)) + int(get_off(env))
                value = machine.read_mem(addr)
                for t in on_load:
                    t.on_load(instr, addr, value)
                env[dest] = value
                return value

            return core

        def core(env):
            addr = int(get_base(env)) + int(get_off(env))
            mem = machine.memory
            if 0 <= addr < len(mem):
                value = mem[addr]
            else:
                raise InterpError(f"load from invalid address {addr}")
            env[dest] = value
            return value

        return core

    def _store_core(self, instr: Store) -> Callable:
        get_base = self._accessor(instr.base)
        get_off = self._accessor(instr.offset)
        get_value = self._accessor(instr.value)
        machine = self.machine
        on_store = self.hooks.on_store
        if on_store:

            def core(env):
                addr = int(get_base(env)) + int(get_off(env))
                value = get_value(env)
                old = machine.read_mem(addr)
                machine.write_mem(addr, value)
                for t in on_store:
                    t.on_store(instr, addr, value, old)
                return None

            return core

        def core(env):
            addr = int(get_base(env)) + int(get_off(env))
            value = get_value(env)
            mem = machine.memory
            if 0 <= addr < len(mem):
                mem[addr] = value
            else:
                raise InterpError(f"store to invalid address {addr}")
            return None

        return core

    def _call_core(self, instr: Call) -> Callable:
        machine = self.machine
        arg_accessors = tuple(self._accessor(a) for a in instr.args)
        on_call = self.hooks.on_call
        callee = instr.callee
        dest = instr.dest.name if instr.dest is not None else None

        # Resolve the callee at compile time (functions and intrinsics
        # are both registered before execution starts).
        if callee in machine.module.functions:
            target = machine.module.functions[callee]

            def invoke(args):
                return machine._call_function(target, args)

        elif callee in machine.intrinsics:
            intrinsic = machine.intrinsics[callee]

            def invoke(args):
                return intrinsic(machine, *args)

        else:

            def invoke(args):
                raise InterpError(f"call to unknown function {callee!r}")

        def core(env):
            args = [get(env) for get in arg_accessors]
            for t in on_call:
                t.on_call(instr, args)
            value = invoke(args)
            if dest is not None:
                env[dest] = value
            return value

        return core

    def _raise_core(self, instr: Instr) -> Callable:
        def core(env):
            raise InterpError(f"cannot execute {instr!r}")

        return core

    # -- terminators ---------------------------------------------------

    def _compile_term(self, block: Block, instr: Optional[Instr]) -> Callable:
        if instr is None:
            label = block.label

            def term(env):
                raise InterpError(f"block {label} fell off the end")

        elif isinstance(instr, Jump):
            target = instr.target

            def term(env):
                return target

        elif isinstance(instr, Branch):
            get_cond = self._accessor(instr.cond)
            iftrue, iffalse = instr.iftrue, instr.iffalse

            def term(env):
                return iftrue if get_cond(env) else iffalse

        elif isinstance(instr, Return):
            if instr.value is None:

                def term(env):
                    env["$ret"] = None
                    return _RETURN

            else:
                get_value = self._accessor(instr.value)

                def term(env):
                    env["$ret"] = get_value(env)
                    return _RETURN

        else:
            raise InterpError(f"cannot execute {instr!r}")

        on_instr = self.hooks.on_instr
        if on_instr and instr is not None:
            func = self.func
            inner = term

            def term(env):
                for t in on_instr:
                    t.on_instr(func, block, instr)
                return inner(env)

        return term

    # -- hook wrapping -------------------------------------------------

    def _wrap(self, core: Callable, block: Block, instr: Instr) -> Callable:
        """Apply the ``on_instr``/``on_def`` hooks around ``core``."""
        on_instr = self.hooks.on_instr
        on_def = self.hooks.on_def if instr.dest is not None else ()
        if not on_instr and not on_def:
            return core
        func = self.func
        if on_instr and on_def:

            def op(env):
                for t in on_instr:
                    t.on_instr(func, block, instr)
                value = core(env)
                for t in on_def:
                    t.on_def(instr, value)
                return value

        elif on_instr:

            def op(env):
                for t in on_instr:
                    t.on_instr(func, block, instr)
                return core(env)

        else:

            def op(env):
                value = core(env)
                for t in on_def:
                    t.on_def(instr, value)
                return value

        return op

    # -- block compilation ----------------------------------------------

    _CORES = {
        BinOp: "_binop_core",
        UnOp: "_unop_core",
        Copy: "_copy_core",
        LoadAddr: "_loadaddr_core",
        Load: "_load_core",
        Store: "_store_core",
        Call: "_call_core",
    }

    def compile_block(self, label: str) -> _CompiledBlock:
        block = self.block_map[label]
        cb = _CompiledBlock(block)

        # Split the phi prefix from the straight-line body; stop at the
        # first terminator (the reference interpreter never executes
        # past it, and neither does the fuel accounting).
        instrs = block.instrs
        index = 0
        phis: List[Phi] = []
        while index < len(instrs) and isinstance(instrs[index], Phi):
            phis.append(instrs[index])
            index += 1

        body: List[Instr] = []
        terminator: Optional[Instr] = None
        executed = len(phis)
        for instr in instrs[index:]:
            executed += 1
            if instr.is_terminator:
                terminator = instr
                break
            body.append(instr)
        cb.fuel = executed
        cb.phis = tuple(phis)

        if phis:
            cb.hooked_phis = self.hooks.per_instr
            batches: Dict[str, tuple] = {}
            labels = set()
            for phi in phis:
                labels.update(phi.incomings)
            for prev in labels:
                if not all(prev in phi.incomings for phi in phis):
                    continue  # executor raises the per-phi error lazily
                if cb.hooked_phis:
                    batches[prev] = tuple(
                        (phi, phi.dest.name, self._accessor(phi.incomings[prev]))
                        for phi in phis
                    )
                else:
                    batches[prev] = tuple(
                        (phi.dest.name, self._accessor(phi.incomings[prev]))
                        for phi in phis
                    )
            cb.phi_batches = batches

        ops: List[Callable] = []
        for instr in body:
            maker = self._CORES.get(type(instr))
            if maker is not None:
                core = getattr(self, maker)(instr)
            elif isinstance(instr, (SptFork, SptKill)):
                # Sequential no-ops: they only exist for on_instr hooks.
                if not self.hooks.on_instr:
                    continue
                core = None
            elif isinstance(instr, Phi):
                core = self._raise_core(instr)  # phi after the prefix
            else:
                core = self._raise_core(instr)
            if core is None:
                on_instr = self.hooks.on_instr
                func = self.func
                bound = instr

                def core(env, _f=func, _b=block, _i=bound, _h=on_instr):
                    for t in _h:
                        t.on_instr(_f, _b, _i)

                ops.append(core)
                continue
            ops.append(self._wrap(core, block, instr))
        cb.ops = tuple(ops)
        cb.term = self._compile_term(block, terminator)
        return cb

    # -- phi execution helpers ------------------------------------------

    def _phi_error(self, cb: _CompiledBlock, prev_label: str):
        for phi in cb.phis:
            if prev_label not in phi.incomings:
                raise InterpError(
                    f"phi {phi.dest} has no incoming for {prev_label}"
                )
        raise InterpError(
            f"no phi batch for predecessor {prev_label} in {cb.block.label}"
        )

    def _run_hooked_phis(self, batch, env, func, block) -> None:
        on_instr = self.hooks.on_instr
        on_def = self.hooks.on_def
        updates = []
        for phi, dest, get in batch:
            for t in on_instr:
                t.on_instr(func, block, phi)
            value = get(env)
            updates.append((dest, value))
            for t in on_def:
                t.on_def(phi, value)
        for dest, value in updates:
            env[dest] = value

    # -- the interpreter loop -------------------------------------------

    def call(self, args: List):
        func = self.func
        machine = self.machine
        hooks = self.hooks
        if len(args) != len(func.params):
            raise InterpError(
                f"{func.name} expects {len(func.params)} args, got {len(args)}"
            )
        env: Dict[str, object] = {}
        for param, arg in zip(func.params, args):
            env[param.name] = arg
        for t in hooks.on_enter_function:
            t.on_enter_function(func, args)

        blocks = self.blocks
        on_block = hooks.on_block
        on_edge = hooks.on_edge
        fuel = machine.fuel
        label = func.entry.label
        prev_label: Optional[str] = None

        while True:
            cb = blocks.get(label)
            if cb is None:
                cb = self.compile_block(label)
                blocks[label] = cb

            machine.executed += cb.fuel
            if machine.executed > fuel:
                raise FuelExhausted(f"exceeded {fuel} dynamic instructions")
            if machine.watchdog is not None:
                machine.watchdog.poll()

            if on_block:
                for t in on_block:
                    t.on_block(func, cb.block, prev_label)

            batches = cb.phi_batches
            if batches is not None:
                if prev_label is None:
                    raise InterpError(f"phi in entry block {label}")
                batch = batches.get(prev_label)
                if batch is None:
                    self._phi_error(cb, prev_label)
                if cb.hooked_phis:
                    self._run_hooked_phis(batch, env, func, cb.block)
                elif len(batch) == 1:
                    dest, get = batch[0]
                    env[dest] = get(env)
                else:
                    updates = [(dest, get(env)) for dest, get in batch]
                    for dest, value in updates:
                        env[dest] = value

            for op in cb.ops:
                op(env)
            nxt = cb.term(env)

            if nxt is _RETURN:
                result = env.get("$ret")
                break
            if nxt not in self.block_map:
                raise KeyError(f"no block {nxt!r} in function {func.name}")
            if on_edge:
                for t in on_edge:
                    t.on_edge(func, label, nxt)
            prev_label = label
            label = nxt

        for t in hooks.on_exit_function:
            t.on_exit_function(func, result)
        return result


class CompiledMachine(Machine):
    """A :class:`Machine` that executes through the compiled fast path.

    Drop-in compatible: same constructor, same ``run``/``add_tracer``/
    ``register_intrinsic`` API, same memory and symbol layout (both are
    inherited untouched).  Blocks are compiled lazily on first
    execution and the compiled code is discarded whenever ``run`` is
    invoked, so modules mutated between runs are always re-lowered.
    """

    def __init__(
        self, module: Module, fuel: int = 50_000_000, telemetry=None,
        watchdog=None,
    ):
        super().__init__(
            module, fuel=fuel, telemetry=telemetry, watchdog=watchdog
        )
        self._hooks: Optional[_Hooks] = None
        self._code: Dict[str, _CompiledFunction] = {}

    def _execute(self, func_name: str, args: List) -> object:
        # Specialize for the tracers attached *now* (including any
        # telemetry detail tracer Machine.run just added); invalidate
        # code compiled for a previous run (or a mutated module).
        self._hooks = _Hooks(self.tracers)
        self._code = {}
        return super()._execute(func_name, args)

    def _call_function(self, func: Function, args: List):
        if self._hooks is None:
            self._hooks = _Hooks(self.tracers)
        code = self._code.get(func.name)
        if code is None:
            code = _CompiledFunction(self, func, self._hooks)
            self._code[func.name] = code
        return code.call(args)


def make_machine(
    module: Module, fuel: int = 50_000_000, fast: bool = True, telemetry=None,
    watchdog=None,
) -> Machine:
    """Build the fast machine, or the reference one with ``fast=False``."""
    if fast:
        return CompiledMachine(
            module, fuel=fuel, telemetry=telemetry, watchdog=watchdog
        )
    return Machine(module, fuel=fuel, telemetry=telemetry, watchdog=watchdog)
