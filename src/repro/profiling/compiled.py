"""Block-compiled interpreter fast path.

:class:`~repro.profiling.interp.Machine` dispatches every dynamic
instruction through an ``isinstance`` chain and evaluates operands
through :meth:`Machine._eval`, paying the full interpretive overhead
50 million times per profiling run.  :class:`CompiledMachine` removes
that overhead by pre-compiling each basic block *once*, on first
execution, into a flat list of specialized closures:

* **operand accessors are resolved at compile time** -- constants are
  captured as Python values, variables become single dict lookups, and
  ``LoadAddr`` folds the symbol table lookup into a constant;
* **opcode dispatch is hoisted** -- the ``_BINOPS`` table lookup happens
  at block-compile time, so executing an ``add`` is one closure call;
* **phi batches are precomputed per predecessor label** -- entering a
  block through label ``L`` applies a prepared (dest, accessor) list
  with the parallel-assignment semantics of the reference interpreter;
* **tracer-aware specialization** -- at ``run()`` time the machine
  inspects which :class:`Tracer` hooks each attached tracer actually
  overrides and emits hook calls only for those, so the common
  zero-tracer (and edge-profile-only) case pays nothing for the
  observer interface;
* **batched fuel accounting** -- fuel is charged once per block with a
  single comparison instead of once per instruction.

Two further layers stack on top of the block-compiled path:

* **hot-trace splicing** (``trace=True``): block paths that stay hot
  are recorded and compiled into single superblock closures with
  guarded side exits (:mod:`repro.profiling.traces`);
* a **vectorized timing engine** (``timing_engine=...``): block-batched
  cycle accounting that replaces a per-op
  :class:`~repro.machine.timing.TimingTracer`
  (:mod:`repro.machine.vector_timing`), driven from the block driver
  and from inside compiled traces.

Semantics match the reference interpreter exactly on well-formed
programs: return values, memory state, ``Machine.executed`` counts and
tracer event streams are all identical (the differential tests in
``tests/profiling/test_compiled.py`` and
``tests/profiling/test_trace_interp.py`` assert this over the whole
benchmark suite).  The only tolerated divergence is *which* error
surfaces first on already-broken programs: batched fuel may exhaust at
block entry (or, under traces, at a pass boundary) where the reference
interpreter would first hit, say, a division by zero mid-block.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.block import Block
from repro.ir.function import Function, Module
from repro.ir.instr import (
    BinOp,
    Branch,
    Call,
    Copy,
    Instr,
    Jump,
    Load,
    LoadAddr,
    Phi,
    Return,
    SptFork,
    SptKill,
    Store,
    UnOp,
)
from repro.ir.values import Const, Value, Var
from repro.profiling.interp import (
    _BINOPS,
    _UNOPS,
    _div,
    _mod,
    FuelExhausted,
    InterpError,
    Machine,
    Tracer,
)

#: Sentinel returned by terminator closures on function return.
_RETURN = object()

#: Sentinel in ``_CompiledFunction.traces``: this entry label is known
#: not to yield a useful trace; never record it again this run.
_BLACKLISTED = object()

#: Tracer hook names that affect compiled code generation.
_HOOK_NAMES = (
    "on_enter_function",
    "on_exit_function",
    "on_block",
    "on_edge",
    "on_instr",
    "on_def",
    "on_load",
    "on_store",
    "on_call",
)


class _Hooks:
    """Tracers bucketed by the hooks they actually override.

    A tracer subscribes to a hook iff its class overrides the base
    :class:`Tracer` method; un-overridden no-op hooks are elided from
    the compiled code entirely.
    """

    __slots__ = _HOOK_NAMES + ("signature",)

    def __init__(self, tracers):
        signature = []
        for name in _HOOK_NAMES:
            base = getattr(Tracer, name)
            subscribed = tuple(
                t for t in tracers if getattr(type(t), name, base) is not base
            )
            setattr(self, name, subscribed)
            signature.append(tuple(id(t) for t in subscribed))
        self.signature = tuple(signature)

    @property
    def per_instr(self) -> bool:
        """Whether any per-instruction hook is live."""
        return bool(self.on_instr or self.on_def)


class _CompiledBlock:
    """One basic block lowered to closures."""

    __slots__ = ("block", "fuel", "ops", "term", "phis", "phi_batches", "hooked_phis")

    def __init__(self, block: Block):
        self.block = block
        #: Fuel charged on entry: the instructions the reference
        #: interpreter would execute in this block.
        self.fuel = 0
        #: Straight-line (non-phi, non-terminator) closures.
        self.ops: Tuple[Callable, ...] = ()
        #: Terminator closure: env -> next label | _RETURN (or raises).
        self.term: Callable = None
        #: The phi prefix (for diagnostics), or ().
        self.phis: Tuple[Phi, ...] = ()
        #: prev label -> precomputed batch, or None when the block has
        #: no phis.  Batch entries are (dest_name, accessor) pairs, or
        #: (phi, dest_name, accessor) triples when per-instruction
        #: hooks are live.
        self.phi_batches: Optional[Dict[str, tuple]] = None
        self.hooked_phis = False


class _CompiledFunction:
    """Lazily block-compiled code for one function on one machine."""

    def __init__(self, machine: "CompiledMachine", func: Function, hooks: _Hooks):
        self.machine = machine
        self.func = func
        self.hooks = hooks
        self.block_map = func.block_map()
        self.blocks: Dict[str, _CompiledBlock] = {}
        #: entry label -> CompiledTrace | _BLACKLISTED.
        self.traces: Dict[str, object] = {}
        #: entry label -> executions since the last (re)record.
        self.hot_counts: Dict[str, int] = {}
        #: entry label -> unusable-recording count (blacklist after 3).
        self.reject_counts: Dict[str, int] = {}
        #: Hot-trace splicing engages only when no per-op observer needs
        #: the individual instruction stream.
        self.tracing = (
            machine.trace_enabled
            and not hooks.per_instr
            and not hooks.on_load
            and not hooks.on_store
            and not hooks.on_call
        )

    # -- operand accessors -------------------------------------------

    def _accessor(self, value: Value) -> Callable:
        if isinstance(value, Const):
            const = value.value
            return lambda env: const
        if isinstance(value, Var):
            name = value.name
            func_name = self.func.name

            def get(env):
                try:
                    return env[name]
                except KeyError:
                    raise InterpError(
                        f"use of undefined variable {name} in {func_name}"
                    ) from None

            return get
        raise InterpError(f"cannot evaluate {value!r}")

    # -- per-instruction cores ---------------------------------------
    #
    # A core executes one instruction against an environment and
    # returns the defined value (or None for pure effects); hook
    # wrapping happens in :meth:`_wrap`.

    def _binop_core(self, instr: BinOp) -> Callable:
        dest = instr.dest.name
        if instr.op == "div":
            fn = _div
        elif instr.op == "mod":
            fn = _mod
        else:
            fn = _BINOPS[instr.op]
        lhs, rhs = instr.lhs, instr.rhs
        func_name = self.func.name
        # The Var/Var and Var/Const shapes dominate hot loops; inline
        # the environment lookups so one closure call executes the op.
        if isinstance(lhs, Var) and isinstance(rhs, Var):
            n1, n2 = lhs.name, rhs.name

            def core(env):
                try:
                    value = fn(env[n1], env[n2])
                except KeyError as exc:
                    raise InterpError(
                        f"use of undefined variable {exc.args[0]} in {func_name}"
                    ) from None
                env[dest] = value
                return value

            return core
        if isinstance(lhs, Var) and isinstance(rhs, Const):
            n1, c2 = lhs.name, rhs.value

            def core(env):
                try:
                    value = fn(env[n1], c2)
                except KeyError:
                    raise InterpError(
                        f"use of undefined variable {n1} in {func_name}"
                    ) from None
                env[dest] = value
                return value

            return core
        get_lhs = self._accessor(lhs)
        get_rhs = self._accessor(rhs)

        def core(env):
            value = fn(get_lhs(env), get_rhs(env))
            env[dest] = value
            return value

        return core

    def _unop_core(self, instr: UnOp) -> Callable:
        dest = instr.dest.name
        fn = _UNOPS[instr.op]
        get_src = self._accessor(instr.src)

        def core(env):
            value = fn(get_src(env))
            env[dest] = value
            return value

        return core

    def _copy_core(self, instr: Copy) -> Callable:
        dest = instr.dest.name
        get_src = self._accessor(instr.src)

        def core(env):
            value = get_src(env)
            env[dest] = value
            return value

        return core

    def _loadaddr_core(self, instr: LoadAddr) -> Callable:
        # The symbol table is fixed at machine construction; fold the
        # lookup into a constant.
        base = self.machine.symbol_base(self.func, instr.sym)
        dest = instr.dest.name

        def core(env):
            env[dest] = base
            return base

        return core

    def _load_core(self, instr: Load) -> Callable:
        dest = instr.dest.name
        get_base = self._accessor(instr.base)
        get_off = self._accessor(instr.offset)
        machine = self.machine
        on_load = self.hooks.on_load
        engine = machine.timing_engine
        if on_load:
            e_load = engine.load if engine is not None else None

            def core(env):
                addr = int(get_base(env)) + int(get_off(env))
                value = machine.read_mem(addr)
                if e_load is not None:
                    e_load(addr)
                for t in on_load:
                    t.on_load(instr, addr, value)
                env[dest] = value
                return value

            return core

        if engine is not None:
            e_load = engine.load

            def core(env):
                addr = int(get_base(env)) + int(get_off(env))
                mem = machine.memory
                if 0 <= addr < len(mem):
                    value = mem[addr]
                else:
                    raise InterpError(f"load from invalid address {addr}")
                e_load(addr)
                env[dest] = value
                return value

            return core

        def core(env):
            addr = int(get_base(env)) + int(get_off(env))
            mem = machine.memory
            if 0 <= addr < len(mem):
                value = mem[addr]
            else:
                raise InterpError(f"load from invalid address {addr}")
            env[dest] = value
            return value

        return core

    def _store_core(self, instr: Store) -> Callable:
        get_base = self._accessor(instr.base)
        get_off = self._accessor(instr.offset)
        get_value = self._accessor(instr.value)
        machine = self.machine
        on_store = self.hooks.on_store
        engine = machine.timing_engine
        if on_store:
            e_store = (
                engine.model.hierarchy.fill_for_write
                if engine is not None
                else None
            )

            def core(env):
                addr = int(get_base(env)) + int(get_off(env))
                value = get_value(env)
                old = machine.read_mem(addr)
                machine.write_mem(addr, value)
                if e_store is not None:
                    e_store(addr)
                for t in on_store:
                    t.on_store(instr, addr, value, old)
                return None

            return core

        if engine is not None:
            # store() only write-allocates; bind the hierarchy directly.
            e_store = engine.model.hierarchy.fill_for_write

            def core(env):
                addr = int(get_base(env)) + int(get_off(env))
                value = get_value(env)
                mem = machine.memory
                if 0 <= addr < len(mem):
                    mem[addr] = value
                else:
                    raise InterpError(f"store to invalid address {addr}")
                e_store(addr)
                return None

            return core

        def core(env):
            addr = int(get_base(env)) + int(get_off(env))
            value = get_value(env)
            mem = machine.memory
            if 0 <= addr < len(mem):
                mem[addr] = value
            else:
                raise InterpError(f"store to invalid address {addr}")
            return None

        return core

    def _call_core(self, instr: Call) -> Callable:
        machine = self.machine
        arg_accessors = tuple(self._accessor(a) for a in instr.args)
        on_call = self.hooks.on_call
        callee = instr.callee
        dest = instr.dest.name if instr.dest is not None else None

        # Resolve the callee at compile time (functions and intrinsics
        # are both registered before execution starts).
        if callee in machine.module.functions:
            target = machine.module.functions[callee]

            def invoke(args):
                return machine._call_function(target, args)

        elif callee in machine.intrinsics:
            intrinsic = machine.intrinsics[callee]

            def invoke(args):
                return intrinsic(machine, *args)

        else:

            def invoke(args):
                raise InterpError(f"call to unknown function {callee!r}")

        def core(env):
            args = [get(env) for get in arg_accessors]
            for t in on_call:
                t.on_call(instr, args)
            value = invoke(args)
            if dest is not None:
                env[dest] = value
            return value

        return core

    def _raise_core(self, instr: Instr) -> Callable:
        def core(env):
            raise InterpError(f"cannot execute {instr!r}")

        return core

    # -- terminators ---------------------------------------------------

    def _compile_term(self, block: Block, instr: Optional[Instr]) -> Callable:
        if instr is None:
            label = block.label

            def term(env):
                raise InterpError(f"block {label} fell off the end")

        elif isinstance(instr, Jump):
            target = instr.target

            def term(env):
                return target

        elif isinstance(instr, Branch):
            get_cond = self._accessor(instr.cond)
            iftrue, iffalse = instr.iftrue, instr.iffalse
            engine = self.machine.timing_engine
            if engine is not None:
                e_branch = engine.branch
                key = id(instr)
                # taken == (destination is iftrue), degenerate
                # same-target branches included (mirrors TimingTracer).
                same = iftrue == iffalse

                def term(env, _pin=instr):
                    if get_cond(env):
                        e_branch(key, True)
                        return iftrue
                    e_branch(key, same)
                    return iffalse

            else:

                def term(env):
                    return iftrue if get_cond(env) else iffalse

        elif isinstance(instr, Return):
            if instr.value is None:

                def term(env):
                    env["$ret"] = None
                    return _RETURN

            else:
                get_value = self._accessor(instr.value)

                def term(env):
                    env["$ret"] = get_value(env)
                    return _RETURN

        else:
            raise InterpError(f"cannot execute {instr!r}")

        on_instr = self.hooks.on_instr
        if on_instr and instr is not None:
            func = self.func
            inner = term

            def term(env):
                for t in on_instr:
                    t.on_instr(func, block, instr)
                return inner(env)

        return term

    # -- hook wrapping -------------------------------------------------

    def _wrap(self, core: Callable, block: Block, instr: Instr) -> Callable:
        """Apply the ``on_instr``/``on_def`` hooks around ``core``."""
        on_instr = self.hooks.on_instr
        on_def = self.hooks.on_def if instr.dest is not None else ()
        if not on_instr and not on_def:
            return core
        func = self.func
        if on_instr and on_def:

            def op(env):
                for t in on_instr:
                    t.on_instr(func, block, instr)
                value = core(env)
                for t in on_def:
                    t.on_def(instr, value)
                return value

        elif on_instr:

            def op(env):
                for t in on_instr:
                    t.on_instr(func, block, instr)
                return core(env)

        else:

            def op(env):
                value = core(env)
                for t in on_def:
                    t.on_def(instr, value)
                return value

        return op

    # -- block compilation ----------------------------------------------

    _CORES = {
        BinOp: "_binop_core",
        UnOp: "_unop_core",
        Copy: "_copy_core",
        LoadAddr: "_loadaddr_core",
        Load: "_load_core",
        Store: "_store_core",
        Call: "_call_core",
    }

    def compile_block(self, label: str) -> _CompiledBlock:
        block = self.block_map[label]
        cb = _CompiledBlock(block)

        # Split the phi prefix from the straight-line body; stop at the
        # first terminator (the reference interpreter never executes
        # past it, and neither does the fuel accounting).
        instrs = block.instrs
        index = 0
        phis: List[Phi] = []
        while index < len(instrs) and isinstance(instrs[index], Phi):
            phis.append(instrs[index])
            index += 1

        body: List[Instr] = []
        terminator: Optional[Instr] = None
        executed = len(phis)
        for instr in instrs[index:]:
            executed += 1
            if instr.is_terminator:
                terminator = instr
                break
            body.append(instr)
        cb.fuel = executed
        cb.phis = tuple(phis)

        if phis:
            cb.hooked_phis = self.hooks.per_instr
            batches: Dict[str, tuple] = {}
            labels = set()
            for phi in phis:
                labels.update(phi.incomings)
            for prev in labels:
                if not all(prev in phi.incomings for phi in phis):
                    continue  # executor raises the per-phi error lazily
                if cb.hooked_phis:
                    batches[prev] = tuple(
                        (phi, phi.dest.name, self._accessor(phi.incomings[prev]))
                        for phi in phis
                    )
                else:
                    batches[prev] = tuple(
                        (phi.dest.name, self._accessor(phi.incomings[prev]))
                        for phi in phis
                    )
            cb.phi_batches = batches

        ops: List[Callable] = []
        for instr in body:
            maker = self._CORES.get(type(instr))
            if maker is not None:
                core = getattr(self, maker)(instr)
            elif isinstance(instr, (SptFork, SptKill)):
                # Sequential no-ops: they only exist for on_instr hooks.
                if not self.hooks.on_instr:
                    continue
                core = None
            elif isinstance(instr, Phi):
                core = self._raise_core(instr)  # phi after the prefix
            else:
                core = self._raise_core(instr)
            if core is None:
                on_instr = self.hooks.on_instr
                func = self.func
                bound = instr

                def core(env, _f=func, _b=block, _i=bound, _h=on_instr):
                    for t in _h:
                        t.on_instr(_f, _b, _i)

                ops.append(core)
                continue
            ops.append(self._wrap(core, block, instr))
        cb.ops = tuple(ops)
        cb.term = self._compile_term(block, terminator)
        return cb

    # -- phi execution helpers ------------------------------------------

    def _phi_error(self, cb: _CompiledBlock, prev_label: str):
        for phi in cb.phis:
            if prev_label not in phi.incomings:
                raise InterpError(
                    f"phi {phi.dest} has no incoming for {prev_label}"
                )
        raise InterpError(
            f"no phi batch for predecessor {prev_label} in {cb.block.label}"
        )

    def _run_hooked_phis(self, batch, env, func, block) -> None:
        on_instr = self.hooks.on_instr
        on_def = self.hooks.on_def
        updates = []
        for phi, dest, get in batch:
            for t in on_instr:
                t.on_instr(func, block, phi)
            value = get(env)
            updates.append((dest, value))
            for t in on_def:
                t.on_def(phi, value)
        for dest, value in updates:
            env[dest] = value

    # -- the interpreter loop -------------------------------------------

    def call(self, args: List):
        func = self.func
        machine = self.machine
        hooks = self.hooks
        if len(args) != len(func.params):
            raise InterpError(
                f"{func.name} expects {len(func.params)} args, got {len(args)}"
            )
        env: Dict[str, object] = {}
        for param, arg in zip(func.params, args):
            env[param.name] = arg
        for t in hooks.on_enter_function:
            t.on_enter_function(func, args)
        engine = machine.timing_engine
        if engine is not None:
            engine.enter(func, args)

        blocks = self.blocks
        on_block = hooks.on_block
        on_edge = hooks.on_edge
        fuel = machine.fuel
        label = func.entry.label
        prev_label: Optional[str] = None
        traces = self.traces if self.tracing else None
        hot_threshold = machine.trace_hot_threshold
        recording: Optional[List[str]] = None
        rec_seen = None

        while True:
            if traces is not None:
                tr = traces.get(label)
                if tr is None:
                    count = self.hot_counts.get(label, 0) + 1
                    self.hot_counts[label] = count
                    # ``>=`` not ``==``: a block can cross the threshold
                    # while another recording is active (or while the
                    # per-function trace budget is full) and must still
                    # get its recording at the next opportunity --
                    # unrolled steady-state loop bodies reach their
                    # threshold inside the guard copy's recording.
                    if (
                        count >= hot_threshold
                        and recording is None
                        and len(traces) < machine.trace_max_per_func
                    ):
                        self.hot_counts[label] = 0
                        recording = [label]
                        rec_seen = {label}
                elif tr is not _BLACKLISTED and recording is None:
                    # (An active recording bypasses installed traces:
                    # letting one run would leave a multi-block hole
                    # in the recorded path.)
                    nxt, last = tr.fn(env, prev_label)
                    stats = tr.stats
                    passes = stats.passes - tr.pass0
                    if (
                        passes >= 64
                        and not passes & 63
                        and (stats.side_exits - tr.exit0) * 2 > passes
                    ):
                        # The recorded direction stopped matching the
                        # branch profile: drop and re-record.  (The
                        # check runs every 64th pass: one failed check
                        # means the next 63 can't flip the verdict to
                        # a *worse* trace than re-recording costs.)
                        self._drop_trace(label, tr)
                    if nxt is _RETURN:
                        result = env.get("$ret")
                        break
                    # The trace already emitted the edge into ``nxt``.
                    prev_label = last
                    label = nxt
                    continue

            cb = blocks.get(label)
            if cb is None:
                cb = self.compile_block(label)
                blocks[label] = cb

            machine.executed += cb.fuel
            if machine.executed > fuel:
                raise FuelExhausted(f"exceeded {fuel} dynamic instructions")
            if machine.watchdog is not None:
                machine.watchdog.poll()

            if engine is not None:
                engine.block(func, cb.block, prev_label)
            if on_block:
                for t in on_block:
                    t.on_block(func, cb.block, prev_label)

            batches = cb.phi_batches
            if batches is not None:
                if prev_label is None:
                    raise InterpError(f"phi in entry block {label}")
                batch = batches.get(prev_label)
                if batch is None:
                    self._phi_error(cb, prev_label)
                if cb.hooked_phis:
                    self._run_hooked_phis(batch, env, func, cb.block)
                elif len(batch) == 1:
                    dest, get = batch[0]
                    env[dest] = get(env)
                else:
                    updates = [(dest, get(env)) for dest, get in batch]
                    for dest, value in updates:
                        env[dest] = value

            for op in cb.ops:
                op(env)
            nxt = cb.term(env)

            if recording is not None:
                cyclic = None
                if nxt is _RETURN:
                    cyclic = False
                elif nxt == recording[0]:
                    cyclic = True
                elif (
                    len(recording) >= machine.trace_max_blocks
                    or nxt in rec_seen
                ):
                    # Recording runs *through* blocks that already
                    # anchor other traces: aborting there would chop
                    # loop bodies with branch diamonds into chains of
                    # short linear traces that bounce off the
                    # dispatcher once per link, instead of one cyclic
                    # trace per iteration.
                    cyclic = False
                else:
                    recording.append(nxt)
                    rec_seen.add(nxt)
                if cyclic is not None:
                    self._finish_recording(recording, cyclic)
                    recording = None
                    rec_seen = None

            if nxt is _RETURN:
                result = env.get("$ret")
                break
            if nxt not in self.block_map:
                raise KeyError(f"no block {nxt!r} in function {func.name}")
            if on_edge:
                for t in on_edge:
                    t.on_edge(func, label, nxt)
            prev_label = label
            label = nxt

        if engine is not None:
            engine.exit(func, result)
        for t in hooks.on_exit_function:
            t.on_exit_function(func, result)
        return result

    # -- trace lifecycle -------------------------------------------------

    def _finish_recording(self, path: List[str], cyclic: bool) -> None:
        """Compile a completed recording and install (or veto) it."""
        from repro.profiling.traces import compile_trace

        machine = self.machine
        entry = path[0]
        stats = machine._trace_stats_for(self.func.name, entry)
        if stats.exit_counts:
            # Guard-failure feedback from the invalidated previous
            # generation: cut the new path where the *cumulative*
            # failure rate of the guards kept so far crosses a third
            # of the passes (the block at the cut stays; its failing
            # guard becomes an unguarded computed exit).  Without
            # this, re-records of paths crossing data-dependent
            # diamonds churn through identical high-failure traces
            # into the blacklist -- and a per-guard threshold alone
            # misses paths whose failures are spread across many
            # mildly unstable branches.
            gen_passes = stats.passes - stats.gen_pass0
            cum = 0
            for index, lbl in enumerate(path):
                cum += stats.exit_counts.get(lbl, 0)
                if cum * 3 > gen_passes:
                    del path[index + 1:]
                    cyclic = False
                    break
        if (
            not cyclic
            and len(path) < 2
            and len(self.block_map[entry].instrs) < 5
        ):
            # A single-block linear trace over a tiny block cannot
            # beat the block path; re-record later (the same entry may
            # loop next time), but give up after a few useless
            # recordings.  A *meaty* single block is still worth
            # installing: its ops run natively and the data-dependent
            # branch that truncated the path here becomes an unguarded
            # computed exit.
            rejects = self.reject_counts.get(entry, 0) + 1
            self.reject_counts[entry] = rejects
            if rejects >= 3:
                self.traces[entry] = _BLACKLISTED
                machine.trace_rejects += 1
            else:
                self.hot_counts[entry] = 0
            return
        trace = compile_trace(self, path, cyclic, stats)
        if trace is None:
            # Structurally untraceable (unsupported op, malformed phi,
            # path/CFG mismatch): never try this entry again.
            self.traces[entry] = _BLACKLISTED
            machine.trace_rejects += 1
            return
        stats.compiles += 1
        stats.exit_counts = {}
        stats.gen_pass0 = stats.passes
        trace.pass0 = stats.passes
        trace.exit0 = stats.side_exits
        self.traces[entry] = trace

    def _drop_trace(self, entry: str, trace) -> None:
        trace.stats.invalidations += 1
        self.machine.trace_invalidations += 1
        if trace.stats.compiles >= 3:
            self.traces[entry] = _BLACKLISTED
        else:
            del self.traces[entry]
            self.hot_counts[entry] = 0


class CompiledMachine(Machine):
    """A :class:`Machine` that executes through the compiled fast path.

    Drop-in compatible: same constructor, same ``run``/``add_tracer``/
    ``register_intrinsic`` API, same memory and symbol layout (both are
    inherited untouched).  Blocks are compiled lazily on first
    execution and the compiled code is discarded whenever ``run`` is
    invoked, so modules mutated between runs are always re-lowered.

    With ``trace=True``, hot block paths are additionally spliced into
    superblock traces (:mod:`repro.profiling.traces`); a
    :class:`~repro.machine.vector_timing.VectorTimingEngine` passed as
    ``timing_engine`` receives block-batched timing events from both
    the block driver and compiled traces.
    """

    def __init__(
        self, module: Module, fuel: int = 50_000_000, telemetry=None,
        watchdog=None, trace: bool = False, timing_engine=None,
        trace_hot_threshold: int = 16, trace_max_blocks: int = 32,
        trace_max_per_func: int = 64,
    ):
        super().__init__(
            module, fuel=fuel, telemetry=telemetry, watchdog=watchdog
        )
        self._hooks: Optional[_Hooks] = None
        self._code: Dict[str, _CompiledFunction] = {}
        self.trace_enabled = trace
        self.timing_engine = timing_engine
        #: Block executions before an entry label starts recording.
        self.trace_hot_threshold = trace_hot_threshold
        #: Longest recordable path (superblock size cap).
        self.trace_max_blocks = trace_max_blocks
        #: Trace-count cap per function (memory bound).
        self.trace_max_per_func = trace_max_per_func
        #: (func_name, entry_label) -> TraceStats, accumulated across
        #: runs and recompilations (telemetry / ``repro explain``).
        self._trace_stats: Dict[Tuple[str, str], object] = {}
        self.trace_rejects = 0
        self.trace_invalidations = 0
        #: REPRO_TRACE_BAILOUT=<k>: force every k-th guard evaluation
        #: to side-exit at its on-trace label (differential testing).
        try:
            self._trace_bailout = int(
                os.environ.get("REPRO_TRACE_BAILOUT", "0") or 0
            )
        except ValueError:
            self._trace_bailout = 0
        self._bail_counter = 0

    # -- trace bookkeeping --------------------------------------------

    def _trace_stats_for(self, func_name: str, entry: str):
        from repro.profiling.traces import TraceStats

        key = (func_name, entry)
        stats = self._trace_stats.get(key)
        if stats is None:
            stats = TraceStats(func_name, entry)
            self._trace_stats[key] = stats
        return stats

    def _trace_bail(self) -> bool:
        self._bail_counter += 1
        return self._bail_counter % self._trace_bailout == 0

    def invalidate_traces(self) -> None:
        """Drop every installed trace and hot counter (the block-level
        code and its semantics are untouched)."""
        for code in self._code.values():
            if code.traces:
                self.trace_invalidations += len(code.traces)
            code.traces.clear()
            code.hot_counts.clear()
            code.reject_counts.clear()

    def trace_report(self) -> Dict[str, Dict[str, object]]:
        """Per-entry trace statistics: ``{"func:entry": {...}}``."""
        return {
            f"{fn}:{entry}": stats.as_dict()
            for (fn, entry), stats in sorted(self._trace_stats.items())
        }

    def _execute(self, func_name: str, args: List) -> object:
        # Specialize for the tracers attached *now* (including any
        # telemetry detail tracer Machine.run just added); invalidate
        # code compiled for a previous run (or a mutated module).
        # Traces live on the per-run code objects, so they are
        # invalidated here too.
        self._hooks = _Hooks(self.tracers)
        self._code = {}
        if not (self.trace_enabled and self.telemetry.enabled):
            return super()._execute(func_name, args)
        before = self._trace_counters()
        try:
            return super()._execute(func_name, args)
        finally:
            after = self._trace_counters()
            for name, value in after.items():
                delta = value - before.get(name, 0)
                if delta:
                    self.telemetry.count(f"trace.{name}", delta)

    def _trace_counters(self) -> Dict[str, int]:
        totals = {
            "compiles": 0,
            "entries": 0,
            "passes": 0,
            "side_exits": 0,
            "ops_on_trace": 0,
        }
        for stats in self._trace_stats.values():
            totals["compiles"] += stats.compiles
            totals["entries"] += stats.entries
            totals["passes"] += stats.passes
            totals["side_exits"] += stats.side_exits
            totals["ops_on_trace"] += stats.ops_on_trace
        totals["rejects"] = self.trace_rejects
        totals["invalidations"] = self.trace_invalidations
        return totals

    def _call_function(self, func: Function, args: List):
        if self._hooks is None:
            self._hooks = _Hooks(self.tracers)
        code = self._code.get(func.name)
        if code is None:
            code = _CompiledFunction(self, func, self._hooks)
            self._code[func.name] = code
        return code.call(args)


def make_machine(
    module: Module, fuel: int = 50_000_000, fast: bool = True, telemetry=None,
    watchdog=None, trace: bool = False, timing_engine=None,
) -> Machine:
    """Build the fast machine, or the reference one with ``fast=False``.

    ``trace`` enables hot-trace splicing and ``timing_engine`` attaches
    a vectorized timing engine; both require ``fast=True``.
    """
    if fast:
        return CompiledMachine(
            module, fuel=fuel, telemetry=telemetry, watchdog=watchdog,
            trace=trace, timing_engine=timing_engine,
        )
    if trace or timing_engine is not None:
        raise ValueError(
            "trace compilation and the vectorized timing engine require "
            "the compiled fast path (fast=True)"
        )
    return Machine(module, fuel=fuel, telemetry=telemetry, watchdog=watchdog)
