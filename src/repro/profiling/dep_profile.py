"""Data-dependence profiling (paper §7.3).

The profiler observes every load/store the interpreter executes and
reconstructs, per loop, the realized memory dependences and their
frequencies:

* a write at W followed by a read at R of the same address in the same
  iteration is an *intra-iteration* realization of edge ``W -> R``;
* the same with the read exactly one iteration later is a
  *cross-iteration* (distance-1) realization -- the only distance that
  can violate SPT speculation, since the speculative thread runs the
  *next* iteration;
* accesses performed inside callees are attributed to the call
  instruction at each enclosing frame level, so an impure call inside a
  loop shows up as that call's dependence edges (this is what lets the
  "best" compilation discharge conservative call aliasing).

Probabilities follow the paper's definition (§4.1): for N executions of
the writer, ``p*N`` reads access the location it wrote.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.loops import LoopNest
from repro.ir.block import Block
from repro.ir.function import Function, Module
from repro.ir.instr import Call, Instr
from repro.profiling.interp import Tracer

#: Minimum writer executions before a zero pair count is trusted to mean
#: "no dependence" rather than "not enough data".
MIN_COVERAGE = 4


class _FrameCtx:
    """Per-activation loop-iteration counters and call-site attribution."""

    __slots__ = ("func_name", "iters", "call_site")

    def __init__(self, func_name: str, call_site: Optional[Instr]):
        self.func_name = func_name
        #: loop_id -> current iteration index (since loop entry).
        self.iters: Dict[int, int] = {}
        #: The call instruction in the *parent* frame that created us.
        self.call_site = call_site


class DependenceProfile(Tracer):
    """Collects per-loop memory dependence frequencies."""

    def __init__(self, module: Module):
        self.module = module
        #: func name -> LoopNest (built lazily on first entry).
        self.nests: Dict[str, LoopNest] = {}
        #: func name -> {block label -> [loops containing it]}
        self._block_loops: Dict[str, Dict[str, list]] = {}
        #: func name -> {header label -> loop}
        self._headers: Dict[str, Dict[str, object]] = {}
        self._frames: List[_FrameCtx] = []
        self._pending_call: Optional[Instr] = None

        #: addr -> attribution chain of the last write:
        #: list of (func_name, instr, {loop_id: iter_at_write})
        self._last_write: Dict[int, List[Tuple[str, Instr, Dict[int, int]]]] = {}
        #: (writer instr id) -> execution count (memory ops and calls)
        self.execs: Dict[int, int] = {}
        #: (writer id, reader id, loop_id, cross) -> realization count
        self.pairs: Dict[Tuple[int, int, int, bool], int] = {}
        #: instr id -> instr (for diagnostics)
        self._by_id: Dict[int, Instr] = {}

    # -- structure helpers -------------------------------------------------

    def _nest_for(self, func: Function) -> LoopNest:
        nest = self.nests.get(func.name)
        if nest is None:
            nest = LoopNest.build(func)
            self.nests[func.name] = nest
            self._headers[func.name] = {loop.header: loop for loop in nest.loops}
            block_loops: Dict[str, list] = {}
            for loop in nest.loops:
                for label in loop.body:
                    block_loops.setdefault(label, []).append(loop)
            self._block_loops[func.name] = block_loops
        return nest

    # -- tracer hooks ---------------------------------------------------------

    def on_enter_function(self, func: Function, args) -> None:
        self._nest_for(func)
        self._frames.append(_FrameCtx(func.name, self._pending_call))
        self._pending_call = None

    def on_exit_function(self, func: Function, result) -> None:
        self._frames.pop()

    def on_call(self, instr: Call, args) -> None:
        self._pending_call = instr
        self.execs[id(instr)] = self.execs.get(id(instr), 0) + 1
        self._by_id[id(instr)] = instr

    def on_block(self, func: Function, block: Block, prev_label) -> None:
        loop = self._headers.get(func.name, {}).get(block.label)
        if loop is None or not self._frames:
            return
        frame = self._frames[-1]
        if prev_label is not None and prev_label in loop.body:
            frame.iters[loop.loop_id] = frame.iters.get(loop.loop_id, 0) + 1
        else:
            frame.iters[loop.loop_id] = 0

    def _attribution(self, instr: Instr) -> List[Tuple[str, Instr, Dict[int, int]]]:
        """(func, attributed instr, loop-iter snapshot) per frame level,
        outermost first."""
        chain: List[Tuple[str, Instr, Dict[int, int]]] = []
        for level, frame in enumerate(self._frames):
            if level + 1 < len(self._frames):
                attributed = self._frames[level + 1].call_site
            else:
                attributed = instr
            if attributed is None:
                continue
            chain.append((frame.func_name, attributed, dict(frame.iters)))
        return chain

    def on_load(self, instr: Instr, addr: int, value) -> None:
        self.execs[id(instr)] = self.execs.get(id(instr), 0) + 1
        self._by_id[id(instr)] = instr
        write_chain = self._last_write.get(addr)
        if write_chain is None:
            return
        read_chain = self._attribution(instr)
        for (w_func, w_instr, w_iters), (r_func, r_instr, r_iters) in zip(
            write_chain, read_chain
        ):
            if w_func != r_func:
                break
            block_loops = self._block_loops.get(r_func, {})
            for loop in self._loops_of_instr(r_func, r_instr):
                loop_id = loop.loop_id
                if loop_id not in w_iters or loop_id not in r_iters:
                    continue
                distance = r_iters[loop_id] - w_iters[loop_id]
                if distance == 0:
                    key = (id(w_instr), id(r_instr), loop_id, False)
                elif distance == 1:
                    key = (id(w_instr), id(r_instr), loop_id, True)
                else:
                    continue
                self.pairs[key] = self.pairs.get(key, 0) + 1

    def on_store(self, instr: Instr, addr: int, value, old_value) -> None:
        self.execs[id(instr)] = self.execs.get(id(instr), 0) + 1
        self._by_id[id(instr)] = instr
        self._last_write[addr] = self._attribution(instr)

    # -- helpers ----------------------------------------------------------

    def _loops_of_instr(self, func_name: str, instr: Instr) -> list:
        """Loops (in func_name) containing the block holding ``instr``.

        Blocks are searched lazily and memoized on the instr id.
        """
        cache = getattr(self, "_instr_loops", None)
        if cache is None:
            cache = {}
            self._instr_loops = cache
        key = (func_name, id(instr))
        if key in cache:
            return cache[key]
        func = self.module.functions.get(func_name)
        result = []
        if func is not None:
            for blk in func.blocks:
                if instr in blk.instrs:
                    result = self._block_loops.get(func_name, {}).get(blk.label, [])
                    break
        cache[key] = result
        return result

    # -- query API (consumed by depgraph) ------------------------------------

    def view(self, func_name: str, loop) -> "LoopDepView":
        return LoopDepView(self, func_name, loop.loop_id)


class LoopDepView:
    """Dependence probabilities for one loop, as consumed by
    :func:`repro.analysis.depgraph.build_dep_graph`."""

    def __init__(self, profile: DependenceProfile, func_name: str, loop_id: int):
        self.profile = profile
        self.func_name = func_name
        self.loop_id = loop_id

    def mem_prob(self, writer: Instr, reader: Instr, cross: bool) -> Optional[float]:
        """Measured probability, or None when the writer was not observed."""
        execs = self.profile.execs.get(id(writer), 0)
        if execs < MIN_COVERAGE:
            return None
        count = self.profile.pairs.get(
            (id(writer), id(reader), self.loop_id, cross), 0
        )
        return min(1.0, count / execs)

    def mem_prob_agg(
        self, writers: List[Instr], readers: List[Instr], cross: bool
    ) -> Optional[float]:
        """Aggregate probability over groups of writers/readers.

        Used when either side is an inner-loop summary node: pair counts
        are summed over all contained combinations and normalized by the
        writers' total execution count.
        """
        total_execs = sum(self.profile.execs.get(id(w), 0) for w in writers)
        if total_execs < MIN_COVERAGE:
            return None
        total_pairs = 0
        for writer in writers:
            for reader in readers:
                total_pairs += self.profile.pairs.get(
                    (id(writer), id(reader), self.loop_id, cross), 0
                )
        return min(1.0, total_pairs / total_execs)

    def covers(self, writer: Instr) -> bool:
        return self.profile.execs.get(id(writer), 0) >= MIN_COVERAGE
