"""Control-flow edge profiling.

The paper's *basic compilation* "used only control flow edge profiling";
the reaching probabilities it produces annotate the dependence graph and
the cost graph (§4).  This tracer counts CFG edge traversals and block
executions, and derives branch probabilities and average loop trip
counts from them.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.loops import Loop
from repro.ir.block import Block
from repro.ir.function import Function
from repro.profiling.interp import Tracer


class EdgeProfile(Tracer):
    """Edge and block execution counts, per function."""

    def __init__(self):
        #: (func_name, src_label, dst_label) -> traversal count
        self.edge_counts: Dict[Tuple[str, str, str], int] = {}
        #: (func_name, label) -> execution count
        self.block_counts: Dict[Tuple[str, str], int] = {}
        #: func_name -> invocation count
        self.call_counts: Dict[str, int] = {}

    # -- tracer hooks ----------------------------------------------------

    def on_enter_function(self, func: Function, args) -> None:
        self.call_counts[func.name] = self.call_counts.get(func.name, 0) + 1

    def on_block(self, func: Function, block: Block, prev_label: Optional[str]) -> None:
        key = (func.name, block.label)
        self.block_counts[key] = self.block_counts.get(key, 0) + 1

    def on_edge(self, func: Function, src_label: str, dst_label: str) -> None:
        key = (func.name, src_label, dst_label)
        self.edge_counts[key] = self.edge_counts.get(key, 0) + 1

    # -- derived quantities -------------------------------------------------

    def edge_count(self, func_name: str, src: str, dst: str) -> int:
        return self.edge_counts.get((func_name, src, dst), 0)

    def block_count(self, func_name: str, label: str) -> int:
        return self.block_counts.get((func_name, label), 0)

    def branch_prob(self, func_name: str, src: str, dst: str) -> float:
        """P(control flows src->dst | control reached src).

        Falls back to an even split when the source was never executed.
        """
        taken = self.edge_count(func_name, src, dst)
        total = sum(
            count
            for (fn, s, _), count in self.edge_counts.items()
            if fn == func_name and s == src
        )
        if total == 0:
            return 0.5
        return taken / total

    def trip_count(self, func: Function, loop: Loop, cfg: CFG = None) -> float:
        """Average iterations per loop entry (0 if never entered)."""
        cfg = cfg or CFG.build(func)
        entries = sum(
            self.edge_count(func.name, src, loop.header)
            for src, _ in loop.entry_edges(cfg)
        )
        back = sum(
            self.edge_count(func.name, latch, loop.header)
            for latch in loop.latches(cfg)
        )
        if entries == 0:
            return 0.0
        return (entries + back) / entries

    def loop_iterations(self, func: Function, loop: Loop, cfg: CFG = None) -> int:
        """Total header executions (= total iterations started)."""
        return self.block_count(func.name, loop.header)
