"""Hot-trace (superblock) compilation for the block-compiled interpreter.

:class:`~repro.profiling.compiled.CompiledMachine` executes one closure
per instruction plus a driver-loop iteration per basic block.  For hot
paths -- loop bodies above all -- even that is mostly dispatch overhead.
This module splices a *recorded* sequence of consecutive blocks into one
specialized Python function compiled with :func:`compile`/``exec``:

* IR virtual registers become Python **locals** -- no environment-dict
  traffic inside the trace;
* opcodes are inlined as native expressions (``add`` becomes ``+``,
  with exactly the reference interpreter's coercions);
* at every conditional branch whose recorded direction stays on the
  trace, a **guard** keeps execution on the fast path; the off-trace arm
  spills the locals back to the environment and returns control to the
  block-level driver (guard failure is a fall-back, never an error);
* a trace whose recorded path loops back to its entry block compiles to
  a native ``while`` loop, so a whole hot-loop iteration executes
  without touching the driver;
* the vectorized timing engine
  (:class:`repro.machine.vector_timing.VectorTimingEngine`) and the
  edge-profile counters are invoked inline with statically-known
  blocks/labels, preserving the exact event order of block execution.

Correctness contract: a trace is only installed when it is bitwise
equivalent to block-by-block execution -- same results, same memory,
same ``Machine.executed``, same tracer event streams, same timing-model
interaction order.  Undefined-variable uses are preserved through a
``_MISS`` sentinel: locals not provably assigned before use are
materialized as ``env.get(name, _MISS)`` and checked at each use, so
the reference error surfaces at the same instruction.  The only
tolerated divergence is *where* ``FuelExhausted`` lands on runaway
programs: traces settle fuel once per pass (at side exits and at the
back edge) instead of once per block.

Caching and invalidation: traces are keyed by entry label and hold
their full path signature; they live on the per-run
:class:`_CompiledFunction` code object, so any ``run()`` (and hence any
module mutation between runs) discards them.  Within a run, a trace
whose guards fail too often relative to completed passes is dropped and
re-recorded (a changed branch profile re-specializes the path), and
entry labels that repeatedly fail to produce a useful trace are
blacklisted.  ``CompiledMachine.invalidate_traces()`` drops everything
explicitly.

Set ``REPRO_TRACE_BAILOUT=<k>`` (see ``repro.resilience.faults`` for
the convention) to force every *k*-th guard evaluation to exit the
trace at its on-trace label -- a semantic no-op that drives the guard
fall-back and write-back machinery for differential testing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.block import Block
from repro.ir.instr import (
    BinOp,
    Branch,
    Call,
    Copy,
    Instr,
    Jump,
    Load,
    LoadAddr,
    Phi,
    Return,
    SptFork,
    SptKill,
    Store,
    UnOp,
)
from repro.ir.values import Const, Value, Var
from repro.profiling.compiled import _RETURN
from repro.profiling.edge_profile import EdgeProfile
from repro.profiling.interp import FuelExhausted, InterpError, _div, _mod

#: Sentinel for "this local has no binding in the environment".
_MISS = object()

#: (source, filename) -> code object.  Generated trace source is a pure
#: function of the module IR and the machine configuration (everything
#: machine-specific is bound through the exec namespace, never inlined
#: into the text), so re-recording the same hot path -- across runs,
#: machines, or benchmark rounds -- can skip ``builtins.compile``, by
#: far the most expensive step of trace installation.
_CODE_CACHE: Dict[Tuple[str, str], object] = {}
_CODE_CACHE_LIMIT = 512


def _compile_cached(source: str, filename: str):
    key = (source, filename)
    code = _CODE_CACHE.get(key)
    if code is None:
        if len(_CODE_CACHE) >= _CODE_CACHE_LIMIT:
            _CODE_CACHE.clear()
        code = compile(source, filename, "exec")
        _CODE_CACHE[key] = code
    return code

#: Binary ops inlined as native expressions.  Each template must be
#: semantically identical to the matching ``interp._BINOPS`` lambda,
#: including evaluation order (left operand first) and coercions.
_BINOP_TEMPLATES = {
    "add": "({} + {})",
    "sub": "({} - {})",
    "mul": "({} * {})",
    "and": "(int({}) & int({}))",
    "or": "(int({}) | int({}))",
    "xor": "(int({}) ^ int({}))",
    "shl": "(int({}) << int({}))",
    "shr": "(int({}) >> int({}))",
    "min": "min({}, {})",
    "max": "max({}, {})",
    "lt": "({} < {})",
    "le": "({} <= {})",
    "gt": "({} > {})",
    "ge": "({} >= {})",
    "eq": "({} == {})",
    "ne": "({} != {})",
}

_UNOP_TEMPLATES = {
    "neg": "(- {})",
    "not": "(not {})",
    "abs": "abs({})",
    "i2f": "float({})",
    "f2i": "int({})",
}


class TraceStats:
    """Lifetime counters of one trace entry point (accumulated across
    recompilations; surfaced via telemetry and ``repro explain``)."""

    __slots__ = (
        "func",
        "entry",
        "path",
        "cyclic",
        "compiles",
        "entries",
        "passes",
        "side_exits",
        "ops_on_trace",
        "invalidations",
        "exit_counts",
        "gen_pass0",
    )

    def __init__(self, func: str, entry: str):
        self.func = func
        self.entry = entry
        self.path: Tuple[str, ...] = ()
        self.cyclic = False
        self.compiles = 0
        self.entries = 0
        self.passes = 0
        self.side_exits = 0
        self.ops_on_trace = 0
        self.invalidations = 0
        #: Side exits of the *current generation*, keyed by the label
        #: of the block whose guard failed.  Reset at each install;
        #: after an invalidation the re-record reads them to truncate
        #: the new path just past its most unstable branch.
        self.exit_counts: Dict[str, int] = {}
        #: ``passes`` at the current generation's install.
        self.gen_pass0 = 0

    @property
    def guard_failure_rate(self) -> float:
        """Side exits per completed pass (a loop's natural exit counts
        as one side exit per entry, so rates well under 1 are healthy)."""
        return self.side_exits / self.passes if self.passes else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "func": self.func,
            "entry": self.entry,
            "path": list(self.path),
            "cyclic": self.cyclic,
            "compiles": self.compiles,
            "entries": self.entries,
            "passes": self.passes,
            "side_exits": self.side_exits,
            "ops_on_trace": self.ops_on_trace,
            "invalidations": self.invalidations,
            "guard_failure_rate": round(self.guard_failure_rate, 6),
        }


class CompiledTrace:
    """One installed trace: the generated function plus bookkeeping."""

    __slots__ = ("fn", "stats", "entry", "path", "cyclic", "pass0", "exit0", "source")

    def __init__(self, fn: Callable, stats: TraceStats, path: Tuple[str, ...], cyclic: bool, source: str):
        self.fn = fn
        self.stats = stats
        self.entry = path[0]
        self.path = path
        self.cyclic = cyclic
        #: ``stats.passes``/``stats.side_exits`` at install time -- the
        #: guard-failure heuristic is evaluated per trace generation.
        self.pass0 = 0
        self.exit0 = 0
        #: Generated Python source (debugging/tests).
        self.source = source


def _undefined(name: str, func_name: str):
    raise InterpError(f"use of undefined variable {name} in {func_name}")


class _Emitter:
    """Indentation-aware source accumulator."""

    def __init__(self):
        self.lines: List[str] = []
        self.level = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.level + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _TraceCompiler:
    """Compiles one recorded block path of one function into source."""

    def __init__(self, cf, path: List[str], cyclic: bool, stats: TraceStats):
        self.cf = cf
        self.machine = cf.machine
        self.func = cf.func
        self.path = list(path)
        self.cyclic = cyclic
        self.stats = stats
        self.ns: Dict[str, object] = {}
        self.out = _Emitter()
        #: IR variable name -> generated local name.
        self.locals: Dict[str, str] = {}
        #: Names assigned so far in pass-1 linear order.
        self.assigned: set = set()
        #: Not-provably-assigned names whose first (guarded) use has
        #: already been emitted.  Trace code is straight-line with
        #: early returns, so emission order is dominance order: after
        #: one guard ran, the local is known bound and later uses can
        #: read it bare.
        self.checked: set = set()
        self.params = {p.name for p in cf.func.params}
        self.temp_counter = 0
        #: Tracer-dict namespace bindings (EdgeProfile specialization).
        self._tracer_dict_names: Dict[str, str] = {}
        #: (executed-instruction prefix sums) fuel charged at each exit.
        self.fuel_so_far = 0
        hooks = cf.hooks
        self.engine = cf.machine.timing_engine
        #: Accumulate dynamic load/branch ticks in a trace local
        #: (``_tk``) and fold into the engine's pending counter only at
        #: settle points (integer additions commute, and attribution
        #: only happens inside engine calls, which every settle point
        #: precedes) -- saves two Python calls per dynamic load/branch.
        self.direct_ticks = self.engine is not None and hasattr(
            self.engine, "_pending"
        )
        self.on_block = hooks.on_block
        self.on_edge = hooks.on_edge
        #: Pure-EdgeProfile observers get inline dict bumps.
        observers = set(self.on_block) | set(self.on_edge)
        self.edge_profiles = (
            tuple(observers)
            if observers and all(type(t) is EdgeProfile for t in observers)
            else None
        )
        self.bailout = getattr(cf.machine, "_trace_bailout", 0)
        #: Deferred engine block events (index, block, prev_label) for
        #: blocks whose predecessor is a compile-time constant.  Runs
        #: separated only by unguarded edges are emitted as a single
        #: ``E_blocks`` call (see VectorTimingEngine.blocks); the buffer
        #: is flushed before any other engine event, guard, exit or
        #: call, so engine event order is preserved exactly.
        self._blk_events: List[Tuple[int, Block, str]] = []

    # -- naming helpers ----------------------------------------------

    def _local(self, name: str) -> str:
        local = self.locals.get(name)
        if local is None:
            local = f"_v{len(self.locals)}"
            self.locals[name] = local
        return local

    def _const(self, obj) -> str:
        """Bind a Python object into the namespace, return its name."""
        key = f"_c{self.temp_counter}"
        self.temp_counter += 1
        self.ns[key] = obj
        return key

    # -- operand expressions ------------------------------------------

    def _use(self, value: Value) -> str:
        if isinstance(value, Const):
            return repr(value.value)
        if isinstance(value, Var):
            name = value.name
            local = self._local(name)
            if (
                name in self.params
                or name in self.assigned
                or name in self.checked
            ):
                return local
            self.checked.add(name)
            return f"({local} if {local} is not _MISS else _undef({name!r}))"
        raise _Reject(f"cannot evaluate {value!r}")

    def _use_int(self, value: Value) -> str:
        """``int(...)`` coercion as applied by memory-op address math."""
        if isinstance(value, Const):
            return repr(int(value.value))
        return f"int({self._use(value)})"

    def _assign(self, var) -> str:
        local = self._local(var.name)
        self.assigned.add(var.name)
        return local

    # -- structural helpers -------------------------------------------

    def _split(self, label: str) -> Tuple[Block, List[Phi], List[Instr], Instr]:
        """Phi prefix / body / terminator of one block, mirroring
        ``_CompiledFunction.compile_block``."""
        block = self.cf.block_map.get(label)
        if block is None:
            raise _Reject(f"no block {label!r}")
        instrs = block.instrs
        index = 0
        phis: List[Phi] = []
        while index < len(instrs) and isinstance(instrs[index], Phi):
            phis.append(instrs[index])
            index += 1
        body: List[Instr] = []
        terminator: Optional[Instr] = None
        for instr in instrs[index:]:
            if instr.is_terminator:
                terminator = instr
                break
            body.append(instr)
        if terminator is None:
            raise _Reject(f"block {label} falls off the end")
        return block, phis, body, terminator

    @staticmethod
    def _block_fuel(phis, body, terminator) -> int:
        return len(phis) + len(body) + 1

    # -- event emission ------------------------------------------------

    def _emit_block_event(self, index: int, block: Block, prev_expr: str) -> None:
        emit = self.out.emit
        if self.engine is not None:
            if index == 0:
                # Runtime predecessor: must be a standalone event.
                self._emit_tick_settle()
                name = self._bind_block(index, block)
                emit(f"E_block(F, {name}, {prev_expr})")
            else:
                self._blk_events.append((index, block, self.path[index - 1]))
        if not self.on_block:
            return
        if self.edge_profiles is not None:
            key = self._const((self.func.name, block.label))
            for tracer in self.on_block:
                counts = self._bind_tracer_dict(tracer, "block")
                emit(f"{counts}[{key}] = {counts}.get({key}, 0) + 1")
        else:
            name = self._bind_block(index, block)
            emit(f"for _t in _TB: _t.on_block(F, {name}, {prev_expr})")

    def _emit_tick_settle(self) -> None:
        """Fold locally accumulated dynamic ticks into the engine.

        Must precede any engine call (which may flush/attribute pending
        ticks) and any return from the trace."""
        if self.direct_ticks:
            self.out.emit("if _tk: ENG._pending += _tk; _tk = 0")

    def _flush_block_events(self) -> None:
        """Emit deferred engine block events at the current (block)
        indentation level -- never inside a conditional arm."""
        buf = self._blk_events
        if not buf:
            return
        self._emit_tick_settle()
        emit = self.out.emit
        if len(buf) == 1 or not hasattr(self.engine, "blocks"):
            for index, block, prev in buf:
                name = self._bind_block(index, block)
                emit(f"E_block(F, {name}, {prev!r})")
        else:
            seq = tuple((self.func, block, prev) for _, block, prev in buf)
            self.engine.register_seq(seq)
            emit(f"E_blocks({self._const(seq)})")
        del buf[:]

    def _emit_edge_event(self, src: str, dst: str) -> None:
        if not self.on_edge:
            return
        emit = self.out.emit
        if self.edge_profiles is not None:
            key = self._const((self.func.name, src, dst))
            for tracer in self.on_edge:
                counts = self._bind_tracer_dict(tracer, "edge")
                emit(f"{counts}[{key}] = {counts}.get({key}, 0) + 1")
        else:
            emit(f"for _t in _TE: _t.on_edge(F, {src!r}, {dst!r})")

    def _bind_block(self, index: int, block: Block) -> str:
        name = f"B{index}"
        self.ns[name] = block
        return name

    def _bind_tracer_dict(self, tracer, kind: str) -> str:
        key = f"_{kind}c{id(tracer)}"
        name = self._tracer_dict_names.get(key)
        if name is None:
            name = f"_d{len(self._tracer_dict_names)}"
            self._tracer_dict_names[key] = name
            self.ns[name] = (
                tracer.block_counts if kind == "block" else tracer.edge_counts
            )
        return name

    # -- write-back and exits ------------------------------------------

    def _emit_writebacks(self) -> None:
        """Spill trace locals back to the environment at a side exit.

        Names assigned before this point in pass-1 order spill
        unconditionally; names only assigned later on the trace (reached
        on a previous pass of a cyclic trace) spill iff bound.
        """
        emit = self.out.emit
        for name, local in self.locals.items():
            if name not in self.all_assigned:
                continue  # read-only: env already agrees
            if name in self.params or name in self.assigned:
                emit(f"env[{name!r}] = {local}")
            else:
                emit(f"if {local} is not _MISS: env[{name!r}] = {local}")

    def _emit_exit(self, dst_label: str, src_label: str, side_exit: bool) -> None:
        emit = self.out.emit
        self._emit_tick_settle()
        emit(f"M.executed += {self.fuel_so_far}")
        emit(f"T.ops_on_trace += {self.fuel_so_far}")
        if side_exit:
            emit("T.side_exits += 1")
            emit("_xc = T.exit_counts")
            emit(f"_xc[{src_label!r}] = _xc.get({src_label!r}, 0) + 1")
        self._emit_writebacks()
        emit(f"return ({dst_label!r}, {src_label!r})")

    def _emit_bail(self, dst_label: str, src_label: str) -> None:
        """Forced guard-failure hook: exit at the on-trace label."""
        if not self.bailout:
            return
        self._flush_block_events()
        emit = self.out.emit
        emit("if _BAIL():")
        self.out.level += 1
        self._emit_exit(dst_label, src_label, side_exit=True)
        self.out.level -= 1

    # -- instruction emission -------------------------------------------

    def _emit_instr(self, instr: Instr) -> None:
        emit = self.out.emit
        if isinstance(instr, BinOp):
            if instr.op == "div":
                expr = f"_div({self._use(instr.lhs)}, {self._use(instr.rhs)})"
            elif instr.op == "mod":
                expr = f"_mod({self._use(instr.lhs)}, {self._use(instr.rhs)})"
            else:
                template = _BINOP_TEMPLATES.get(instr.op)
                if template is None:
                    raise _Reject(f"unknown binop {instr.op!r}")
                expr = template.format(self._use(instr.lhs), self._use(instr.rhs))
            emit(f"{self._assign(instr.dest)} = {expr}")
        elif isinstance(instr, UnOp):
            template = _UNOP_TEMPLATES.get(instr.op)
            if template is None:
                raise _Reject(f"unknown unop {instr.op!r}")
            emit(f"{self._assign(instr.dest)} = {template.format(self._use(instr.src))}")
        elif isinstance(instr, Copy):
            expr = self._use(instr.src)
            emit(f"{self._assign(instr.dest)} = {expr}")
        elif isinstance(instr, LoadAddr):
            base = self.machine.symbol_base(self.func, instr.sym)
            emit(f"{self._assign(instr.dest)} = {base!r}")
        elif isinstance(instr, Load):
            self._flush_block_events()
            emit(f"_a = {self._use_int(instr.base)} + {self._use_int(instr.offset)}")
            emit("_m = M.memory")
            emit("if not (0 <= _a < len(_m)):")
            self.out.level += 1
            emit('raise InterpError(f"load from invalid address {_a}")')
            self.out.level -= 1
            emit(f"{self._assign(instr.dest)} = _m[_a]")
            if self.direct_ticks:
                emit("_tk += E_load(_a)")
            elif self.engine is not None:
                emit("E_load(_a)")
        elif isinstance(instr, Store):
            self._flush_block_events()
            emit(f"_a = {self._use_int(instr.base)} + {self._use_int(instr.offset)}")
            emit(f"_val = {self._use(instr.value)}")
            emit("_m = M.memory")
            emit("if not (0 <= _a < len(_m)):")
            self.out.level += 1
            emit('raise InterpError(f"store to invalid address {_a}")')
            self.out.level -= 1
            emit("_m[_a] = _val")
            if self.engine is not None:
                emit("E_store(_a)")
        elif isinstance(instr, Call):
            self._flush_block_events()
            self._emit_tick_settle()
            invoke = self._const(self._make_invoker(instr))
            args = ", ".join(self._use(a) for a in instr.args)
            call = f"{invoke}([{args}])"
            if instr.dest is not None:
                emit(f"{self._assign(instr.dest)} = {call}")
            else:
                emit(call)
        elif isinstance(instr, (SptFork, SptKill)):
            pass  # sequential no-ops (traces never run under on_instr)
        else:
            raise _Reject(f"cannot compile {instr!r}")

    def _make_invoker(self, instr: Call) -> Callable:
        machine = self.machine
        callee = instr.callee
        if callee in machine.module.functions:
            target = machine.module.functions[callee]

            def invoke(args):
                return machine._call_function(target, args)

            return invoke
        if callee in machine.intrinsics:
            intrinsic = machine.intrinsics[callee]

            def invoke(args):
                return intrinsic(machine, *args)

            return invoke

        def invoke(args):
            raise InterpError(f"call to unknown function {callee!r}")

        return invoke

    # -- phi emission ----------------------------------------------------

    def _emit_phi_assign(self, phis: List[Phi], pred: str) -> None:
        """Parallel phi-batch assignment from the on-trace predecessor."""
        exprs = []
        for phi in phis:
            incoming = phi.incomings.get(pred)
            if incoming is None:
                raise _Reject(f"phi {phi.dest} has no incoming for {pred}")
            exprs.append(self._use(incoming))
        # Right-hand side evaluates fully against pre-assignment state:
        # the parallel semantics of the reference interpreter.
        targets = ", ".join(self._assign(phi.dest) for phi in phis)
        if len(phis) == 1:
            self.out.emit(f"{targets} = {exprs[0]}")
        else:
            self.out.emit(f"{targets} = ({', '.join(exprs)})")

    # -- terminator emission --------------------------------------------

    def _emit_branch_event(self, key: str, taken: str) -> None:
        if self.direct_ticks:
            self.out.emit(f"_tk += E_branch({key}, {taken})")
        else:
            self.out.emit(f"E_branch({key}, {taken})")

    def _emit_terminator(self, index: int, label: str, terminator: Instr) -> None:
        """Emit guard/exit/back-edge logic for block ``index``."""
        emit = self.out.emit
        last = index == len(self.path) - 1
        on_target = None
        if not last:
            on_target = self.path[index + 1]
        elif self.cyclic:
            on_target = self.path[0]

        if isinstance(instr := terminator, Return):
            if not last:
                raise _Reject("return mid-trace")
            self._flush_block_events()
            self._emit_tick_settle()
            value = "None" if instr.value is None else self._use(instr.value)
            emit(f"env['$ret'] = {value}")
            emit(f"M.executed += {self.fuel_so_far}")
            emit(f"T.ops_on_trace += {self.fuel_so_far}")
            emit(f"return (_RET, {label!r})")
            return

        if isinstance(terminator, Jump):
            target = terminator.target
            if target not in self.cf.block_map:
                raise _Reject(f"jump to unknown block {target!r}")
            if on_target is not None and target != on_target:
                raise _Reject("recorded path diverges from jump target")
            self._emit_edge_event(label, target)
            if on_target is None:
                self._flush_block_events()
                self._emit_exit(target, label, side_exit=False)
            elif last:
                self._emit_back_edge(label)
            else:
                self._emit_bail(target, label)
            return

        if isinstance(terminator, Branch):
            iftrue, iffalse = terminator.iftrue, terminator.iffalse
            for target in (iftrue, iffalse):
                if target not in self.cf.block_map:
                    raise _Reject(f"branch to unknown block {target!r}")
            self._flush_block_events()
            cond = self._use(terminator.cond)
            key = self._const(id(terminator))
            self.ns.setdefault("_pins", []).append(terminator)  # pin id
            if iftrue == iffalse:
                if on_target is not None and iftrue != on_target:
                    raise _Reject("recorded path diverges from branch target")
                emit(f"_cnd = {cond}")
                if self.engine is not None:
                    self._emit_branch_event(key, "True")
                self._emit_edge_event(label, iftrue)
                if on_target is None:
                    self._emit_exit(iftrue, label, side_exit=False)
                elif last:
                    self._emit_back_edge(label)
                else:
                    self._emit_bail(iftrue, label)
                return
            if on_target is None:
                # Final block of a linear trace: both arms leave.
                emit(f"if {cond}:")
                self.out.level += 1
                if self.engine is not None:
                    self._emit_branch_event(key, "True")
                self._emit_edge_event(label, iftrue)
                self._emit_exit(iftrue, label, side_exit=False)
                self.out.level -= 1
                emit("else:")
                self.out.level += 1
                if self.engine is not None:
                    self._emit_branch_event(key, "False")
                self._emit_edge_event(label, iffalse)
                self._emit_exit(iffalse, label, side_exit=False)
                self.out.level -= 1
                return
            if on_target not in (iftrue, iffalse):
                raise _Reject("recorded path diverges from branch targets")
            stay_on_true = on_target == iftrue
            off_target = iffalse if stay_on_true else iftrue
            # The off-trace arm always emits code (it ends in a return),
            # so the guard tests the *off* condition; the on-trace case
            # falls through to block level, which may emit nothing.
            emit(f"if not ({cond}):" if stay_on_true else f"if {cond}:")
            self.out.level += 1
            if self.engine is not None:
                self._emit_branch_event(key, repr(not stay_on_true))
            self._emit_edge_event(label, off_target)
            self._emit_exit(off_target, label, side_exit=True)
            self.out.level -= 1
            if self.engine is not None:
                self._emit_branch_event(key, repr(stay_on_true))
            self._emit_edge_event(label, on_target)
            if last:
                self._emit_back_edge(label)
            else:
                self._emit_bail(on_target, label)
            return

        raise _Reject(f"cannot compile terminator {terminator!r}")

    def _emit_back_edge(self, src_label: str) -> None:
        """Close one pass of a cyclic trace: bail hook, entry-block phi
        update from the latch, fuel settlement, loop-variant prev."""
        emit = self.out.emit
        self._flush_block_events()
        self._emit_bail(self.path[0], src_label)
        entry_phis = self.entry_phis
        if entry_phis:
            self._emit_phi_assign(entry_phis, src_label)
        emit(f"M.executed += {self.fuel_so_far}")
        emit(f"T.ops_on_trace += {self.fuel_so_far}")
        if self.uses_prev_var:
            emit(f"_p = {src_label!r}")

    # -- top level -------------------------------------------------------

    def compile(self) -> Optional[CompiledTrace]:
        try:
            return self._compile()
        except _Reject:
            return None

    def _compile(self) -> CompiledTrace:
        cf = self.cf
        machine = self.machine

        # Pre-split every block up front (any rejection aborts cleanly
        # before code generation).
        parts = [self._split(label) for label in self.path]
        entry_block, entry_phi_list, _, _ = parts[0]
        self.entry_phis = entry_phi_list
        self.uses_prev_var = self.cyclic and (
            self.engine is not None or bool(self.on_block)
        )

        ns = self.ns
        ns.update(
            _MISS=_MISS,
            _RET=_RETURN,
            M=machine,
            T=self.stats,
            F=self.func,
            InterpError=InterpError,
            FuelExhausted=FuelExhausted,
            _div=_div,
            _mod=_mod,
        )
        func_name = self.func.name
        ns["_undef"] = lambda name: _undefined(name, func_name)
        if self.engine is not None:
            ns["E_block"] = self.engine.block
            # store() only write-allocates; bind the hierarchy directly.
            ns["E_store"] = self.engine.model.hierarchy.fill_for_write
            if self.direct_ticks:
                # Ticks accumulate in the `_tk` local; bind the raw
                # tick-returning model entry points.
                ns["ENG"] = self.engine
                ns["E_load"] = self.engine.model.hierarchy.access_ticks
                ns["E_branch"] = self.engine.model.branch_ticks
            else:
                ns["E_load"] = self.engine.load
                ns["E_branch"] = self.engine.branch
            if hasattr(self.engine, "blocks"):
                ns["E_blocks"] = self.engine.blocks
        if self.on_block and self.edge_profiles is None:
            ns["_TB"] = self.on_block
        if self.on_edge and self.edge_profiles is None:
            ns["_TE"] = self.on_edge
        if self.bailout:
            ns["_BAIL"] = machine._trace_bail
        ns["_FUEL"] = machine.fuel
        ns["_FMSG"] = f"exceeded {machine.fuel} dynamic instructions"

        out = self.out
        out.emit("def _trace(env, prev):")
        out.level += 1
        out.emit("T.entries += 1")

        # Entry-block phis come from an arbitrary off-trace predecessor:
        # apply them through the block-compiled batch machinery.
        if entry_phi_list:
            ns["_entry_phis"] = _make_entry_applier(cf, self.path[0])
            out.emit("_entry_phis(env, prev)")

        # Emit the body into a scratch buffer first: emission discovers
        # every IR name the trace touches, and the preamble that binds
        # those names to locals is then prepended.
        body_lines = self._emit_body(parts)
        preamble = [
            f"{local} = env.get({name!r}, _MISS)"
            for name, local in self.locals.items()
        ]
        for line in preamble:
            out.emit(line)
        out.lines.extend(body_lines)

        source = out.source()
        code = _compile_cached(source, f"<trace {func_name}:{self.path[0]}>")
        exec(code, ns)
        trace = CompiledTrace(
            ns["_trace"], self.stats, tuple(self.path), self.cyclic, source
        )
        return trace

    def _emit_body(self, parts) -> List[str]:
        """Emit the per-pass body into a scratch emitter; returns its
        lines (indented relative to the function body)."""
        outer = self.out
        self.out = _Emitter()
        self.out.level = outer.level
        emit = self.out.emit

        if self.direct_ticks:
            emit("_tk = 0")
        if self.uses_prev_var:
            emit("_p = prev")
        if self.cyclic:
            emit("while True:")
            self.out.level += 1
        emit("T.passes += 1")
        emit("if M.executed > _FUEL:")
        self.out.level += 1
        emit("raise FuelExhausted(_FMSG)")
        self.out.level -= 1
        if self.machine.watchdog is not None:
            self.ns["_WD"] = self.machine.watchdog
            emit("_WD.poll()")

        self.all_assigned = self._collect_assigned(parts)
        # Register every assigned name up front: a side exit early in
        # the path must still spill names assigned later (bound during
        # an earlier pass of a cyclic trace).  Sorted for deterministic
        # generated source.
        for name in sorted(self.all_assigned):
            self._local(name)
        self.fuel_so_far = 0
        for index, (block, phis, body, terminator) in enumerate(parts):
            label = self.path[index]
            self.fuel_so_far += self._block_fuel(phis, body, terminator)
            if index == 0:
                prev_expr = "_p" if self.uses_prev_var else "prev"
                self._emit_block_event(index, block, prev_expr)
                # Entry phis were applied to env before the preamble
                # (first pass) or by the back-edge section (later
                # passes); mark their dests as bound.
                for phi in phis:
                    self.assigned.add(phi.dest.name)
                    self._local(phi.dest.name)
            else:
                self._emit_block_event(index, block, repr(self.path[index - 1]))
                if phis:
                    self._emit_phi_assign(phis, self.path[index - 1])
            for instr in body:
                self._emit_instr(instr)
            self._emit_terminator(index, label, terminator)

        # Every terminator path ends in an exit/back-edge, all of which
        # flush; a leftover here would mean silently dropped events.
        assert not self._blk_events
        lines = self.out.lines
        self.out = outer
        return lines

    def _collect_assigned(self, parts) -> set:
        assigned = set()
        for _, phis, body, _ in parts:
            for phi in phis:
                assigned.add(phi.dest.name)
            for instr in body:
                dest = getattr(instr, "dest", None)
                if dest is not None:
                    assigned.add(dest.name)
        return assigned


class _Reject(Exception):
    """Internal: the recorded path cannot be compiled to a trace."""


def _make_entry_applier(cf, entry_label: str):
    """Apply the entry block's phi batch for a runtime predecessor,
    with exactly the driver-loop semantics."""
    cb = cf.blocks.get(entry_label)
    if cb is None:
        cb = cf.compile_block(entry_label)
        cf.blocks[entry_label] = cb
    batches = cb.phi_batches

    def apply_entry(env, prev):
        if prev is None:
            raise InterpError(f"phi in entry block {entry_label}")
        batch = batches.get(prev)
        if batch is None:
            cf._phi_error(cb, prev)
        if len(batch) == 1:
            dest, get = batch[0]
            env[dest] = get(env)
        else:
            updates = [(dest, get(env)) for dest, get in batch]
            for dest, value in updates:
                env[dest] = value

    return apply_entry


def compile_trace(cf, path: List[str], cyclic: bool, stats: TraceStats) -> Optional[CompiledTrace]:
    """Compile a recorded path into a :class:`CompiledTrace`, or return
    ``None`` when the path contains constructs the trace compiler does
    not support (the block-level driver remains fully capable)."""
    try:
        compiler = _TraceCompiler(cf, path, cyclic, stats)
        trace = compiler.compile()
    except InterpError:
        return None
    if trace is not None:
        stats.path = trace.path
        stats.cyclic = cyclic
    return trace
