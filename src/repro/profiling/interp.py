"""An IR interpreter.

The interpreter is the execution substrate for the whole evaluation
stack: profilers observe it through the :class:`Tracer` hook interface,
and the SPT machine model replays the traces it produces.

Design notes:

* Values are Python ints/floats/bools; memory is a flat word-addressed
  list with bump allocation.
* Global arrays and function-local arrays are allocated **once** at
  machine construction (like C statics).  Recursion therefore shares
  locals -- the workload suite does not use recursion.
* ``SPT_FORK``/``SPT_KILL`` execute as no-ops here: a transformed SPT
  loop run by this interpreter behaves exactly like the sequential
  original, which is how tests establish transformation correctness.
* Intrinsic (external) functions are Python callables registered on the
  machine; they may read/write machine memory to model impure library
  calls.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.ir.block import Block
from repro.ir.function import Function, Module
from repro.ir.instr import (
    BinOp,
    Branch,
    Call,
    Copy,
    Instr,
    Jump,
    Load,
    LoadAddr,
    Phi,
    Return,
    SptFork,
    SptKill,
    Store,
    UnOp,
)
from repro.ir.values import Const, Value, Var
from repro.obs.telemetry import NULL_TELEMETRY


class InterpError(RuntimeError):
    """Raised on runtime errors (undefined variable, bad address, ...)."""


class FuelExhausted(InterpError):
    """Raised when the dynamic instruction budget is exceeded."""


class Tracer:
    """Observer interface over interpreter execution.

    All hooks default to no-ops; profilers override the ones they need.
    Hook order for one instruction: ``on_instr`` fires first, then any
    ``on_load``/``on_store``, then ``on_def``.
    """

    def on_enter_function(self, func: Function, args: List) -> None:
        """A function invocation begins."""

    def on_exit_function(self, func: Function, result) -> None:
        """A function invocation returns."""

    def on_block(self, func: Function, block: Block, prev_label: Optional[str]) -> None:
        """Control enters ``block`` (after leaving ``prev_label``)."""

    def on_edge(self, func: Function, src_label: str, dst_label: str) -> None:
        """A CFG edge is traversed."""

    def on_instr(self, func: Function, block: Block, instr: Instr) -> None:
        """An instruction is about to execute."""

    def on_def(self, instr: Instr, value) -> None:
        """``instr`` defined its destination register to ``value``."""

    def on_load(self, instr: Instr, addr: int, value) -> None:
        """A memory read of ``addr`` produced ``value``."""

    def on_store(self, instr: Instr, addr: int, value, old_value) -> None:
        """A memory write set ``addr`` to ``value`` (was ``old_value``)."""

    def on_call(self, instr: Call, args: List) -> None:
        """A call instruction is invoking its callee."""


class TracerEventCounter(Tracer):
    """Counts every delivered tracer hook call, bucketed by hook name.

    Attached by the machine itself when its telemetry runs in detail
    mode; never attached on the default path, so un-observed runs pay
    nothing for it.
    """

    def __init__(self):
        self.by_hook: Dict[str, int] = {}

    @property
    def total(self) -> int:
        return sum(self.by_hook.values())

    def _bump(self, name: str) -> None:
        self.by_hook[name] = self.by_hook.get(name, 0) + 1

    def on_enter_function(self, func, args) -> None:
        self._bump("on_enter_function")

    def on_exit_function(self, func, result) -> None:
        self._bump("on_exit_function")

    def on_block(self, func, block, prev_label) -> None:
        self._bump("on_block")

    def on_edge(self, func, src_label, dst_label) -> None:
        self._bump("on_edge")

    def on_instr(self, func, block, instr) -> None:
        self._bump("on_instr")

    def on_def(self, instr, value) -> None:
        self._bump("on_def")

    def on_load(self, instr, addr, value) -> None:
        self._bump("on_load")

    def on_store(self, instr, addr, value, old_value) -> None:
        self._bump("on_store")

    def on_call(self, instr, args) -> None:
        self._bump("on_call")


_BINOPS: Dict[str, Callable] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "and": lambda a, b: int(a) & int(b),
    "or": lambda a, b: int(a) | int(b),
    "xor": lambda a, b: int(a) ^ int(b),
    "shl": lambda a, b: int(a) << int(b),
    "shr": lambda a, b: int(a) >> int(b),
    "min": min,
    "max": max,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


def _div(a, b):
    if b == 0:
        raise InterpError("division by zero")
    if isinstance(a, float) or isinstance(b, float):
        return a / b
    return int(a / b)  # C-style truncation


def _mod(a, b):
    if b == 0:
        raise InterpError("modulo by zero")
    return a - b * int(a / b)


_UNOPS: Dict[str, Callable] = {
    "neg": lambda a: -a,
    "not": lambda a: not a,
    "abs": abs,
    "i2f": float,
    "f2i": int,
}


class Frame:
    """One function activation."""

    __slots__ = ("func", "env", "block", "prev_label")

    def __init__(self, func: Function):
        self.func = func
        self.env: Dict[str, object] = {}
        self.block: Optional[Block] = None
        self.prev_label: Optional[str] = None


class Machine:
    """Interpreter state: module, flat memory, symbol table, intrinsics."""

    def __init__(
        self, module: Module, fuel: int = 50_000_000, telemetry=None,
        watchdog=None,
    ):
        self.module = module
        self.fuel = fuel
        #: Telemetry collector; the NULL singleton keeps the hot path
        #: to a single ``enabled`` check per :meth:`run`.
        self.telemetry = telemetry or NULL_TELEMETRY
        #: Optional :class:`repro.resilience.Watchdog`; polled
        #: (amortized) at every fuel spend so a phase deadline can break
        #: a wedged or runaway profiling run.
        self.watchdog = watchdog
        self.executed = 0
        #: Flat word-addressed memory.
        self.memory: List = []
        #: Base address of every array symbol ("func.sym" or "sym").
        self.symbols: Dict[str, int] = {}
        #: Reverse map: for diagnostics, sorted (base, size, name).
        self.regions: List = []
        self.intrinsics: Dict[str, Callable] = {}
        self.tracers: List[Tracer] = []
        # id(block) -> (block, fuel ops); the block reference pins the
        # id.  Supports the amortized per-block fuel pre-charge.
        self._block_costs: Dict[int, tuple] = {}
        #: Optional ``hook(machine, frame)`` fired at every block
        #: boundary of the *entry* frame (call depth 1) -- the only
        #: points where the full interpreter state is plain data, which
        #: is where checkpoints are taken (repro.checkpoint).  None
        #: keeps the hot loop at a single attribute load per block.
        self.checkpoint_hook: Optional[Callable] = None
        self._call_depth = 0
        self._allocate_statics()

    # -- setup -------------------------------------------------------

    def _alloc(self, name: str, size: int) -> int:
        base = len(self.memory)
        self.memory.extend([0] * size)
        self.symbols[name] = base
        self.regions.append((base, size, name))
        return base

    def _allocate_statics(self) -> None:
        for sym, decl in self.module.globals.items():
            self._alloc(sym, decl.size)
        for func in self.module.functions.values():
            for sym, decl in func.arrays.items():
                self._alloc(f"{func.name}.{sym}", decl.size)

    def register_intrinsic(self, name: str, fn: Callable) -> None:
        """Register an external function ``name(machine, *args) -> value``."""
        self.intrinsics[name] = fn

    def add_tracer(self, tracer: Tracer) -> None:
        self.tracers.append(tracer)

    def symbol_base(self, func: Optional[Function], sym: str) -> int:
        """Resolve an array symbol to its base address."""
        if func is not None:
            scoped = f"{func.name}.{sym}"
            if scoped in self.symbols:
                return self.symbols[scoped]
        if sym in self.symbols:
            return self.symbols[sym]
        raise InterpError(f"unknown array symbol {sym!r}")

    def region_of(self, addr: int) -> Optional[str]:
        """The symbol owning ``addr``, for diagnostics and profiling."""
        for base, size, name in self.regions:
            if base <= addr < base + size:
                return name
        return None

    # -- memory ------------------------------------------------------

    def read_mem(self, addr: int):
        if not 0 <= addr < len(self.memory):
            raise InterpError(f"load from invalid address {addr}")
        return self.memory[addr]

    def write_mem(self, addr: int, value):
        if not 0 <= addr < len(self.memory):
            raise InterpError(f"store to invalid address {addr}")
        self.memory[addr] = value

    # -- execution -----------------------------------------------------

    def run(self, func_name: str, args: List = ()) -> object:
        """Execute ``func_name`` with ``args``; returns its return value."""
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._execute(func_name, args)

        counter = None
        if telemetry.detail:
            counter = TracerEventCounter()
            self.add_tracer(counter)
        start_executed = self.executed
        try:
            return self._execute(func_name, args)
        finally:
            if counter is not None:
                self.tracers.remove(counter)
                telemetry.count("interp.tracer_events", counter.total)
                for hook, n in sorted(counter.by_hook.items()):
                    telemetry.count(f"interp.tracer_events.{hook}", n)
            telemetry.count("interp.runs")
            telemetry.count(
                "interp.instructions", self.executed - start_executed
            )
            telemetry.gauge("interp.fuel_remaining", self.fuel - self.executed)

    def _execute(self, func_name: str, args: List) -> object:
        """The telemetry-free execution core :meth:`run` wraps."""
        func = self.module.function(func_name)
        return self._call_function(func, list(args))

    def _call_function(self, func: Function, args: List):
        if len(args) != len(func.params):
            raise InterpError(
                f"{func.name} expects {len(func.params)} args, got {len(args)}"
            )
        frame = Frame(func)
        for param, arg in zip(func.params, args):
            frame.env[param.name] = arg
        for tracer in self.tracers:
            tracer.on_enter_function(func, args)
        frame.block = func.entry
        return self._run_frame(frame)

    def _run_frame(self, frame: Frame):
        """Drive ``frame`` block-to-block until it returns.

        Shared by the normal call path and :meth:`resume_frame`; the
        latter enters with a frame rebuilt from a checkpoint, for which
        ``on_enter_function`` already fired before the snapshot."""
        func = frame.func
        self._call_depth += 1
        try:
            result = None
            while frame.block is not None:
                hook = self.checkpoint_hook
                if hook is not None and self._call_depth == 1:
                    hook(self, frame)
                next_label = self._exec_block(frame)
                if next_label is None:
                    result = frame.env.get("$ret")
                    break
                for tracer in self.tracers:
                    tracer.on_edge(func, frame.block.label, next_label)
                frame.prev_label = frame.block.label
                frame.block = func.block(next_label)
        finally:
            self._call_depth -= 1

        for tracer in self.tracers:
            tracer.on_exit_function(func, result)
        return result

    # -- checkpointing ------------------------------------------------

    def snapshot_state(self, frame: Frame) -> Dict:
        """Plain-data snapshot of this machine at an entry-frame block
        boundary (see :mod:`repro.checkpoint.state` for the contract).

        Valid only at the points :attr:`checkpoint_hook` fires: the
        frame's block is pending (``on_block`` has not run for it), no
        call is in flight, and every value is an int/float/bool/None.
        """
        return {
            "func": frame.func.name,
            "block": frame.block.label if frame.block is not None else None,
            "prev_label": frame.prev_label,
            "env": dict(frame.env),
            "memory": list(self.memory),
            "executed": self.executed,
            "fuel": self.fuel,
        }

    def restore_state(self, state: Dict) -> Frame:
        """Rebuild the entry frame a :meth:`snapshot_state` captured.

        Returns the frame; run it with :meth:`resume_frame`.  The
        machine must have been constructed over the same module (the
        checkpoint store's content-addressed key guarantees it)."""
        func = self.module.function(state["func"])
        frame = Frame(func)
        frame.env = dict(state["env"])
        frame.block = (
            func.block(state["block"]) if state["block"] is not None else None
        )
        frame.prev_label = state["prev_label"]
        self.memory = list(state["memory"])
        self.executed = int(state["executed"])
        self.fuel = int(state["fuel"])
        return frame

    def resume_frame(self, frame: Frame):
        """Continue a restored entry frame to completion.

        Does not re-fire ``on_enter_function`` (the tracers observed it
        before the snapshot was taken); ``on_exit_function`` fires
        normally when the frame returns."""
        return self._run_frame(frame)

    def _eval(self, frame: Frame, value: Value):
        if isinstance(value, Const):
            return value.value
        if isinstance(value, Var):
            if value.name not in frame.env:
                raise InterpError(
                    f"use of undefined variable {value.name} in {frame.func.name}"
                )
            return frame.env[value.name]
        raise InterpError(f"cannot evaluate {value!r}")

    def _block_ops(self, block: Block) -> int:
        """Ops a normal execution of ``block`` spends fuel on: leading
        phis plus body instructions through the first terminator."""
        entry = self._block_costs.get(id(block))
        if entry is None:
            count = 0
            for instr in block.instrs:
                count += 1
                if instr.is_terminator:
                    break
            # The tuple pins the block object so its id cannot recycle.
            entry = (block, count)
            self._block_costs[id(block)] = entry
        return entry[1]

    def _exec_block(self, frame: Frame) -> Optional[str]:
        """Execute ``frame.block``; return the next label or None on return.

        Fuel accounting and watchdog polling are amortized: the block's
        op count is pre-charged in one addition and the watchdog polled
        once per block.  Near exhaustion (the pre-charge would cross the
        fuel limit) the exact per-op slow path runs instead, so
        ``FuelExhausted`` surfaces at the same op it always did.  If the
        block aborts early (interpreter error), the charge for the
        unexecuted tail is retracted before the exception propagates.
        """
        block = frame.block
        func = frame.func
        tracers = self.tracers
        for tracer in tracers:
            tracer.on_block(func, block, frame.prev_label)

        ops = self._block_ops(block)
        if self.executed + ops > self.fuel:
            return self._exec_block_ops_slow(frame, block, func)
        if self.watchdog is not None:
            self.watchdog.poll()
        self.executed += ops
        done = 0
        try:
            # Phis evaluate atomically against the incoming environment.
            phi_updates: Dict[str, object] = {}
            index = 0
            for instr in block.instrs:
                if not isinstance(instr, Phi):
                    break
                index += 1
                done += 1
                for tracer in tracers:
                    tracer.on_instr(func, block, instr)
                if frame.prev_label is None:
                    raise InterpError(f"phi in entry block {block.label}")
                if frame.prev_label not in instr.incomings:
                    raise InterpError(
                        f"phi {instr.dest} has no incoming for {frame.prev_label}"
                    )
                value = self._eval(frame, instr.incomings[frame.prev_label])
                phi_updates[instr.dest.name] = value
                for tracer in tracers:
                    tracer.on_def(instr, value)
            frame.env.update(phi_updates)

            for instr in block.instrs[index:]:
                done += 1
                for tracer in tracers:
                    tracer.on_instr(func, block, instr)
                outcome = self._exec_instr(frame, instr)
                if outcome is not _FALLTHROUGH:
                    return outcome
            raise InterpError(f"block {block.label} fell off the end")
        except BaseException:
            # Retract this block's unexecuted tail only -- charges made
            # by nested calls stay (they retract their own tails).
            self.executed -= ops - done
            raise

    def _exec_block_ops_slow(
        self, frame: Frame, block: Block, func: Function
    ) -> Optional[str]:
        """Exact per-op fuel accounting (the pre-amortization hot loop),
        used when the block's pre-charge could cross the fuel limit."""
        phi_updates: Dict[str, object] = {}
        index = 0
        for instr in block.instrs:
            if not isinstance(instr, Phi):
                break
            index += 1
            self._spend_fuel()
            for tracer in self.tracers:
                tracer.on_instr(func, block, instr)
            if frame.prev_label is None:
                raise InterpError(f"phi in entry block {block.label}")
            if frame.prev_label not in instr.incomings:
                raise InterpError(
                    f"phi {instr.dest} has no incoming for {frame.prev_label}"
                )
            value = self._eval(frame, instr.incomings[frame.prev_label])
            phi_updates[instr.dest.name] = value
            for tracer in self.tracers:
                tracer.on_def(instr, value)
        frame.env.update(phi_updates)

        for instr in block.instrs[index:]:
            self._spend_fuel()
            for tracer in self.tracers:
                tracer.on_instr(func, block, instr)
            outcome = self._exec_instr(frame, instr)
            if outcome is not _FALLTHROUGH:
                return outcome
        raise InterpError(f"block {block.label} fell off the end")

    def _spend_fuel(self) -> None:
        self.executed += 1
        if self.executed > self.fuel:
            raise FuelExhausted(f"exceeded {self.fuel} dynamic instructions")
        if self.watchdog is not None:
            self.watchdog.poll()

    def _exec_instr(self, frame: Frame, instr: Instr):
        env = frame.env

        if isinstance(instr, BinOp):
            a = self._eval(frame, instr.lhs)
            b = self._eval(frame, instr.rhs)
            if instr.op == "div":
                result = _div(a, b)
            elif instr.op == "mod":
                result = _mod(a, b)
            else:
                result = _BINOPS[instr.op](a, b)
            env[instr.dest.name] = result
            self._trace_def(instr, result)
            return _FALLTHROUGH

        if isinstance(instr, UnOp):
            result = _UNOPS[instr.op](self._eval(frame, instr.src))
            env[instr.dest.name] = result
            self._trace_def(instr, result)
            return _FALLTHROUGH

        if isinstance(instr, Copy):
            result = self._eval(frame, instr.src)
            env[instr.dest.name] = result
            self._trace_def(instr, result)
            return _FALLTHROUGH

        if isinstance(instr, LoadAddr):
            result = self.symbol_base(frame.func, instr.sym)
            env[instr.dest.name] = result
            self._trace_def(instr, result)
            return _FALLTHROUGH

        if isinstance(instr, Load):
            addr = int(self._eval(frame, instr.base)) + int(
                self._eval(frame, instr.offset)
            )
            value = self.read_mem(addr)
            for tracer in self.tracers:
                tracer.on_load(instr, addr, value)
            env[instr.dest.name] = value
            self._trace_def(instr, value)
            return _FALLTHROUGH

        if isinstance(instr, Store):
            addr = int(self._eval(frame, instr.base)) + int(
                self._eval(frame, instr.offset)
            )
            value = self._eval(frame, instr.value)
            old = self.read_mem(addr)
            self.write_mem(addr, value)
            for tracer in self.tracers:
                tracer.on_store(instr, addr, value, old)
            return _FALLTHROUGH

        if isinstance(instr, Call):
            args = [self._eval(frame, a) for a in instr.args]
            for tracer in self.tracers:
                tracer.on_call(instr, args)
            if instr.callee in self.module.functions:
                result = self._call_function(
                    self.module.function(instr.callee), args
                )
            elif instr.callee in self.intrinsics:
                result = self.intrinsics[instr.callee](self, *args)
            else:
                raise InterpError(f"call to unknown function {instr.callee!r}")
            if instr.dest is not None:
                env[instr.dest.name] = result
                self._trace_def(instr, result)
            return _FALLTHROUGH

        if isinstance(instr, Jump):
            return instr.target

        if isinstance(instr, Branch):
            cond = self._eval(frame, instr.cond)
            return instr.iftrue if cond else instr.iffalse

        if isinstance(instr, Return):
            frame.env["$ret"] = (
                self._eval(frame, instr.value) if instr.value is not None else None
            )
            return None

        if isinstance(instr, (SptFork, SptKill)):
            # Sequential semantics: SPT markers are no-ops.
            return _FALLTHROUGH

        raise InterpError(f"cannot execute {instr!r}")

    def _trace_def(self, instr: Instr, value) -> None:
        for tracer in self.tracers:
            tracer.on_def(instr, value)


#: Sentinel: instruction fell through to the next one in the block.
_FALLTHROUGH = object()


def run_module(
    module: Module,
    func_name: str = "main",
    args: List = (),
    tracers: List[Tracer] = (),
    fuel: int = 50_000_000,
    intrinsics: Dict[str, Callable] = None,
    fast: bool = False,
):
    """Convenience wrapper: build a machine, run, return (result, machine).

    ``fast=True`` selects the block-compiled fast path
    (:class:`repro.profiling.compiled.CompiledMachine`); the default is
    the reference interpreter.
    """
    if fast:
        from repro.profiling.compiled import CompiledMachine

        machine: Machine = CompiledMachine(module, fuel=fuel)
    else:
        machine = Machine(module, fuel=fuel)
    for name, fn in (intrinsics or {}).items():
        machine.register_intrinsic(name, fn)
    for tracer in tracers:
        machine.add_tracer(tracer)
    result = machine.run(func_name, args)
    return result, machine
