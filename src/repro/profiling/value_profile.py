"""Value-pattern profiling for software value prediction (paper §7.2).

Given a set of *watched* definitions (the critical violation candidates
the cost model flags), the profiler records the sequence of values each
definition produces and classifies its predictability:

* **stride**: successive values differ by a constant (``x = bar(x)``
  often incrementing by 2 in the paper's Figure 13 example);
* **last-value**: the value rarely changes;
* **unpredictable**: neither pattern holds often enough.

The SVP transformation only fires when the best pattern's hit rate
clears ``SptConfig.svp_min_hit_rate``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.ir.instr import Instr
from repro.profiling.interp import Tracer

#: Cap on recorded values per watched definition.
MAX_SAMPLES = 4096


class ValuePattern:
    """Classification of one definition's value stream."""

    def __init__(self, kind: str, stride, hit_rate: float, samples: int):
        #: "stride" | "last" | "unpredictable"
        self.kind = kind
        #: The constant stride (stride patterns only).
        self.stride = stride
        #: Fraction of transitions the best predictor would have gotten
        #: right.
        self.hit_rate = hit_rate
        self.samples = samples

    @property
    def predictable(self) -> bool:
        return self.kind != "unpredictable"

    def __repr__(self) -> str:
        return (
            f"ValuePattern({self.kind}, stride={self.stride}, "
            f"hit={self.hit_rate:.2f}, n={self.samples})"
        )


class ValueProfile(Tracer):
    """Records values produced by watched definitions."""

    def __init__(self, watched: List[Instr] = ()):
        self._watched_ids = {id(instr) for instr in watched}
        self._instrs: Dict[int, Instr] = {id(i): i for i in watched}
        self.samples: Dict[int, List] = {id(i): [] for i in watched}

    def watch(self, instr: Instr) -> None:
        self._watched_ids.add(id(instr))
        self._instrs[id(instr)] = instr
        self.samples.setdefault(id(instr), [])

    def on_def(self, instr: Instr, value) -> None:
        key = id(instr)
        if key not in self._watched_ids:
            return
        bucket = self.samples[key]
        if len(bucket) < MAX_SAMPLES:
            bucket.append(value)

    # -- analysis ----------------------------------------------------------

    def pattern_for(self, instr: Instr, min_samples: int = 8) -> ValuePattern:
        """Classify the recorded value stream of ``instr``."""
        values = self.samples.get(id(instr), [])
        if len(values) < min_samples:
            return ValuePattern("unpredictable", None, 0.0, len(values))
        if not all(isinstance(v, (int, float)) for v in values):
            return ValuePattern("unpredictable", None, 0.0, len(values))

        transitions = len(values) - 1
        diffs = [values[i + 1] - values[i] for i in range(transitions)]
        diff_counts = Counter(diffs)
        best_stride, stride_hits = diff_counts.most_common(1)[0]
        stride_rate = stride_hits / transitions
        last_hits = sum(1 for d in diffs if d == 0)
        last_rate = last_hits / transitions

        if last_rate >= stride_rate and last_rate > 0:
            best = ValuePattern("last", 0, last_rate, len(values))
        else:
            best = ValuePattern("stride", best_stride, stride_rate, len(values))
        if best.hit_rate <= 0.0:
            return ValuePattern("unpredictable", None, 0.0, len(values))
        return best

    def predictable_instrs(self, min_hit_rate: float) -> List[Instr]:
        """Watched instrs whose best pattern clears ``min_hit_rate``."""
        result = []
        for key, instr in self._instrs.items():
            pattern = self.pattern_for(instr)
            if pattern.predictable and pattern.hit_rate >= min_hit_rate:
                result.append(instr)
        return result
