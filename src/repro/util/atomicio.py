"""Durable file IO primitives: atomic whole-file writes and whole-line
appends.

Four subsystems grew the same two idioms independently -- the batch
result cache, the batch ``progress.json`` writer, the serve daemon's
ready file, and the obs run ledger.  This module is the one shared
implementation, and the checkpoint store builds on it, so a SIGKILL at
any instant can leave behind **either** the old file or the new file,
never a torn hybrid:

* :func:`atomic_write_bytes` / :func:`atomic_write_json` -- write to a
  temp file in the destination directory, ``fsync`` it, then
  ``os.replace`` onto the destination.  The rename is atomic on POSIX;
  the fsync closes the window where the rename survives a crash but the
  data does not.
* :func:`append_line` -- append one whole line via a single ``write``
  on an ``O_APPEND`` descriptor under an exclusive ``flock``; used by
  the obs ledger and the batch resume journal so concurrent appenders
  interleave whole records, never fragments.

Torn-write fault injection (``REPRO_FAULT=<site>:torn``) is honoured by
the write helpers when the caller passes its fault site: the helper
deliberately publishes a *truncated* document through the same rename
path, which is exactly what readers must survive.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = [
    "append_line",
    "atomic_write_bytes",
    "atomic_write_json",
    "fsync_directory",
]


def fsync_directory(path: str) -> None:
    """Best-effort fsync of a directory, making a rename durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _maybe_tear(data: bytes, fault_site: Optional[str]) -> bytes:
    """Truncate ``data`` when a ``<fault_site>:torn`` fault is armed."""
    if fault_site is None:
        return data
    from repro.resilience.faults import consume_torn_fault

    if consume_torn_fault(fault_site):
        return data[: max(1, len(data) // 2)]
    return data


def atomic_write_bytes(
    path: str,
    data: bytes,
    *,
    fsync: bool = True,
    fault_site: Optional[str] = None,
) -> None:
    """Atomically publish ``data`` at ``path`` (temp + fsync + rename).

    Concurrent writers racing on the same path are harmless when they
    write identical content (content-addressed stores) and last-wins
    otherwise; readers never observe a partial file.
    """
    data = _maybe_tear(data, fault_site)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        try:
            os.write(fd, data)
            if fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(directory)


def atomic_write_json(
    path: str,
    document: Dict,
    *,
    indent: Optional[int] = None,
    fsync: bool = True,
    fault_site: Optional[str] = None,
) -> None:
    """Atomically publish ``document`` as sorted-key JSON at ``path``."""
    text = json.dumps(document, indent=indent, sort_keys=True)
    if indent is not None:
        text += "\n"
    atomic_write_bytes(
        path, text.encode("utf-8"), fsync=fsync, fault_site=fault_site
    )


def append_line(path: str, line: str) -> None:
    """Append one whole line (newline added) under an exclusive flock.

    The single ``write`` on an ``O_APPEND`` descriptor means concurrent
    appenders -- batch workers, CI shards -- interleave whole lines and
    never corrupt each other, even without the lock; the flock protects
    platforms where large appends may be split.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    payload = (line.rstrip("\n") + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        os.write(fd, payload)
    finally:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)
