"""Cross-cutting utilities shared by every subsystem."""

from repro.util.atomicio import append_line, atomic_write_bytes, atomic_write_json

__all__ = ["append_line", "atomic_write_bytes", "atomic_write_json"]
