"""repro -- a cost-driven compilation framework for speculative
parallelization of sequential programs.

Reproduction of Du et al., PLDI 2004.  See DESIGN.md for the system
inventory and EXPERIMENTS.md for the evaluation results.
"""

__version__ = "1.0.0"
