"""Durable checkpoints of compile-phase outputs for the ladder.

The partition search is the one compilation phase whose cost is
unbounded in the worst case, and the one the resilience ladder retries
on ever-cheaper rungs.  :class:`PhaseCheckpointStore` makes its output
durable: a compile that crashed (or was SIGKILLed) mid-run re-runs, and
every loop whose search already completed restores its
:class:`~repro.core.partition.PartitionResult` instead of searching
again -- so a ``REPRO_FAULT`` hang or crash costs one phase, not the
whole compile.

A :class:`~repro.core.partition.PartitionResult` holds live
:class:`~repro.core.violation.ViolationCandidate` and IR instruction
objects, which cannot be serialized directly.  Two facts make a compact
durable form possible:

* ``find_violation_candidates(graph)`` is cheap and deterministic --
  re-running it on the freshly rebuilt dependence graph reproduces the
  exact candidate list, so the checkpoint only needs to *name* the
  pre-fork members, not embed them;
* instructions are named by their stable ``block<US>position``
  coordinate within the (post-SSA) function, exactly like
  :class:`repro.checkpoint.state.InstrIndex` does module-wide.

The key is a SHA-256 over the phase schema, the rung config
fingerprint, the loop header, and the canonical text of the post-SSA
function -- so an SVP rewrite (or any other change to the function)
cleanly misses instead of restoring a stale partition.  Unloadable or
mismatched documents degrade to a miss (counted, removed best-effort);
the search then simply runs.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Tuple

from repro.checkpoint.store import CheckpointStats, default_checkpoint_dir
from repro.ir.printer import format_function
from repro.resilience.faults import maybe_inject
from repro.util.atomicio import atomic_write_json

__all__ = ["PHASE_SCHEMA", "PhaseCheckpointStore"]

PHASE_FORMAT_VERSION = 1
PHASE_SCHEMA = f"repro-phase-checkpoint/{PHASE_FORMAT_VERSION}"

_SEP = "\x1f"


def _function_instr_index(func) -> Tuple[Dict[int, str], Dict[str, object]]:
    """``id(instr) -> key`` and ``key -> instr`` over one function,
    with keys the stable ``block<US>position`` coordinates."""
    key_by_id: Dict[int, str] = {}
    instr_by_key: Dict[str, object] = {}
    for block in func.blocks:
        for position, instr in enumerate(block.instrs):
            key = _SEP.join((block.label, str(position)))
            key_by_id[id(instr)] = key
            instr_by_key[key] = instr
    return key_by_id, instr_by_key


class PhaseCheckpointStore:
    """Content-addressed store of completed search-phase outputs."""

    def __init__(self, directory: Optional[str] = None, telemetry=None):
        self.directory = directory or os.path.join(
            default_checkpoint_dir(), "phases"
        )
        self.stats = CheckpointStats()
        self.telemetry = telemetry

    # -- keys ----------------------------------------------------------

    @staticmethod
    def search_key(func, loop_header: str, config) -> str:
        """Identity of one loop's partition search: rung config x loop
        x canonical post-SSA function text."""
        return hashlib.sha256(
            _SEP.join(
                (
                    PHASE_SCHEMA,
                    config.fingerprint(),
                    loop_header,
                    format_function(func),
                )
            ).encode("utf-8")
        ).hexdigest()

    def _path_for(self, key: str) -> str:
        return os.path.join(
            self.directory, f"v{PHASE_FORMAT_VERSION}", key[:2], f"{key}.json"
        )

    def _count(self, name: str, value: int = 1) -> None:
        if self.telemetry is not None and getattr(
            self.telemetry, "enabled", False
        ):
            self.telemetry.count(name, value)

    # -- search phase --------------------------------------------------

    def save_search(self, func, loop_header: str, config, partition) -> None:
        """Durably record a completed partition search.

        Failures (injected ``checkpoint.save`` faults, IO errors,
        instructions the coordinate index cannot name) suppress exactly
        this checkpoint -- the next compile just searches again."""
        key = self.search_key(func, loop_header, config)
        try:
            maybe_inject("checkpoint.save")
            key_by_id, _ = _function_instr_index(func)
            state = {
                "n_candidates": len(partition.candidates),
                "prefork_vc_keys": [
                    key_by_id[id(vc.instr)] for vc in partition.prefork_vcs
                ],
                "prefork_stmt_keys": sorted(
                    key_by_id[id(instr)] for instr in partition.prefork_stmts
                ),
                "vc_breakdown": [
                    [key_by_id[id(vc.instr)], bool(in_prefork), marginal]
                    for vc, in_prefork, marginal in partition.vc_breakdown
                ],
                "scalars": {
                    "cost": partition.cost,
                    "prefork_size": partition.prefork_size,
                    "body_size": partition.body_size,
                    "search_nodes": partition.search_nodes,
                    "skipped_too_many_vcs": partition.skipped_too_many_vcs,
                    "evaluations": partition.evaluations,
                    "cache_hits": partition.cache_hits,
                    "cost_node_visits": partition.cost_node_visits,
                    "pruned_size": partition.pruned_size,
                    "pruned_bound": partition.pruned_bound,
                    "budget_exhausted": partition.budget_exhausted,
                    "deadline_exhausted": partition.deadline_exhausted,
                },
            }
            document = {
                "schema": PHASE_SCHEMA,
                "format": PHASE_FORMAT_VERSION,
                "key": key,
                "phase": "search",
                "state": state,
            }
            atomic_write_json(
                self._path_for(key), document, fault_site="checkpoint.save"
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:  # noqa: BLE001 - checkpointing must not fail a compile
            self.stats.save_failures += 1
            self._count("checkpoint.save_failures")
            return
        self.stats.saves += 1
        self._count("checkpoint.saves")

    def load_search(self, func, loop_header: str, config, graph):
        """Rebuild the stored :class:`PartitionResult` for this exact
        (function, loop, rung config), or None.

        Re-runs the cheap, deterministic violation-candidate discovery
        on ``graph`` and grafts the stored pre-fork assignment onto the
        rediscovered objects; only the expensive branch-and-bound is
        skipped.  Any mismatch -- corrupt file, wrong schema, a
        candidate count that differs from rediscovery -- is a miss."""
        from repro.core.partition import PartitionResult
        from repro.core.violation import find_violation_candidates

        key = self.search_key(func, loop_header, config)
        path = self._path_for(key)
        try:
            maybe_inject("checkpoint.restore")
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:  # noqa: BLE001 - injected restore fault => miss
            self.stats.misses += 1
            self._count("checkpoint.misses")
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            self._count("checkpoint.misses")
            return None
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:  # noqa: BLE001 - unreadable => corrupt miss
            return self._corrupt_miss(path)
        try:
            if (
                not isinstance(document, dict)
                or document.get("schema") != PHASE_SCHEMA
                or document.get("format") != PHASE_FORMAT_VERSION
                or document.get("key") != key
                or document.get("phase") != "search"
            ):
                raise ValueError("malformed phase checkpoint")
            state = document["state"]
            candidates = find_violation_candidates(graph)
            if len(candidates) != int(state["n_candidates"]):
                raise ValueError("candidate count mismatch")
            key_by_id, instr_by_key = _function_instr_index(func)
            vc_by_key = {key_by_id[id(vc.instr)]: vc for vc in candidates}
            prefork_vcs = [vc_by_key[k] for k in state["prefork_vc_keys"]]
            prefork_stmts = {
                instr_by_key[k] for k in state["prefork_stmt_keys"]
            }
            # Scalars are passed through untouched: JSON round-trips
            # int vs float exactly, and manifests must stay
            # byte-identical whether the search ran or restored.
            scalars = state["scalars"]
            partition = PartitionResult(
                graph.loop,
                candidates,
                prefork_vcs,
                prefork_stmts,
                cost=scalars["cost"],
                prefork_size=scalars["prefork_size"],
                body_size=scalars["body_size"],
                search_nodes=scalars["search_nodes"],
                skipped_too_many_vcs=scalars["skipped_too_many_vcs"],
                evaluations=scalars["evaluations"],
                cache_hits=scalars["cache_hits"],
                cost_node_visits=scalars["cost_node_visits"],
                pruned_size=scalars["pruned_size"],
                pruned_bound=scalars["pruned_bound"],
                budget_exhausted=scalars["budget_exhausted"],
                deadline_exhausted=scalars["deadline_exhausted"],
            )
            partition.vc_breakdown = [
                (vc_by_key[coord], in_prefork, marginal)
                for coord, in_prefork, marginal in state["vc_breakdown"]
            ]
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:  # noqa: BLE001 - stale/mismatched => corrupt miss
            return self._corrupt_miss(path)
        self.stats.restores += 1
        self._count("checkpoint.restores")
        return partition

    def _corrupt_miss(self, path: str):
        self.stats.misses += 1
        self.stats.corrupt += 1
        self._count("checkpoint.misses")
        self._count("checkpoint.corrupt")
        try:
            os.remove(path)
        except OSError:
            pass
        return None

    def __repr__(self) -> str:
        return f"PhaseCheckpointStore({self.directory!r}, {self.stats!r})"
