"""Snapshot/restore of live simulation state.

A checkpoint is taken at an **entry-frame block boundary**: the single
family of execution points where the reference interpreter's whole
state is plain data -- the entry frame's environment, the pending block
label, flat memory, the fuel odometer -- and every attached tracer is
between instructions (no unresolved branch, no call aggregation in
flight).  :attr:`repro.profiling.interp.Machine.checkpoint_hook` fires
exactly there.

Cross-process identity of instructions is the one non-trivial problem:
the branch predictor, the timing memoization and every
:class:`~repro.machine.spt_sim.OpRecord` key state by ``id(instr)``,
which is meaningless outside the producing process.  :class:`InstrIndex`
gives every instruction the stable coordinate ``(function, block
label, position in block)``, derived deterministically from the module
-- two processes that loaded/compiled the same module agree on every
key, which is what makes restore-into-a-fresh-process exact.

Everything *derived* (timing tick memos, loop-nest caches, block fuel
precharges) is deliberately not captured: it is recomputed on demand
and cannot affect results, only wall-clock.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = [
    "CheckpointError",
    "InstrIndex",
    "restore_simulation",
    "snapshot_simulation",
]

_SEP = "\x1f"


class CheckpointError(RuntimeError):
    """A snapshot cannot be taken or restored (caller bug or a
    checkpoint that does not match the module it is applied to)."""


class InstrIndex:
    """Stable, process-independent instruction identity for a module.

    Keys are ``function<US>block<US>index`` strings; the index holds a
    reference to every instruction, pinning ids against recycling for
    the lifetime of the index.
    """

    def __init__(self, module):
        self._key_by_id: Dict[int, str] = {}
        self._instr_by_key: Dict[str, object] = {}
        for func in module.functions.values():
            for block in func.blocks:
                for position, instr in enumerate(block.instrs):
                    key = _SEP.join((func.name, block.label, str(position)))
                    self._key_by_id[id(instr)] = key
                    self._instr_by_key[key] = instr

    def key_of(self, instr_id: int) -> str:
        """The stable key of a live ``id(instr)``."""
        try:
            return self._key_by_id[instr_id]
        except KeyError:
            raise CheckpointError(
                "instruction not in module (stale id in snapshot source)"
            ) from None

    def instr_of(self, key: str):
        """The live instruction at a stable key."""
        try:
            return self._instr_by_key[key]
        except KeyError:
            raise CheckpointError(
                f"snapshot references unknown instruction {key!r} "
                "(module mismatch)"
            ) from None

    def id_of(self, key: str) -> int:
        return id(self.instr_of(key))

    def __len__(self) -> int:
        return len(self._instr_by_key)


def snapshot_simulation(machine, frame, tracer, collectors, index) -> Dict:
    """Capture one simulation (machine + timing tracer + SPT
    collectors) as a JSON-serializable document.

    Must be called from the machine's checkpoint hook (or with the
    machine otherwise parked at an entry-frame block boundary)."""
    key_of = index.key_of
    return {
        "interp": machine.snapshot_state(frame),
        "timing": tracer.snapshot_state(key_of),
        "collectors": [
            collector.snapshot_state(key_of) for collector in collectors
        ],
    }


def restore_simulation(machine, state, tracer, collectors, index):
    """Load a :func:`snapshot_simulation` document into freshly built
    components; returns the entry frame to pass to
    :meth:`~repro.profiling.interp.Machine.resume_frame`.

    The caller guarantees the components were built the same way as at
    snapshot time (same module, same collector set in the same order)
    -- the checkpoint store's content-addressed key makes that a
    structural property, and the collector count is still re-checked
    here because a mismatch would corrupt silently."""
    collector_states = state["collectors"]
    if len(collector_states) != len(collectors):
        raise CheckpointError(
            f"snapshot has {len(collector_states)} collectors, "
            f"simulation has {len(collectors)}"
        )
    frame = machine.restore_state(state["interp"])
    tracer.restore_state(state["timing"], index.id_of)
    for collector, collector_state in zip(collectors, collector_states):
        collector.restore_state(collector_state, index.instr_of, index.id_of)
    return frame
