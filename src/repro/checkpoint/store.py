"""The on-disk snapshot store (schema ``repro-checkpoint/1``).

Layout mirrors the batch result cache::

    <dir>/v1/<k[:2]>/<k>/<executed:020>.json

where ``k`` is a SHA-256 digest over the checkpoint format version, the
:meth:`~repro.core.config.SptConfig.fingerprint`, the workload token,
and the canonical textual IR of the simulated module -- the same
content-addressing discipline as :mod:`repro.batch.cache`, so a
snapshot can never be restored into a different program, configuration
or workload.  Within one run key, snapshots are ordered by the fuel
odometer (``executed``), which doubles as the instruction-index part of
the key.

Writes go through :func:`repro.util.atomicio.atomic_write_json` with
``fsync`` (a checkpoint that does not survive the crash it exists for
is worthless).  Loads are corruption-tolerant: a torn, truncated,
version-mismatched or otherwise unreadable snapshot is counted in
``checkpoint.corrupt``, removed best-effort, and skipped -- the caller
falls back to the next older snapshot or a cold start, never crashes.

Both IO paths are chaos injection sites (``checkpoint.save`` /
``checkpoint.restore`` in the ``REPRO_FAULT`` grammar); ``torn`` mode
additionally makes :func:`atomic_write_json` publish a deliberately
truncated document through the normal rename path.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional, Tuple

from repro.batch.cache import default_cache_dir
from repro.resilience.faults import maybe_inject
from repro.util.atomicio import atomic_write_json

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CHECKPOINT_SCHEMA",
    "CheckpointStats",
    "CheckpointStore",
    "default_checkpoint_dir",
]

CHECKPOINT_FORMAT_VERSION = 1
CHECKPOINT_SCHEMA = f"repro-checkpoint/{CHECKPOINT_FORMAT_VERSION}"

#: Environment override for the snapshot root.
CHECKPOINT_DIR_ENV_VAR = "REPRO_CHECKPOINT_DIR"


def default_checkpoint_dir() -> str:
    """``$REPRO_CHECKPOINT_DIR``, else ``<cache_dir>/checkpoints``."""
    env = os.environ.get(CHECKPOINT_DIR_ENV_VAR)
    if env:
        return env
    return os.path.join(default_cache_dir(), "checkpoints")


class CheckpointStats:
    """Save/restore/corruption counters for one store handle."""

    __slots__ = ("saves", "restores", "misses", "corrupt", "save_failures")

    def __init__(self):
        self.saves = 0
        self.restores = 0
        self.misses = 0
        #: Snapshots that existed but failed to load (subset of misses).
        self.corrupt = 0
        #: Save attempts a fault or IO error suppressed.
        self.save_failures = 0

    def to_dict(self) -> Dict:
        return {
            "saves": self.saves,
            "restores": self.restores,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "save_failures": self.save_failures,
        }

    def as_counters(self) -> Dict[str, int]:
        """Telemetry counter names -> values (docs/observability.md)."""
        return {
            "checkpoint.saves": self.saves,
            "checkpoint.restores": self.restores,
            "checkpoint.misses": self.misses,
            "checkpoint.corrupt": self.corrupt,
            "checkpoint.save_failures": self.save_failures,
        }

    def __repr__(self) -> str:
        return (
            f"CheckpointStats(saves={self.saves}, restores={self.restores}, "
            f"corrupt={self.corrupt})"
        )


class CheckpointStore:
    """A content-addressed directory of simulation snapshots."""

    def __init__(self, directory: Optional[str] = None, telemetry=None):
        self.directory = directory or default_checkpoint_dir()
        self.stats = CheckpointStats()
        self.telemetry = telemetry

    # -- keys ----------------------------------------------------------

    @property
    def version_dir(self) -> str:
        return os.path.join(self.directory, f"v{CHECKPOINT_FORMAT_VERSION}")

    @staticmethod
    def run_key(
        canonical_ir: str, config_fingerprint: str, workload_token: str
    ) -> str:
        """The content-addressed identity of one simulated run."""
        return hashlib.sha256(
            "\x1f".join(
                (
                    CHECKPOINT_SCHEMA,
                    config_fingerprint,
                    workload_token,
                    canonical_ir,
                )
            ).encode("utf-8")
        ).hexdigest()

    def run_dir(self, key: str) -> str:
        return os.path.join(self.version_dir, key[:2], key)

    def _path_for(self, key: str, executed: int) -> str:
        return os.path.join(self.run_dir(key), f"{executed:020d}.json")

    # -- IO ------------------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        if self.telemetry is not None and getattr(
            self.telemetry, "enabled", False
        ):
            self.telemetry.count(name, value)

    def save(self, key: str, executed: int, state: Dict) -> Optional[str]:
        """Durably publish one snapshot; returns its path (None when
        the save was suppressed).

        An injected ``checkpoint.save`` fault or an IO error suppresses
        exactly this snapshot (counted in ``save_failures``): losing a
        checkpoint degrades resume granularity, never correctness.
        """
        document = {
            "schema": CHECKPOINT_SCHEMA,
            "format": CHECKPOINT_FORMAT_VERSION,
            "key": key,
            "executed": int(executed),
            "state": state,
        }
        path = self._path_for(key, executed)
        try:
            maybe_inject("checkpoint.save")
            atomic_write_json(path, document, fault_site="checkpoint.save")
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:  # noqa: BLE001 - checkpointing must not kill the run
            self.stats.save_failures += 1
            self._count("checkpoint.save_failures")
            return None
        self.stats.saves += 1
        self._count("checkpoint.saves")
        return path

    def available(self, key: str) -> List[int]:
        """Executed-indices of stored snapshots for ``key``, ascending."""
        directory = self.run_dir(key)
        try:
            names = os.listdir(directory)
        except OSError:
            return []
        indices = []
        for name in names:
            if not name.endswith(".json") or name.startswith(".tmp-"):
                continue
            try:
                indices.append(int(name[: -len(".json")]))
            except ValueError:
                continue
        return sorted(indices)

    def load(self, key: str, executed: int) -> Optional[Dict]:
        """The state snapshotted at ``executed``, or None.

        Every failure mode -- missing file, torn write, foreign or
        version-mismatched document, key mismatch -- degrades to a miss
        (corrupt files are removed so the slot is clean)."""
        path = self._path_for(key, executed)
        try:
            maybe_inject("checkpoint.restore")
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:  # noqa: BLE001 - injected restore fault
            # Chaos: a restore fault degrades to a miss (cold start),
            # but never deletes the -- perfectly healthy -- snapshot.
            self.stats.misses += 1
            self._count("checkpoint.misses")
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            if (
                not isinstance(document, dict)
                or document.get("schema") != CHECKPOINT_SCHEMA
                or document.get("format") != CHECKPOINT_FORMAT_VERSION
                or document.get("key") != key
                or document.get("executed") != executed
                or not isinstance(document.get("state"), dict)
            ):
                raise ValueError("malformed checkpoint")
        except FileNotFoundError:
            self.stats.misses += 1
            self._count("checkpoint.misses")
            return None
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:  # noqa: BLE001 - corrupt snapshot => cold start
            self.stats.misses += 1
            self.stats.corrupt += 1
            self._count("checkpoint.misses")
            self._count("checkpoint.corrupt")
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.stats.restores += 1
        self._count("checkpoint.restores")
        return document["state"]

    def load_latest(
        self, key: str, at_or_before: Optional[int] = None
    ) -> Optional[Tuple[int, Dict]]:
        """The newest loadable snapshot (optionally at or before an
        executed index); walks backwards past corrupt entries."""
        for executed in reversed(self.available(key)):
            if at_or_before is not None and executed > at_or_before:
                continue
            state = self.load(key, executed)
            if state is not None:
                return executed, state
        return None

    def __repr__(self) -> str:
        return f"CheckpointStore({self.directory!r}, {self.stats!r})"
