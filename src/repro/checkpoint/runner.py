"""The checkpointing simulation driver.

``run_checkpointed_simulation`` is :func:`repro.perf.runner.
simulate_program` with two extra moves: it installs a checkpoint hook
that durably snapshots the whole simulation every N executed
instructions (at the next entry-frame block boundary), and it can start
from the newest stored snapshot instead of from zero.  The resumed run
is bitwise-identical to the uninterrupted one -- same result, same
cycle counts, same per-loop statistics -- which the ``checkpoint``
testkit oracle enforces at every boundary.

Anything that goes wrong around checkpointing (unloadable snapshot,
failed save, module mismatch) degrades to the uncheckpointed behavior:
a cold start and/or a skipped save, counted on the store's stats, never
an error surfaced to the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.batch.cache import ResultCache
from repro.checkpoint.state import (
    InstrIndex,
    restore_simulation,
    snapshot_simulation,
)
from repro.checkpoint.store import CheckpointStore
from repro.ir.printer import format_module
from repro.perf.runner import SimOutcome, build_simulation, finalize_simulation

__all__ = [
    "CheckpointReport",
    "run_checkpointed_simulation",
    "simulation_key",
]


def simulation_key(
    module, config, *, entry: str, args: Sequence[int], fuel: int
) -> str:
    """The content-addressed run key for simulating ``module`` (already
    transformed) under ``config`` with the given workload.

    Same discipline as the batch result cache: canonical textual IR x
    config fingerprint x workload token, so a snapshot can only ever be
    applied to the exact run that produced it."""
    return CheckpointStore.run_key(
        format_module(module),
        config.fingerprint(),
        ResultCache.workload_token(entry, args, fuel),
    )


@dataclass
class CheckpointReport:
    """What checkpointing did around one simulation."""

    key: str
    directory: str
    checkpoint_every: int
    #: Executed-index the run resumed from (None = cold start).
    resumed_from: Optional[int] = None
    #: Executed-indices of snapshots published during this run.
    saved_at: List[int] = field(default_factory=list)
    stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "directory": self.directory,
            "checkpoint_every": self.checkpoint_every,
            "resumed_from": self.resumed_from,
            "saved_at": list(self.saved_at),
            "stats": dict(self.stats),
        }


def run_checkpointed_simulation(
    module,
    compile_result,
    config,
    *,
    entry: str = "main",
    args: Sequence[int] = (),
    fuel: int = 50_000_000,
    checkpoint_every: int = 0,
    resume_from: Union[None, str, int] = None,
    store: Optional[CheckpointStore] = None,
    checkpoint_dir: Optional[str] = None,
    telemetry=None,
) -> Tuple[SimOutcome, CheckpointReport]:
    """Simulate ``compile_result`` with periodic snapshots and optional
    resume.

    ``checkpoint_every`` is the snapshot cadence in executed
    instructions (0 disables saving); ``resume_from`` is ``None`` (cold
    start), ``"latest"``, or an executed-index upper bound.  Returns
    the :class:`~repro.perf.runner.SimOutcome` -- identical to what
    :func:`~repro.perf.runner.simulate_program` would produce -- plus a
    :class:`CheckpointReport`.
    """
    if store is None:
        store = CheckpointStore(checkpoint_dir, telemetry=telemetry)
    key = simulation_key(module, config, entry=entry, args=args, fuel=fuel)
    index = InstrIndex(module)

    machine, tracer, collectors = build_simulation(
        module, compile_result, fuel=fuel, telemetry=telemetry
    )

    frame = None
    resumed_from = None
    if resume_from is not None:
        at_or_before = None if resume_from == "latest" else int(resume_from)
        found = store.load_latest(key, at_or_before=at_or_before)
        if found is not None:
            executed, state = found
            try:
                frame = restore_simulation(
                    machine, state, tracer, collectors, index
                )
                resumed_from = executed
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:  # noqa: BLE001 - unusable snapshot => cold start
                # A snapshot that passed the store's schema checks but
                # does not apply (stale format internals, collector
                # mismatch) may have half-mutated the components; throw
                # them away and start cold on a fresh build.
                store.stats.corrupt += 1
                machine, tracer, collectors = build_simulation(
                    module, compile_result, fuel=fuel, telemetry=telemetry
                )
                frame = None

    report = CheckpointReport(
        key=key,
        directory=store.directory,
        checkpoint_every=checkpoint_every,
        resumed_from=resumed_from,
    )

    if checkpoint_every > 0:
        last_saved = machine.executed

        def hook(m, entry_frame):
            nonlocal last_saved
            if m.executed - last_saved < checkpoint_every:
                return
            # Advance the cadence marker even when the save is
            # suppressed: a lost checkpoint costs resume granularity,
            # and retry storms under a persistent fault cost far more.
            last_saved = m.executed
            try:
                state = snapshot_simulation(
                    m, entry_frame, tracer, collectors, index
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception:  # noqa: BLE001 - snapshot must not kill the run
                store.stats.save_failures += 1
                return
            if store.save(key, m.executed, state) is not None:
                report.saved_at.append(m.executed)

        machine.checkpoint_hook = hook

    if frame is not None:
        result_value = machine.resume_frame(frame)
    else:
        result_value = machine.run(entry, list(args))

    outcome = finalize_simulation(
        result_value, tracer, collectors, telemetry=telemetry
    )
    report.stats = store.stats.to_dict()
    return outcome, report
