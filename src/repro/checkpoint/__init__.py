"""Deterministic checkpoint / record-replay of simulations.

Layers (bottom up):

* :mod:`repro.checkpoint.state` -- the :class:`InstrIndex` stable
  instruction identity and the snapshot/restore orchestration over one
  simulation's interpreter + timing + SPT-collector state;
* :mod:`repro.checkpoint.store` -- the versioned, content-addressed
  on-disk snapshot store (``repro-checkpoint/1``), written with atomic
  rename + fsync, corruption-tolerant on load;
* :mod:`repro.checkpoint.runner` -- the checkpointing simulation
  driver behind ``repro simulate --checkpoint-every/--resume-from``;
* :mod:`repro.checkpoint.phases` -- the compile-side phase-output
  checkpoints the resilience ladder resumes from.

See docs/checkpointing.md for the format, keys, and resume semantics.
"""

from repro.checkpoint.state import (
    CheckpointError,
    InstrIndex,
    restore_simulation,
    snapshot_simulation,
)
from repro.checkpoint.store import (
    CHECKPOINT_SCHEMA,
    CheckpointStats,
    CheckpointStore,
    default_checkpoint_dir,
)
from repro.checkpoint.runner import (
    CheckpointReport,
    run_checkpointed_simulation,
    simulation_key,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "CheckpointReport",
    "CheckpointStats",
    "CheckpointStore",
    "InstrIndex",
    "default_checkpoint_dir",
    "restore_simulation",
    "run_checkpointed_simulation",
    "simulation_key",
    "snapshot_simulation",
]
