"""Machine model for intra-iteration region speculation (§9 future
work; see :mod:`repro.core.regions` for the compiler side).

Per iteration the main core runs region A while the speculative core
runs region B from the iteration-start context:

    t_iter = fork + max(t_A, t_B) + commit + t_reexec(B | A's writes)

Violation detection and re-execution propagation reuse the SPT loop
machinery (:func:`repro.machine.spt_sim._replay_speculative`), with
"post-fork writes" replaced by region A's writes of the same iteration.
"""

from __future__ import annotations

from typing import Set

from repro.ir.block import Block
from repro.ir.function import Function
from repro.machine.spt_sim import (
    COMMIT_TICKS,
    FORK_TICKS,
    IterationTrace,
    SptTraceCollector,
    _replay_speculative,
)
from repro.machine.timing import TICKS_PER_CYCLE, TimingModel


class RegionTraceCollector(SptTraceCollector):
    """Tags each dynamic op with its region: ``pre_fork`` means region A
    (run by the main core), cleared for region-B blocks."""

    def __init__(
        self,
        func_name: str,
        header: str,
        body_labels: Set[str],
        b_labels: Set[str],
        model: TimingModel,
    ):
        super().__init__(func_name, header, body_labels, loop_id=-1, model=model)
        self.b_labels = set(b_labels)

    def on_block(self, func: Function, block: Block, prev_label) -> None:
        super().on_block(func, block, prev_label)
        if not self._frame_is_target or not self._frame_is_target[-1]:
            return
        if func.name != self.func_name or self._current is None:
            return
        # Region assignment follows the block, not a fork marker.
        self._in_pre_fork = block.label not in self.b_labels

    def on_instr(self, func: Function, block: Block, instr) -> None:
        super().on_instr(func, block, instr)
        if (
            self._pending_op is not None
            and self._pending_op.instr is instr
            and func.name == self.func_name
            and block.label == self.header
        ):
            # Header ops run before the fork: their defs are part of the
            # context region B starts from, never stale.
            self._pending_op.header_op = True


class RegionLoopStats:
    """Simulated statistics of one region-speculated loop."""

    def __init__(self, func_name: str, header: str, split_label: str):
        self.func_name = func_name
        self.header = header
        self.split_label = split_label
        self.iterations = 0
        self.seq_ticks = 0
        self.region_ticks = 0
        self.reexec_ticks = 0
        self.reexec_ops = 0
        self.b_ops = 0
        self.a_ticks = 0
        self.b_ticks = 0

    @property
    def seq_cycles(self) -> float:
        return self.seq_ticks / TICKS_PER_CYCLE

    @property
    def region_cycles(self) -> float:
        return self.region_ticks / TICKS_PER_CYCLE

    @property
    def reexec_cycles(self) -> float:
        return self.reexec_ticks / TICKS_PER_CYCLE

    @property
    def a_cycles(self) -> float:
        return self.a_ticks / TICKS_PER_CYCLE

    @property
    def b_cycles(self) -> float:
        return self.b_ticks / TICKS_PER_CYCLE

    @property
    def loop_speedup(self) -> float:
        return self.seq_ticks / self.region_ticks if self.region_ticks else 1.0

    @property
    def misspeculation_ratio(self) -> float:
        return self.reexec_ops / self.b_ops if self.b_ops else 0.0

    @property
    def balance(self) -> float:
        total = self.a_ticks + self.b_ticks
        if total <= 0:
            return 0.0
        return 1.0 - abs(self.a_ticks - self.b_ticks) / total

    def __repr__(self) -> str:
        return (
            f"RegionLoopStats({self.func_name}:{self.header}@"
            f"{self.split_label}, speedup={self.loop_speedup:.2f})"
        )


def _region_writes(trace: IterationTrace):
    """Register/memory locations region A redefines, with (value before,
    value after) -- what region B's speculation is stale against."""
    reg = {}
    mem = {}
    for op in trace.ops:
        if not op.pre_fork:
            continue  # region B
        if op.header_op:
            continue  # resolved before the fork
        if op.def_name is not None:
            if op.def_name in reg:
                reg[op.def_name] = (reg[op.def_name][0], op.def_new)
            else:
                reg[op.def_name] = (op.def_old, op.def_new)
        if op.store_addr is not None:
            if op.store_addr in mem:
                mem[op.store_addr] = (mem[op.store_addr][0], op.store_new)
            else:
                mem[op.store_addr] = (op.store_old, op.store_new)
        if op.mem_writes:
            for addr, (old, new) in op.mem_writes.items():
                if addr in mem:
                    mem[addr] = (mem[addr][0], new)
                else:
                    mem[addr] = (old, new)
    return reg, mem


def simulate_region_loop(
    collector: RegionTraceCollector, split_label: str = "?"
) -> RegionLoopStats:
    """Recombine the traces into per-iteration A ∥ B rounds."""
    stats = RegionLoopStats(collector.func_name, collector.header, split_label)
    for iterations in collector.invocations:
        for trace in iterations:
            stats.iterations += 1
            t_a = trace.pre_ticks()
            t_b = trace.post_ticks()
            stats.seq_ticks += t_a + t_b
            stats.a_ticks += t_a
            stats.b_ticks += t_b

            reg, mem = _region_writes(trace)
            b_trace = IterationTrace()
            b_trace.ops = [op for op in trace.ops if not op.pre_fork]
            reexec_ticks, reexec_ops = _replay_speculative(b_trace, reg, mem)

            stats.region_ticks += (
                FORK_TICKS + max(t_a, t_b) + COMMIT_TICKS + reexec_ticks
            )
            stats.reexec_ticks += reexec_ticks
            stats.reexec_ops += reexec_ops
            stats.b_ops += len(b_trace.ops)
    return stats
