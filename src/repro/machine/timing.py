"""In-order core timing model.

The paper's cores are in-order Itanium2-like (6-wide issue).  We do not
model issue ports; instead, simple operations cost fractional cycles
(0.5 = two ALU ops dual-issue on average), which reproduces the paper's
above-1 IPC range for compute-dense code, while loads, branches and
division carry their real penalties:

* loads pay the shared cache hierarchy's latency;
* conditional branches pay 5 cycles on a bimodal mispredict (§8);
* fork and commit pseudo-ops cost 6 and 5 cycles (§8) -- charged by the
  SPT simulator, not here.

Internally every latency is an integer number of *ticks*
(``TICKS_PER_CYCLE`` ticks per cycle).  Integer addition is associative,
so accumulating a block's or trace's cost as one precomputed sum is
bitwise-identical to charging each op individually -- the property the
vectorized timing engine (:mod:`repro.machine.vector_timing`) relies
on.  All public interfaces still speak float cycles; every tick constant
is an exact multiple of ``1 / TICKS_PER_CYCLE`` cycles, so the
float conversions are exact.

:class:`TimingTracer` attaches to the interpreter and accumulates
cycles, the retired-instruction count (phis and jumps are free, like
the paper's "IPC excluding nops"), and per-loop cycle attribution for
the coverage statistics of Figure 16.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.loops import LoopNest
from repro.ir.block import Block
from repro.ir.function import Function
from repro.ir.instr import (
    BinOp,
    Branch,
    Call,
    Copy,
    Instr,
    Jump,
    Load,
    LoadAddr,
    Phi,
    Return,
    SptFork,
    SptKill,
    Store,
    UnOp,
)
from repro.machine.branchpred import BranchPredictor
from repro.machine.cache import MemoryHierarchy
from repro.profiling.interp import Tracer

#: Fixed-point resolution of the timing model: 100 ticks per cycle lets
#: every latency constant below be an exact integer.
TICKS_PER_CYCLE = 100

#: Ticks per simple-op class.  Fractions of a cycle model the 6-wide
#: in-order issue of an Itanium2-like core: independent ALU ops overlap,
#: so the *average* retired cost of one simple op is well under a cycle.
ALU_TICKS = 35
MUL_TICKS = 120
DIV_TICKS = 800
COPY_TICKS = 20
LOAD_BASE_TICKS = 30
STORE_TICKS = 35
CALL_OVERHEAD_TICKS = 100
RETURN_TICKS = 35
BRANCH_BASE_TICKS = 35
MISPREDICT_TICKS = 500

#: The same constants in float cycles (exact conversions).
ALU_CYCLES = ALU_TICKS / TICKS_PER_CYCLE
MUL_CYCLES = MUL_TICKS / TICKS_PER_CYCLE
DIV_CYCLES = DIV_TICKS / TICKS_PER_CYCLE
COPY_CYCLES = COPY_TICKS / TICKS_PER_CYCLE
LOAD_BASE_CYCLES = LOAD_BASE_TICKS / TICKS_PER_CYCLE
STORE_CYCLES = STORE_TICKS / TICKS_PER_CYCLE
CALL_OVERHEAD_CYCLES = CALL_OVERHEAD_TICKS / TICKS_PER_CYCLE
RETURN_CYCLES = RETURN_TICKS / TICKS_PER_CYCLE
BRANCH_BASE_CYCLES = BRANCH_BASE_TICKS / TICKS_PER_CYCLE
MISPREDICT_PENALTY = MISPREDICT_TICKS / TICKS_PER_CYCLE


class TimingModel:
    """Stateless-per-op latency computation over shared cache/predictor
    state."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy = None,
        predictor: BranchPredictor = None,
    ):
        self.hierarchy = hierarchy or MemoryHierarchy()
        self.predictor = predictor or BranchPredictor()
        # id(instr) -> (instr, ticks).  Holding the instr reference pins
        # its id, so the cache can never alias a recycled object.
        self._tick_memo: Dict[int, Tuple[Instr, int]] = {}

    def base_ticks(self, instr: Instr) -> int:
        """Ticks excluding cache and branch-prediction effects."""
        entry = self._tick_memo.get(id(instr))
        if entry is not None:
            return entry[1]
        ticks = self._classify_ticks(instr)
        self._tick_memo[id(instr)] = (instr, ticks)
        return ticks

    @staticmethod
    def _classify_ticks(instr: Instr) -> int:
        if isinstance(instr, BinOp):
            if instr.op in ("div", "mod"):
                return DIV_TICKS
            if instr.op == "mul":
                return MUL_TICKS
            return ALU_TICKS
        if isinstance(instr, UnOp):
            return ALU_TICKS
        if isinstance(instr, (Copy, LoadAddr)):
            return COPY_TICKS
        if isinstance(instr, Load):
            return LOAD_BASE_TICKS
        if isinstance(instr, Store):
            return STORE_TICKS
        if isinstance(instr, Call):
            return CALL_OVERHEAD_TICKS
        if isinstance(instr, Return):
            return RETURN_TICKS
        if isinstance(instr, Branch):
            return BRANCH_BASE_TICKS
        if isinstance(instr, (Jump, Phi, SptFork, SptKill)):
            return 0
        return ALU_TICKS

    def base_latency(self, instr: Instr) -> float:
        """Latency in cycles excluding cache and branch effects."""
        return self.base_ticks(instr) / TICKS_PER_CYCLE

    def load_ticks(self, addr: int) -> int:
        """Extra ticks for a memory read of ``addr``."""
        return self.hierarchy.access_ticks(addr)

    def load_latency(self, addr: int) -> float:
        """Extra cycles for a memory read of ``addr``."""
        return self.hierarchy.access_ticks(addr) / TICKS_PER_CYCLE

    def store_fill(self, addr: int) -> None:
        """Write-allocate a stored line (no cycles charged: the store
        buffer hides the fill latency on an in-order core)."""
        self.hierarchy.fill_for_write(addr)

    def branch_ticks(self, branch_key: int, taken: bool) -> int:
        """Extra ticks for an executed conditional branch."""
        if self.predictor.predict_and_update(branch_key, taken):
            return MISPREDICT_TICKS
        return 0

    def branch_latency(self, branch_key: int, taken: bool) -> float:
        """Extra cycles for an executed conditional branch."""
        return self.branch_ticks(branch_key, taken) / TICKS_PER_CYCLE

    @staticmethod
    def counts_as_instruction(instr: Instr) -> bool:
        """Whether the op retires in the IPC denominator ("excluding
        nops"): phis, jumps and SPT markers do not."""
        return not isinstance(instr, (Phi, Jump, SptFork, SptKill))

    # -- checkpointing ------------------------------------------------

    def snapshot_state(self, key_of) -> Dict:
        """Plain-data snapshot of cache + predictor state.

        ``_tick_memo`` is a pure derived cache (recomputed from the
        instruction alone) and is deliberately not captured."""
        return {
            "hierarchy": self.hierarchy.snapshot_state(),
            "predictor": self.predictor.snapshot_state(key_of),
        }

    def restore_state(self, state: Dict, id_of) -> None:
        self.hierarchy.restore_state(state["hierarchy"])
        self.predictor.restore_state(state["predictor"], id_of)


class TimingTracer(Tracer):
    """Accumulates program cycles, instruction counts, and per-loop
    cycle attribution while the interpreter runs.

    All accounting is in integer ticks; the public ``cycles`` /
    ``loop_cycles`` views convert to float cycles (exactly).
    """

    def __init__(self, model: TimingModel = None):
        self.model = model or TimingModel()
        self._ticks = 0
        self.instructions = 0
        #: (func_name, loop_header) -> attributed ticks.
        self._loop_ticks: Dict[Tuple[str, str], int] = {}
        #: (func_name, loop_header) -> loop-entry count.
        self.loop_entries: Dict[Tuple[str, str], int] = {}
        self._nests: Dict[str, LoopNest] = {}
        #: Stack of (func_name, header) loop contexts (across calls).
        self._loop_stack: List[Tuple[str, str]] = []
        #: Per-frame loop-stack depth at entry, to unwind on return.
        self._frame_depths: List[int] = []
        self._current_branch: Optional[Tuple[int, str]] = None

    # -- helpers ----------------------------------------------------------

    def _nest_for(self, func: Function) -> LoopNest:
        nest = self._nests.get(func.name)
        if nest is None:
            nest = LoopNest.build(func)
            self._nests[func.name] = nest
        return nest

    def _charge(self, ticks: int) -> None:
        self._ticks += ticks
        for key in self._loop_stack:
            self._loop_ticks[key] = self._loop_ticks.get(key, 0) + ticks

    # -- tracer hooks --------------------------------------------------------

    def on_enter_function(self, func: Function, args) -> None:
        self._frame_depths.append(len(self._loop_stack))
        self._nest_for(func)

    def on_exit_function(self, func: Function, result) -> None:
        depth = self._frame_depths.pop()
        del self._loop_stack[depth:]

    def on_block(self, func: Function, block: Block, prev_label) -> None:
        nest = self._nest_for(func)
        frame_depth = self._frame_depths[-1] if self._frame_depths else 0
        # Pop loops (entered in this frame) that no longer contain us.
        while len(self._loop_stack) > frame_depth:
            fn, header = self._loop_stack[-1]
            if fn != func.name:
                break
            loop = next(
                l for l in nest.loops if l.header == header
            )
            if block.label in loop.body:
                break
            self._loop_stack.pop()
        # Push loops whose header we just entered from outside.
        for loop in nest.loops:
            if loop.header != block.label:
                continue
            key = (func.name, loop.header)
            if key in self._loop_stack[frame_depth:]:
                continue
            if prev_label is None or prev_label not in loop.body:
                self.loop_entries[key] = self.loop_entries.get(key, 0) + 1
            self._loop_stack.append(key)

    def on_instr(self, func: Function, block: Block, instr: Instr) -> None:
        self._charge(self.model.base_ticks(instr))
        if self.model.counts_as_instruction(instr):
            self.instructions += 1
        if isinstance(instr, Branch):
            self._current_branch = (id(instr), instr.iftrue)

    def on_load(self, instr: Instr, addr: int, value) -> None:
        self._charge(self.model.load_ticks(addr))

    def on_store(self, instr: Instr, addr: int, value, old_value) -> None:
        self.model.store_fill(addr)

    def on_edge(self, func: Function, src_label: str, dst_label: str) -> None:
        if self._current_branch is not None:
            branch_key, iftrue = self._current_branch
            self._current_branch = None
            taken = dst_label == iftrue
            self._charge(self.model.branch_ticks(branch_key, taken))

    # -- results ----------------------------------------------------------------

    @property
    def ticks(self) -> int:
        """Total accumulated ticks (exact integer)."""
        return self._ticks

    @property
    def cycles(self) -> float:
        return self._ticks / TICKS_PER_CYCLE

    @property
    def loop_cycles(self) -> Dict[Tuple[str, str], float]:
        """(func_name, loop_header) -> attributed cycles (fresh dict)."""
        return {
            key: ticks / TICKS_PER_CYCLE
            for key, ticks in self._loop_ticks.items()
        }

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self._ticks else 0.0

    def coverage(self, key: Tuple[str, str]) -> float:
        """Fraction of total cycles spent inside the given loop."""
        if self._ticks == 0:
            return 0.0
        return self._loop_ticks.get(key, 0) / self._ticks

    # -- checkpointing ------------------------------------------------

    def snapshot_state(self, key_of) -> Dict:
        """Plain-data snapshot, taken at an entry-frame block boundary.

        At such a boundary ``on_edge`` has already consumed any pending
        branch, so ``_current_branch`` must be None -- a non-None value
        means the caller snapshotted mid-instruction, which can never
        round-trip.  ``_nests`` is a derived cache and is skipped."""
        if self._current_branch is not None:
            raise ValueError(
                "TimingTracer snapshot outside a block boundary "
                "(unresolved branch)"
            )
        return {
            "ticks": self._ticks,
            "instructions": self.instructions,
            "loop_ticks": sorted(
                [fn, header, ticks]
                for (fn, header), ticks in self._loop_ticks.items()
            ),
            "loop_entries": sorted(
                [fn, header, count]
                for (fn, header), count in self.loop_entries.items()
            ),
            "loop_stack": [[fn, header] for fn, header in self._loop_stack],
            "frame_depths": list(self._frame_depths),
            "model": self.model.snapshot_state(key_of),
        }

    def restore_state(self, state: Dict, id_of) -> None:
        self._ticks = int(state["ticks"])
        self.instructions = int(state["instructions"])
        self._loop_ticks = {
            (fn, header): int(ticks)
            for fn, header, ticks in state["loop_ticks"]
        }
        self.loop_entries = {
            (fn, header): int(count)
            for fn, header, count in state["loop_entries"]
        }
        self._loop_stack = [(fn, header) for fn, header in state["loop_stack"]]
        self._frame_depths = [int(d) for d in state["frame_depths"]]
        self._current_branch = None
        self.model.restore_state(state["model"], id_of)
