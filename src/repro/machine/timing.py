"""In-order core timing model.

The paper's cores are in-order Itanium2-like (6-wide issue).  We do not
model issue ports; instead, simple operations cost fractional cycles
(0.5 = two ALU ops dual-issue on average), which reproduces the paper's
above-1 IPC range for compute-dense code, while loads, branches and
division carry their real penalties:

* loads pay the shared cache hierarchy's latency;
* conditional branches pay 5 cycles on a bimodal mispredict (§8);
* fork and commit pseudo-ops cost 6 and 5 cycles (§8) -- charged by the
  SPT simulator, not here.

:class:`TimingTracer` attaches to the interpreter and accumulates
cycles, the retired-instruction count (phis and jumps are free, like
the paper's "IPC excluding nops"), and per-loop cycle attribution for
the coverage statistics of Figure 16.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.loops import LoopNest
from repro.ir.block import Block
from repro.ir.function import Function
from repro.ir.instr import (
    BinOp,
    Branch,
    Call,
    Copy,
    Instr,
    Jump,
    Load,
    LoadAddr,
    Phi,
    Return,
    SptFork,
    SptKill,
    Store,
    UnOp,
)
from repro.machine.branchpred import BranchPredictor
from repro.machine.cache import MemoryHierarchy
from repro.profiling.interp import Tracer

#: Cycles per simple-op class.  Fractions model the 6-wide in-order
#: issue of an Itanium2-like core: independent ALU ops overlap, so the
#: *average* retired cost of one simple op is well under a cycle.
ALU_CYCLES = 0.35
MUL_CYCLES = 1.2
DIV_CYCLES = 8.0
COPY_CYCLES = 0.2
LOAD_BASE_CYCLES = 0.3
STORE_CYCLES = 0.35
CALL_OVERHEAD_CYCLES = 1.0
RETURN_CYCLES = 0.35
BRANCH_BASE_CYCLES = 0.35
MISPREDICT_PENALTY = 5.0


class TimingModel:
    """Stateless-per-op latency computation over shared cache/predictor
    state."""

    def __init__(
        self,
        hierarchy: MemoryHierarchy = None,
        predictor: BranchPredictor = None,
    ):
        self.hierarchy = hierarchy or MemoryHierarchy()
        self.predictor = predictor or BranchPredictor()

    def base_latency(self, instr: Instr) -> float:
        """Latency excluding cache and branch-prediction effects."""
        if isinstance(instr, BinOp):
            if instr.op in ("div", "mod"):
                return DIV_CYCLES
            if instr.op == "mul":
                return MUL_CYCLES
            return ALU_CYCLES
        if isinstance(instr, UnOp):
            return ALU_CYCLES
        if isinstance(instr, (Copy, LoadAddr)):
            return COPY_CYCLES
        if isinstance(instr, Load):
            return LOAD_BASE_CYCLES
        if isinstance(instr, Store):
            return STORE_CYCLES
        if isinstance(instr, Call):
            return CALL_OVERHEAD_CYCLES
        if isinstance(instr, Return):
            return RETURN_CYCLES
        if isinstance(instr, Branch):
            return BRANCH_BASE_CYCLES
        if isinstance(instr, (Jump, Phi, SptFork, SptKill)):
            return 0.0
        return ALU_CYCLES

    def load_latency(self, addr: int) -> float:
        """Extra cycles for a memory read of ``addr``."""
        return self.hierarchy.access(addr)

    def store_fill(self, addr: int) -> None:
        """Write-allocate a stored line (no cycles charged: the store
        buffer hides the fill latency on an in-order core)."""
        self.hierarchy.fill_for_write(addr)

    def branch_latency(self, branch_key: int, taken: bool) -> float:
        """Extra cycles for an executed conditional branch."""
        if self.predictor.predict_and_update(branch_key, taken):
            return MISPREDICT_PENALTY
        return 0.0

    @staticmethod
    def counts_as_instruction(instr: Instr) -> bool:
        """Whether the op retires in the IPC denominator ("excluding
        nops"): phis, jumps and SPT markers do not."""
        return not isinstance(instr, (Phi, Jump, SptFork, SptKill))


class TimingTracer(Tracer):
    """Accumulates program cycles, instruction counts, and per-loop
    cycle attribution while the interpreter runs."""

    def __init__(self, model: TimingModel = None):
        self.model = model or TimingModel()
        self.cycles = 0.0
        self.instructions = 0
        #: (func_name, loop_header) -> attributed cycles.
        self.loop_cycles: Dict[Tuple[str, str], float] = {}
        #: (func_name, loop_header) -> loop-entry count.
        self.loop_entries: Dict[Tuple[str, str], int] = {}
        self._nests: Dict[str, LoopNest] = {}
        #: Stack of (func_name, header) loop contexts (across calls).
        self._loop_stack: List[Tuple[str, str]] = []
        #: Per-frame loop-stack depth at entry, to unwind on return.
        self._frame_depths: List[int] = []
        self._current_branch: Optional[Tuple[int, str]] = None

    # -- helpers ----------------------------------------------------------

    def _nest_for(self, func: Function) -> LoopNest:
        nest = self._nests.get(func.name)
        if nest is None:
            nest = LoopNest.build(func)
            self._nests[func.name] = nest
        return nest

    def _charge(self, cycles: float) -> None:
        self.cycles += cycles
        for key in self._loop_stack:
            self.loop_cycles[key] = self.loop_cycles.get(key, 0.0) + cycles

    # -- tracer hooks --------------------------------------------------------

    def on_enter_function(self, func: Function, args) -> None:
        self._frame_depths.append(len(self._loop_stack))
        self._nest_for(func)

    def on_exit_function(self, func: Function, result) -> None:
        depth = self._frame_depths.pop()
        del self._loop_stack[depth:]

    def on_block(self, func: Function, block: Block, prev_label) -> None:
        nest = self._nest_for(func)
        frame_depth = self._frame_depths[-1] if self._frame_depths else 0
        # Pop loops (entered in this frame) that no longer contain us.
        while len(self._loop_stack) > frame_depth:
            fn, header = self._loop_stack[-1]
            if fn != func.name:
                break
            loop = next(
                l for l in nest.loops if l.header == header
            )
            if block.label in loop.body:
                break
            self._loop_stack.pop()
        # Push loops whose header we just entered from outside.
        for loop in nest.loops:
            if loop.header != block.label:
                continue
            key = (func.name, loop.header)
            if key in self._loop_stack[frame_depth:]:
                continue
            if prev_label is None or prev_label not in loop.body:
                self.loop_entries[key] = self.loop_entries.get(key, 0) + 1
            self._loop_stack.append(key)

    def on_instr(self, func: Function, block: Block, instr: Instr) -> None:
        self._charge(self.model.base_latency(instr))
        if self.model.counts_as_instruction(instr):
            self.instructions += 1
        if isinstance(instr, Branch):
            self._current_branch = (id(instr), instr.iftrue)

    def on_load(self, instr: Instr, addr: int, value) -> None:
        self._charge(self.model.load_latency(addr))

    def on_store(self, instr: Instr, addr: int, value, old_value) -> None:
        self.model.store_fill(addr)

    def on_edge(self, func: Function, src_label: str, dst_label: str) -> None:
        if self._current_branch is not None:
            branch_key, iftrue = self._current_branch
            self._current_branch = None
            taken = dst_label == iftrue
            self._charge(self.model.branch_latency(branch_key, taken))

    # -- results ----------------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def coverage(self, key: Tuple[str, str]) -> float:
        """Fraction of total cycles spent inside the given loop."""
        if self.cycles == 0:
            return 0.0
        return self.loop_cycles.get(key, 0.0) / self.cycles
