"""Vectorized (block-batched) timing accounting.

:class:`~repro.machine.timing.TimingTracer` charges every dynamic
instruction individually through ``on_instr``; attaching it therefore
forces the compiled interpreter off its zero-hook fast path and costs
several Python calls per op.  :class:`VectorTimingEngine` produces the
same accounting from *block-granular* events instead:

* the **static** cost of a block (ALU/mul/div/copy/store/call/return
  base latencies and the branch base cost) is precomputed once per
  block as a single integer tick sum and charged in one addition;
* the **dynamic residual** -- cache hit/miss latency per load and the
  bimodal mispredict penalty per conditional branch -- is charged by
  one call per load/store/branch, in program order, against the same
  shared :class:`~repro.machine.timing.TimingModel` state.

Because the timing model accumulates integer ticks (see
:mod:`repro.machine.timing`), the batched sums are bitwise-identical
to per-op accounting; ``tests/machine/test_vector_timing.py`` asserts
exact equality of cycles, instruction counts, per-loop attribution and
cache/predictor state against a :class:`TimingTracer` run.

The engine is **not** a tracer: it must never be registered via
``add_tracer`` (its inherited per-instr hooks would defeat the point).
The compiled interpreter accepts it through the ``timing_engine``
parameter of :func:`repro.profiling.compiled.make_machine` and drives
it through the block-level API below -- including from inside compiled
hot traces (:mod:`repro.profiling.traces`).

Charging granularity: a block's static cost is attributed when the
*next* block-level event flushes it, which is before the loop-context
stack changes -- exactly where :class:`TimingTracer` attributes the
block's per-op charges.  The only divergence is on runs that abort
mid-block with an interpreter error, where the erroring block's partial
charges are dropped; cycle counts of failed runs are never consumed.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ir.block import Block
from repro.ir.function import Function
from repro.ir.instr import Branch, Instr, Jump, Return
from repro.machine.timing import TimingModel, TimingTracer


class VectorTimingEngine(TimingTracer):
    """Drop-in replacement for :class:`TimingTracer` results
    (``cycles``/``ticks``/``instructions``/``loop_cycles``/``ipc``/
    ``coverage``) computed from block-batched events."""

    def __init__(self, model: TimingModel = None):
        super().__init__(model)
        #: Ticks accumulated for the current block but not yet
        #: attributed (static block cost + dynamic load/branch ticks).
        self._pending = 0
        # id(block) -> (block, static_ticks, retired_instructions).
        # Holding the block reference pins its id.
        self._static: Dict[int, Tuple[Block, int, int]] = {}
        # Memoized *stack-neutral* transitions: entering the block under
        # the keyed loop-stack state changes neither the stack nor any
        # entry counter, so flush + on_block can be skipped outright
        # (the attribution target set is unchanged and integer tick
        # sums commute).  Key: (id(block), stack top, stack depth,
        # frame depth) -- everything on_block's pop/push phases consult
        # in the no-change case.  Value: the block's static entry.
        self._neutral: Dict[tuple, Tuple[Block, int, int]] = {}
        # func name -> set of loop-header labels (push-phase gate).
        self._header_labels: Dict[str, frozenset] = {}
        # Pass-level memo for block *sequences* (see :meth:`blocks`):
        # (id(seq), stack top, depth, frame depth) -> (ticks, instrs).
        self._pass_memo: Dict[tuple, Tuple[int, int]] = {}
        # Sequences are keyed by id(); pin them so a freed tuple's id
        # can never be recycled into a stale memo hit.
        self._seqs: list = []

    # -- static per-block cost vectors --------------------------------

    def _static_for(self, block: Block) -> Tuple[Block, int, int]:
        entry = self._static.get(id(block))
        if entry is None:
            model = self.model
            ticks = 0
            count = 0
            for instr in block.instrs:
                ticks += model.base_ticks(instr)
                if model.counts_as_instruction(instr):
                    count += 1
                if isinstance(instr, (Jump, Branch, Return)):
                    break  # execution never passes the first terminator
            entry = (block, ticks, count)
            self._static[id(block)] = entry
        return entry

    def _flush(self) -> None:
        pending = self._pending
        if pending:
            self._pending = 0
            self._charge(pending)

    # -- block-level event API ----------------------------------------

    def enter(self, func: Function, args) -> None:
        """A function invocation begins (caller block still pending)."""
        self.on_enter_function(func, args)

    def exit(self, func: Function, result) -> None:
        """A function invocation returns; settle its last block before
        the loop-context stack unwinds."""
        self._flush()
        self.on_exit_function(func, result)

    def _headers(self, func: Function) -> frozenset:
        labels = self._header_labels.get(func.name)
        if labels is None:
            labels = frozenset(l.header for l in self._nest_for(func).loops)
            self._header_labels[func.name] = labels
        return labels

    def block(self, func: Function, block: Block, prev_label) -> None:
        """Control enters ``block``: settle the previous block under its
        own loop context, then charge this block's static cost.

        Steady-state transitions (no loop entered or left) hit the
        ``_neutral`` memo and reduce to two integer additions.
        """
        stack = self._loop_stack
        depth = len(stack)
        top = stack[depth - 1] if depth else None
        frames = self._frame_depths
        fd = frames[-1] if frames else 0
        key = (id(block), top, depth, fd)
        entry = self._neutral.get(key)
        if entry is not None:
            self._pending += entry[1]
            self.instructions += entry[2]
            return
        self._flush()
        self.on_block(func, block, prev_label)
        entry = self._static_for(block)
        self._pending += entry[1]
        self.instructions += entry[2]
        # Memoize iff on_block provably did nothing: the stack is
        # unchanged (identity: re-pushed contexts are fresh tuples, so
        # `is` also rules out a pop+push that bumped an entry counter)
        # and, for loop headers, the header's own context is on top --
        # otherwise `key in stack` deeper down could differ between
        # stacks that share this memo key.
        if (
            len(stack) == depth
            and (stack[depth - 1] if depth else None) is top
            and (
                block.label not in self._headers(func)
                or top == (func.name, block.label)
            )
        ):
            self._neutral[key] = entry

    def register_seq(self, seq) -> None:
        """Pin a block sequence so its ``id()`` stays unique for the
        lifetime of this engine (``blocks`` memoizes by identity)."""
        self._seqs.append(seq)

    def blocks(self, seq) -> None:
        """Control flows through a *constant* run of blocks: ``seq`` is
        a tuple of ``(func, block, prev_label)`` triples separated only
        by unconditional edges, emitted by a compiled trace.

        Once every block in the run has a ``_neutral`` entry under the
        current loop/frame context, the whole run collapses to two
        integer additions per pass.  Soundness mirrors the per-block
        memo: each neutral entry certifies that entering that block
        under (top, depth, fd) changes neither the stack nor any entry
        counter, and since the run itself leaves the stack untouched
        (checked below), the context every block sees is the keyed one.
        """
        stack = self._loop_stack
        depth = len(stack)
        top = stack[depth - 1] if depth else None
        frames = self._frame_depths
        fd = frames[-1] if frames else 0
        key = (id(seq), top, depth, fd)
        agg = self._pass_memo.get(key)
        if agg is not None:
            self._pending += agg[0]
            self.instructions += agg[1]
            return
        for func, block, prev in seq:
            self.block(func, block, prev)
        # Aggregate only if the run was stack-neutral end to end and
        # every step is individually memoized under this same context.
        if len(stack) != depth or (stack[depth - 1] if depth else None) is not top:
            return
        pending = 0
        instructions = 0
        neutral = self._neutral
        for func, block, prev in seq:
            entry = neutral.get((id(block), top, depth, fd))
            if entry is None:
                return
            pending += entry[1]
            instructions += entry[2]
        self._pass_memo[key] = (pending, instructions)

    def load(self, addr: int) -> None:
        """Dynamic residual of one memory read (program order matters:
        the cache hierarchy is stateful)."""
        self._pending += self.model.hierarchy.access_ticks(addr)

    def store(self, addr: int) -> None:
        """Write-allocate fill for one store (no ticks charged)."""
        self.model.hierarchy.fill_for_write(addr)

    def branch(self, key: int, taken: bool) -> None:
        """Dynamic residual of one executed conditional branch."""
        self._pending += self.model.branch_ticks(key, taken)

    def flush(self) -> None:
        """Force attribution of any pending ticks (end of measurement)."""
        self._flush()

    # -- tracer hooks are not an input channel ------------------------

    def on_instr(self, func: Function, block: Block, instr: Instr) -> None:
        raise RuntimeError(
            "VectorTimingEngine must not be attached as a tracer; pass it "
            "as timing_engine= to the compiled machine instead"
        )
