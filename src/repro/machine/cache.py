"""Memory hierarchy model.

The paper's simulator gives both cores a shared memory/cache hierarchy
"with the same configuration and latencies as Intel's Itanium2 systems"
(§8).  We model three inclusive levels with LRU replacement over
word-addressed lines:

=====  ==========  =========  ============
level  capacity    line size  load-use lat
=====  ==========  =========  ============
L1D    16 KB       64 B       1 cycle
L2     256 KB      128 B      5 cycles
L3     3 MB        128 B      12 cycles
mem    --          --         180 cycles
=====  ==========  =========  ============

Addresses are word indices (8-byte words), so a 64-byte line is 8
words.  The model charges the latency of the first level that hits and
fills all levels above it.

Latencies are held internally as integer ticks (see
:data:`repro.machine.timing.TICKS_PER_CYCLE`) so aggregated accounting
stays exact; ``access()`` still returns float cycles, and the
conversion is exact for any latency that is a multiple of 0.01 cycles.
"""

from __future__ import annotations

from collections import OrderedDict

#: Duplicated from repro.machine.timing to avoid an import cycle
#: (timing imports this module).
_TICKS_PER_CYCLE = 100


def _to_ticks(cycles: float) -> int:
    return int(round(cycles * _TICKS_PER_CYCLE))


class CacheLevel:
    """One cache level: LRU over line tags."""

    def __init__(self, name: str, capacity_lines: int, line_words: int, latency: float):
        self.name = name
        self.capacity_lines = capacity_lines
        self.line_words = line_words
        self.latency = latency
        self.latency_ticks = _to_ticks(latency)
        self._lines: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def line_of(self, addr: int) -> int:
        return addr // self.line_words

    def lookup(self, addr: int) -> bool:
        """Probe (and LRU-touch) the line holding ``addr``."""
        line = self.line_of(addr)
        if line in self._lines:
            self._lines.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> None:
        line = self.line_of(addr)
        self._lines[line] = True
        self._lines.move_to_end(line)
        while len(self._lines) > self.capacity_lines:
            self._lines.popitem(last=False)

    def reset(self) -> None:
        self._lines.clear()
        self.hits = 0
        self.misses = 0


class MemoryHierarchy:
    """Shared three-level hierarchy (Itanium2-like latencies)."""

    def __init__(
        self,
        l1_lines: int = 256,
        l2_lines: int = 2048,
        l3_lines: int = 24576,
        line_words: int = 8,
        l1_latency: float = 1.0,
        l2_latency: float = 5.0,
        l3_latency: float = 12.0,
        memory_latency: float = 180.0,
    ):
        self.levels = [
            CacheLevel("L1D", l1_lines, line_words, l1_latency),
            CacheLevel("L2", l2_lines, line_words * 2, l2_latency),
            CacheLevel("L3", l3_lines, line_words * 2, l3_latency),
        ]
        self._l1, self._l2, self._l3 = self.levels
        self.memory_latency = memory_latency
        self.memory_ticks = _to_ticks(memory_latency)
        self.accesses = 0

    def access(self, addr: int) -> float:
        """Cycles to satisfy a load of ``addr``; updates all levels."""
        return self.access_ticks(addr) / _TICKS_PER_CYCLE

    # The two methods below are the simulator's hottest leaves (one
    # call per dynamic load/store), so the probe/fill walk over the
    # three levels is hand-inlined rather than expressed through
    # CacheLevel.lookup/fill.  Every dict mutation, LRU touch, and
    # hit/miss increment happens in the same order on the same state
    # as the composed form, so timing results are bit-identical.

    def access_ticks(self, addr: int) -> int:
        """Ticks to satisfy a load of ``addr``; updates all levels."""
        self.accesses += 1
        l1 = self._l1
        d1 = l1._lines
        line1 = addr // l1.line_words
        if line1 in d1:
            d1.move_to_end(line1)
            l1.hits += 1
            return l1.latency_ticks
        l1.misses += 1
        l2 = self._l2
        d2 = l2._lines
        line2 = addr // l2.line_words
        if line2 in d2:
            d2.move_to_end(line2)
            l2.hits += 1
            ticks = l2.latency_ticks
        else:
            l2.misses += 1
            l3 = self._l3
            d3 = l3._lines
            line3 = addr // l3.line_words
            if line3 in d3:
                d3.move_to_end(line3)
                l3.hits += 1
                ticks = l3.latency_ticks
            else:
                l3.misses += 1
                ticks = self.memory_ticks
                d3[line3] = True
                while len(d3) > l3.capacity_lines:
                    d3.popitem(last=False)
            d2[line2] = True
            while len(d2) > l2.capacity_lines:
                d2.popitem(last=False)
        d1[line1] = True
        while len(d1) > l1.capacity_lines:
            d1.popitem(last=False)
        return ticks

    def fill_for_write(self, addr: int) -> None:
        """Write-allocate: a store brings the line in at every level.

        The latency is not charged to the store -- an in-order core's
        store buffer hides it -- but the fill warms the hierarchy for
        subsequent loads, which is what makes initialize-then-process
        loops behave realistically.
        """
        l1 = self._l1
        d1 = l1._lines
        line1 = addr // l1.line_words
        l2 = self._l2
        d2 = l2._lines
        line2 = addr // l2.line_words
        l3 = self._l3
        d3 = l3._lines
        line3 = addr // l3.line_words
        # Probe until the first level that hits (LRU-touch deferred to
        # the unconditional fill below, which lands on the same line).
        if line1 in d1:
            l1.hits += 1
        else:
            l1.misses += 1
            if line2 in d2:
                l2.hits += 1
            elif line3 in d3:
                l2.misses += 1
                l3.hits += 1
            else:
                l2.misses += 1
                l3.misses += 1
        # Write-allocate at every level.
        if line1 in d1:
            d1.move_to_end(line1)
        else:
            d1[line1] = True
            while len(d1) > l1.capacity_lines:
                d1.popitem(last=False)
        if line2 in d2:
            d2.move_to_end(line2)
        else:
            d2[line2] = True
            while len(d2) > l2.capacity_lines:
                d2.popitem(last=False)
        if line3 in d3:
            d3.move_to_end(line3)
        else:
            d3[line3] = True
            while len(d3) > l3.capacity_lines:
                d3.popitem(last=False)

    def miss_rate(self, level_index: int = 0) -> float:
        level = self.levels[level_index]
        total = level.hits + level.misses
        return level.misses / total if total else 0.0

    def reset(self) -> None:
        self.accesses = 0
        for level in self.levels:
            level.reset()

    # -- checkpointing ------------------------------------------------

    def snapshot_state(self) -> dict:
        """Plain-data snapshot: counters plus each level's resident
        lines in LRU order (head = coldest), which is the *entire*
        replacement state -- restoring the same line sequence rebuilds
        a bit-identical OrderedDict."""
        return {
            "accesses": self.accesses,
            "levels": [
                {
                    "hits": level.hits,
                    "misses": level.misses,
                    "lines": list(level._lines.keys()),
                }
                for level in self.levels
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state` (same geometry assumed;
        the checkpoint key pins the configuration)."""
        self.accesses = int(state["accesses"])
        for level, entry in zip(self.levels, state["levels"]):
            level.hits = int(entry["hits"])
            level.misses = int(entry["misses"])
            level._lines = OrderedDict(
                (int(line), True) for line in entry["lines"]
            )
