"""Memory hierarchy model.

The paper's simulator gives both cores a shared memory/cache hierarchy
"with the same configuration and latencies as Intel's Itanium2 systems"
(§8).  We model three inclusive levels with LRU replacement over
word-addressed lines:

=====  ==========  =========  ============
level  capacity    line size  load-use lat
=====  ==========  =========  ============
L1D    16 KB       64 B       1 cycle
L2     256 KB      128 B      5 cycles
L3     3 MB        128 B      12 cycles
mem    --          --         180 cycles
=====  ==========  =========  ============

Addresses are word indices (8-byte words), so a 64-byte line is 8
words.  The model charges the latency of the first level that hits and
fills all levels above it.
"""

from __future__ import annotations

from collections import OrderedDict


class CacheLevel:
    """One cache level: LRU over line tags."""

    def __init__(self, name: str, capacity_lines: int, line_words: int, latency: float):
        self.name = name
        self.capacity_lines = capacity_lines
        self.line_words = line_words
        self.latency = latency
        self._lines: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def line_of(self, addr: int) -> int:
        return addr // self.line_words

    def lookup(self, addr: int) -> bool:
        """Probe (and LRU-touch) the line holding ``addr``."""
        line = self.line_of(addr)
        if line in self._lines:
            self._lines.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> None:
        line = self.line_of(addr)
        self._lines[line] = True
        self._lines.move_to_end(line)
        while len(self._lines) > self.capacity_lines:
            self._lines.popitem(last=False)

    def reset(self) -> None:
        self._lines.clear()
        self.hits = 0
        self.misses = 0


class MemoryHierarchy:
    """Shared three-level hierarchy (Itanium2-like latencies)."""

    def __init__(
        self,
        l1_lines: int = 256,
        l2_lines: int = 2048,
        l3_lines: int = 24576,
        line_words: int = 8,
        l1_latency: float = 1.0,
        l2_latency: float = 5.0,
        l3_latency: float = 12.0,
        memory_latency: float = 180.0,
    ):
        self.levels = [
            CacheLevel("L1D", l1_lines, line_words, l1_latency),
            CacheLevel("L2", l2_lines, line_words * 2, l2_latency),
            CacheLevel("L3", l3_lines, line_words * 2, l3_latency),
        ]
        self.memory_latency = memory_latency
        self.accesses = 0

    def access(self, addr: int) -> float:
        """Cycles to satisfy a load of ``addr``; updates all levels."""
        self.accesses += 1
        for index, level in enumerate(self.levels):
            if level.lookup(addr):
                for above in self.levels[:index]:
                    above.fill(addr)
                return level.latency
        for level in self.levels:
            level.fill(addr)
        return self.memory_latency

    def fill_for_write(self, addr: int) -> None:
        """Write-allocate: a store brings the line in at every level.

        The latency is not charged to the store -- an in-order core's
        store buffer hides it -- but the fill warms the hierarchy for
        subsequent loads, which is what makes initialize-then-process
        loops behave realistically.
        """
        for level in self.levels:
            if level.lookup(addr):
                break
        for level in self.levels:
            level.fill(addr)

    def miss_rate(self, level_index: int = 0) -> float:
        level = self.levels[level_index]
        total = level.hits + level.misses
        return level.misses / total if total else 0.0

    def reset(self) -> None:
        self.accesses = 0
        for level in self.levels:
            level.reset()
