"""Bimodal branch predictor.

Each static branch gets a two-bit saturating counter; a misprediction
costs 5 cycles (paper §8: "branch misprediction penalty is 5 cycles").
"""

from __future__ import annotations

from typing import Dict

#: Two-bit counter states: 0,1 predict not-taken; 2,3 predict taken.
_WEAKLY_TAKEN = 2


class BranchPredictor:
    """Per-static-branch two-bit saturating counters."""

    def __init__(self):
        self._counters: Dict[int, int] = {}
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, branch_key: int, taken: bool) -> bool:
        """Record an executed branch; returns True when mispredicted."""
        counter = self._counters.get(branch_key, _WEAKLY_TAKEN)
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        self.predictions += 1
        if mispredicted:
            self.mispredictions += 1
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[branch_key] = counter
        return mispredicted

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions

    def reset(self) -> None:
        self._counters.clear()
        self.predictions = 0
        self.mispredictions = 0

    # -- checkpointing ------------------------------------------------

    def snapshot_state(self, key_of) -> Dict:
        """Plain-data snapshot; ``key_of`` maps an ``id(instr)`` branch
        key to a process-independent instruction key
        (:class:`repro.checkpoint.state.InstrIndex`)."""
        return {
            "predictions": self.predictions,
            "mispredictions": self.mispredictions,
            "counters": sorted(
                [key_of(branch_key), counter]
                for branch_key, counter in self._counters.items()
            ),
        }

    def restore_state(self, state: Dict, id_of) -> None:
        """Inverse of :meth:`snapshot_state`; ``id_of`` maps an
        instruction key back to the live ``id(instr)``."""
        self.predictions = int(state["predictions"])
        self.mispredictions = int(state["mispredictions"])
        self._counters = {
            id_of(key): int(counter) for key, counter in state["counters"]
        }
