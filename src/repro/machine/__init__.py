"""The SPT machine model: timing, caches, branch prediction, and the
two-core speculative execution simulator."""

from repro.machine.branchpred import BranchPredictor
from repro.machine.cache import CacheLevel, MemoryHierarchy
from repro.machine.region_sim import (
    RegionLoopStats,
    RegionTraceCollector,
    simulate_region_loop,
)
from repro.machine.spt_sim import (
    COMMIT_CYCLES,
    FORK_CYCLES,
    IterationTrace,
    OpRecord,
    SptLoopStats,
    SptTraceCollector,
    simulate_spt_loop,
)
from repro.machine.timing import TimingModel, TimingTracer
from repro.machine.vector_timing import VectorTimingEngine

__all__ = [
    "BranchPredictor",
    "CacheLevel",
    "COMMIT_CYCLES",
    "FORK_CYCLES",
    "IterationTrace",
    "MemoryHierarchy",
    "OpRecord",
    "RegionLoopStats",
    "RegionTraceCollector",
    "simulate_region_loop",
    "SptLoopStats",
    "SptTraceCollector",
    "TimingModel",
    "TimingTracer",
    "VectorTimingEngine",
    "simulate_spt_loop",
]
