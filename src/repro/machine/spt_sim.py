"""The SPT (speculative parallel threading) machine model (paper §8).

The simulated machine is a tightly-coupled two-core system: a main core
that executes the main thread and commits state, and a speculative core
that runs the next loop iteration from a register snapshot taken at the
fork, with its stores buffered.  Fork costs 6 cycles and commit 5 (§8).

Rather than lock-stepping two pipelines, the simulator replays the
*transformed* program sequentially under the timing model, collecting a
per-iteration trace of dynamic operations for each SPT loop, and then
recombines consecutive iteration pairs into SPT rounds:

* main runs iteration ``i`` (pre-fork, fork, post-fork);
* the speculative core runs iteration ``i+1`` concurrently, starting
  from the fork-time context;
* a speculative operation *misspeculates* when it consumes a register
  or memory value the main thread's post-fork region redefines with a
  **different value** (value-based detection: silent re-stores do not
  violate), or when it depends on another misspeculated operation;
* at the join the main core commits (5 cycles) and re-executes the
  misspeculated operations.

Round wall-clock::

    t_round = t_pre(i) + fork + max(t_post(i), t_iter(i+1))
            + commit + t_reexec(i+1)

versus ``t_iter(i) + t_iter(i+1)`` sequentially.  A trailing unpaired
iteration runs on the main core alone (its fork is wasted).

Because the replay executes the real transformed code, the measured
re-execution ratios are *observed* quantities -- exactly what Figure 19
plots against the compiler's misspeculation cost estimates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.block import Block
from repro.ir.function import Function
from repro.ir.instr import Branch, Call, Instr, Load, Phi, SptFork, Store
from repro.ir.values import Var
from repro.machine.timing import TICKS_PER_CYCLE, TimingModel
from repro.profiling.interp import Tracer

FORK_TICKS = 600
COMMIT_TICKS = 500
FORK_CYCLES = FORK_TICKS / TICKS_PER_CYCLE
COMMIT_CYCLES = COMMIT_TICKS / TICKS_PER_CYCLE


class OpRecord:
    """One dynamic operation inside an SPT loop iteration.

    Latency is held as integer ticks (``ticks``); the ``latency``
    property converts to float cycles for external readers."""

    __slots__ = (
        "instr",
        "ticks",
        "uses",
        "def_name",
        "def_old",
        "def_new",
        "load_addr",
        "load_value",
        "store_addr",
        "store_old",
        "store_new",
        "mem_reads",
        "mem_writes",
        "pre_fork",
        "header_op",
    )

    def __init__(self, instr: Instr):
        self.instr = instr
        self.ticks = 0
        #: Register names read (with phis resolved to the taken incoming).
        self.uses: List[str] = []
        self.def_name: Optional[str] = None
        self.def_old = None
        self.def_new = None
        self.load_addr: Optional[int] = None
        self.load_value = None
        self.store_addr: Optional[int] = None
        self.store_old = None
        self.store_new = None
        #: For aggregated calls: addresses read / written inside.
        self.mem_reads: Optional[Set[int]] = None
        self.mem_writes: Optional[Dict[int, Tuple]] = None
        self.pre_fork = False
        #: Set for loop-header ops (used by the region simulator: header
        #: values resolve before the fork).
        self.header_op = False

    @property
    def latency(self) -> float:
        return self.ticks / TICKS_PER_CYCLE


class IterationTrace:
    """All operations of one loop iteration, in execution order."""

    __slots__ = ("ops",)

    def __init__(self):
        self.ops: List[OpRecord] = []

    @property
    def total_ticks(self) -> int:
        return sum(op.ticks for op in self.ops)

    def pre_ticks(self) -> int:
        return sum(op.ticks for op in self.ops if op.pre_fork)

    def post_ticks(self) -> int:
        return sum(op.ticks for op in self.ops if not op.pre_fork)

    @property
    def total_latency(self) -> float:
        return self.total_ticks / TICKS_PER_CYCLE

    def pre_latency(self) -> float:
        return self.pre_ticks() / TICKS_PER_CYCLE

    def post_latency(self) -> float:
        return self.post_ticks() / TICKS_PER_CYCLE


class SptTraceCollector(Tracer):
    """Tracer that records per-iteration traces for one SPT loop.

    Must observe the *transformed* function.  Operations executed inside
    callees are aggregated into the call-site's record (the call becomes
    one atomic op with a read/write address set), matching how the cost
    model treats calls.
    """

    def __init__(
        self,
        func_name: str,
        header: str,
        body_labels: Set[str],
        loop_id: int,
        model: TimingModel,
    ):
        self.func_name = func_name
        self.header = header
        self.body_labels = set(body_labels)
        self.loop_id = loop_id
        self.model = model
        #: One list of iterations per loop invocation.
        self.invocations: List[List[IterationTrace]] = []
        self._current: Optional[IterationTrace] = None
        self._in_pre_fork = False
        self._depth_in_target = 0  # frames below the target function
        self._call_stack: List[OpRecord] = []
        self._reg_values: Dict[str, object] = {}
        self._prev_label: Optional[str] = None
        self._pending_op: Optional[OpRecord] = None
        self._entered_body = False
        self._in_target_frame = False
        self._frame_is_target: List[bool] = []

    # -- tracer hooks ----------------------------------------------------

    def on_enter_function(self, func: Function, args) -> None:
        self._frame_is_target.append(func.name == self.func_name)
        if self._current is not None and func.name != self.func_name:
            self._depth_in_target += 1

    def on_exit_function(self, func: Function, result) -> None:
        was_target = self._frame_is_target.pop()
        if self._current is not None and not was_target:
            self._depth_in_target -= 1
            if self._depth_in_target == 0 and self._call_stack:
                self._call_stack.pop()
        if was_target and self._current is not None:
            self._finish_iteration()
            self._finish_invocation()

    def on_block(self, func: Function, block: Block, prev_label) -> None:
        if not self._frame_is_target or not self._frame_is_target[-1]:
            return
        if func.name != self.func_name:
            return
        self._prev_label = prev_label
        if block.label == self.header:
            if prev_label is not None and prev_label in self.body_labels:
                self._finish_iteration()
                self._start_iteration()
            else:
                self._finish_iteration()
                self._finish_invocation()
                self._start_invocation()
                self._start_iteration()
        elif self._current is not None and block.label not in self.body_labels:
            # Left the loop (exit edge).
            self._finish_iteration()
            self._finish_invocation()
        elif self._current is not None:
            self._entered_body = True

    def _start_invocation(self) -> None:
        self.invocations.append([])

    def _finish_invocation(self) -> None:
        if self.invocations and not self.invocations[-1]:
            self.invocations.pop()

    def _start_iteration(self) -> None:
        self._current = IterationTrace()
        self._in_pre_fork = True
        self._entered_body = False

    def _finish_iteration(self) -> None:
        # The final header pass that fails the loop test is not an
        # iteration -- it never reaches the body.
        if (
            self._current is not None
            and self._current.ops
            and self._entered_body
        ):
            if not self.invocations:
                self.invocations.append([])
            self.invocations[-1].append(self._current)
        self._current = None
        self._call_stack = []
        self._depth_in_target = 0

    def _record(self) -> Optional[OpRecord]:
        """The record receiving the current event (call aggregate when
        inside a callee)."""
        if self._current is None:
            return None
        if self._call_stack:
            return self._call_stack[-1]
        return self._pending_op

    def on_instr(self, func: Function, block: Block, instr: Instr) -> None:
        if self._current is None:
            return
        in_target = self._depth_in_target == 0 and func.name == self.func_name
        if in_target and block.label not in self.body_labels:
            return

        if in_target:
            if isinstance(instr, SptFork) and instr.loop_id == self.loop_id:
                self._in_pre_fork = False
                return
            op = OpRecord(instr)
            op.ticks = self.model.base_ticks(instr)
            op.pre_fork = self._in_pre_fork
            if isinstance(instr, Phi):
                incoming = instr.incomings.get(self._prev_label)
                if isinstance(incoming, Var):
                    op.uses.append(incoming.name)
            else:
                for value in instr.uses():
                    if isinstance(value, Var):
                        op.uses.append(value.name)
            self._current.ops.append(op)
            self._pending_op = op
            if isinstance(instr, Call):
                op.mem_reads = set()
                op.mem_writes = {}
                self._call_stack.append(op)
            if isinstance(instr, Branch):
                taken = None  # resolved in on_edge
        else:
            # Inside a callee: charge latency onto the call aggregate.
            record = self._record()
            if record is not None:
                record.ticks += self.model.base_ticks(instr)

    def on_edge(self, func: Function, src_label: str, dst_label: str) -> None:
        if self._current is None:
            return
        record = self._pending_op
        if (
            record is not None
            and isinstance(record.instr, Branch)
            and self._depth_in_target == 0
            and func.name == self.func_name
        ):
            taken = dst_label == record.instr.iftrue
            record.ticks += self.model.branch_ticks(id(record.instr), taken)
        elif self._call_stack and isinstance(
            func.block(src_label).terminator, Branch
        ):
            branch = func.block(src_label).terminator
            taken = dst_label == branch.iftrue
            self._call_stack[-1].ticks += self.model.branch_ticks(
                id(branch), taken
            )

    def on_def(self, instr: Instr, value) -> None:
        if self._current is None:
            return
        if self._call_stack and (
            self._depth_in_target > 0 or instr is not self._call_stack[-1].instr
        ):
            return  # callee-internal registers are invisible outside
        record = self._pending_op
        if record is None or record.instr is not instr:
            # A call's return value lands on the call record itself.
            if self._call_stack and self._call_stack[-1].instr is instr:
                record = self._call_stack[-1]
            else:
                return
        if instr.dest is not None:
            name = instr.dest.name
            record.def_name = name
            record.def_old = self._reg_values.get(name)
            record.def_new = value
            self._reg_values[name] = value

    def on_load(self, instr: Instr, addr: int, value) -> None:
        # The cache observes every load in the program (cache state must
        # match the run's real access stream), but latency is only
        # attached to ops recorded inside the SPT loop.
        ticks = self.model.load_ticks(addr)
        if self._current is None:
            return
        if self._call_stack:
            record = self._call_stack[-1]
            record.ticks += ticks
            record.mem_reads.add(addr)
            return
        record = self._pending_op
        if record is None or record.instr is not instr:
            return
        record.ticks += ticks
        record.load_addr = addr
        record.load_value = value

    def on_store(self, instr: Instr, addr: int, value, old_value) -> None:
        self.model.store_fill(addr)
        if self._current is None:
            return
        if self._call_stack:
            record = self._call_stack[-1]
            old = record.mem_writes.get(addr, (old_value, None))[0]
            record.mem_writes[addr] = (old, value)
            return
        record = self._pending_op
        if record is None or record.instr is not instr:
            return
        record.store_addr = addr
        record.store_old = old_value
        record.store_new = value

    # -- checkpointing ------------------------------------------------

    @staticmethod
    def _encode_op(op: OpRecord, key_of) -> List:
        return [
            key_of(id(op.instr)),
            op.ticks,
            list(op.uses),
            op.def_name,
            op.def_old,
            op.def_new,
            op.load_addr,
            op.load_value,
            op.store_addr,
            op.store_old,
            op.store_new,
            sorted(op.mem_reads) if op.mem_reads is not None else None,
            (
                sorted(
                    [addr, old, new]
                    for addr, (old, new) in op.mem_writes.items()
                )
                if op.mem_writes is not None
                else None
            ),
            op.pre_fork,
            op.header_op,
        ]

    @staticmethod
    def _decode_op(fields: List, instr_of) -> OpRecord:
        op = OpRecord(instr_of(fields[0]))
        (
            op.ticks,
            uses,
            op.def_name,
            op.def_old,
            op.def_new,
            op.load_addr,
            op.load_value,
            op.store_addr,
            op.store_old,
            op.store_new,
            mem_reads,
            mem_writes,
            op.pre_fork,
            op.header_op,
        ) = fields[1:]
        op.uses = list(uses)
        op.mem_reads = set(mem_reads) if mem_reads is not None else None
        op.mem_writes = (
            {addr: (old, new) for addr, old, new in mem_writes}
            if mem_writes is not None
            else None
        )
        return op

    def snapshot_state(self, key_of) -> Dict:
        """Plain-data snapshot at an entry-frame block boundary.

        At such a boundary no call is in flight (calls complete within
        their block), so the call-aggregation stack must be empty; the
        in-progress iteration (``_current``), the finished invocation
        traces, and the collector's private timing model are all
        captured.  ``_pending_op`` is transient (only consulted while
        its instruction's events are still being delivered) and
        restores as None."""
        if self._call_stack or self._depth_in_target:
            raise ValueError(
                "SptTraceCollector snapshot outside a block boundary "
                "(call in flight)"
            )
        encode = self._encode_op
        return {
            "invocations": [
                [[encode(op, key_of) for op in trace.ops] for trace in traces]
                for traces in self.invocations
            ],
            "current": (
                [encode(op, key_of) for op in self._current.ops]
                if self._current is not None
                else None
            ),
            "in_pre_fork": self._in_pre_fork,
            "reg_values": dict(self._reg_values),
            "prev_label": self._prev_label,
            "entered_body": self._entered_body,
            "frame_is_target": list(self._frame_is_target),
            "model": self.model.snapshot_state(key_of),
        }

    def restore_state(self, state: Dict, instr_of, id_of) -> None:
        """Inverse of :meth:`snapshot_state`.  ``instr_of`` maps an
        instruction key to the live instruction; ``id_of`` to its id."""

        def decode_trace(ops: List) -> IterationTrace:
            trace = IterationTrace()
            trace.ops = [self._decode_op(fields, instr_of) for fields in ops]
            return trace

        self.invocations = [
            [decode_trace(ops) for ops in traces]
            for traces in state["invocations"]
        ]
        self._current = (
            decode_trace(state["current"])
            if state["current"] is not None
            else None
        )
        self._in_pre_fork = bool(state["in_pre_fork"])
        self._reg_values = dict(state["reg_values"])
        self._prev_label = state["prev_label"]
        self._entered_body = bool(state["entered_body"])
        self._frame_is_target = [bool(f) for f in state["frame_is_target"]]
        self._depth_in_target = 0
        self._call_stack = []
        self._pending_op = None
        self.model.restore_state(state["model"], id_of)


class SptLoopStats:
    """Simulated SPT statistics of one loop.

    Cycle totals accumulate as integer ticks (``*_ticks`` fields); the
    ``*_cycles`` properties expose float cycles (exact conversions)."""

    def __init__(self, func_name: str, header: str):
        self.func_name = func_name
        self.header = header
        self.invocations = 0
        self.iterations = 0
        self.seq_ticks = 0
        self.spt_ticks = 0
        #: Dynamic operations executed speculatively / re-executed.
        self.spec_ops = 0
        self.reexec_ops = 0
        self.reexec_ticks = 0
        self.spec_ticks = 0
        #: Dynamic instruction count per iteration (body size, Fig 17).
        self.total_ops = 0
        self.prefork_ticks = 0

    @property
    def seq_cycles(self) -> float:
        return self.seq_ticks / TICKS_PER_CYCLE

    @property
    def spt_cycles(self) -> float:
        return self.spt_ticks / TICKS_PER_CYCLE

    @property
    def reexec_cycles(self) -> float:
        return self.reexec_ticks / TICKS_PER_CYCLE

    @property
    def spec_cycles(self) -> float:
        return self.spec_ticks / TICKS_PER_CYCLE

    @property
    def prefork_cycles(self) -> float:
        return self.prefork_ticks / TICKS_PER_CYCLE

    @property
    def key(self) -> Tuple[str, str]:
        return (self.func_name, self.header)

    @property
    def loop_speedup(self) -> float:
        return self.seq_ticks / self.spt_ticks if self.spt_ticks else 1.0

    @property
    def misspeculation_ratio(self) -> float:
        return self.reexec_ops / self.spec_ops if self.spec_ops else 0.0

    @property
    def reexecution_ratio(self) -> float:
        """Fraction of speculative computation re-executed (Fig 19 y-axis)."""
        return self.reexec_ticks / self.spec_ticks if self.spec_ticks else 0.0

    @property
    def avg_body_ops(self) -> float:
        return self.total_ops / self.iterations if self.iterations else 0.0

    @property
    def prefork_fraction(self) -> float:
        return self.prefork_ticks / self.seq_ticks if self.seq_ticks else 0.0

    def __repr__(self) -> str:
        return (
            f"SptLoopStats({self.func_name}:{self.header}, "
            f"speedup={self.loop_speedup:.2f}, "
            f"misspec={self.misspeculation_ratio:.3f})"
        )


def _post_fork_writes(trace: IterationTrace):
    """Register and memory locations the main thread redefines after the
    fork, with (value-at-fork, final-value)."""
    reg: Dict[str, Tuple] = {}
    mem: Dict[int, Tuple] = {}
    for op in trace.ops:
        if op.pre_fork:
            continue
        if op.def_name is not None:
            if op.def_name in reg:
                reg[op.def_name] = (reg[op.def_name][0], op.def_new)
            else:
                reg[op.def_name] = (op.def_old, op.def_new)
        if op.store_addr is not None:
            if op.store_addr in mem:
                mem[op.store_addr] = (mem[op.store_addr][0], op.store_new)
            else:
                mem[op.store_addr] = (op.store_old, op.store_new)
        if op.mem_writes:
            for addr, (old, new) in op.mem_writes.items():
                if addr in mem:
                    mem[addr] = (mem[addr][0], new)
                else:
                    mem[addr] = (old, new)
    return reg, mem


def _replay_speculative(
    spec: IterationTrace, post_reg: Dict[str, Tuple], post_mem: Dict[int, Tuple]
) -> Tuple[int, int]:
    """Walk the speculative iteration, propagating misspeculation.

    Returns (re-executed ticks, re-executed op count)."""
    tainted_regs: Set[str] = set()
    clean_regs: Set[str] = set()
    tainted_addrs: Set[int] = set()
    clean_addrs: Set[int] = set()
    reexec_ticks = 0
    reexec_ops = 0

    def stale_reg(name: str) -> bool:
        if name in clean_regs or name in tainted_regs:
            return False  # redefined this iteration
        entry = post_reg.get(name)
        return entry is not None and entry[0] != entry[1]

    def stale_addr(addr: int) -> bool:
        if addr in clean_addrs or addr in tainted_addrs:
            return False
        entry = post_mem.get(addr)
        return entry is not None and entry[0] != entry[1]

    for op in spec.ops:
        tainted = False
        for name in op.uses:
            if name in tainted_regs or stale_reg(name):
                tainted = True
                break
        if not tainted and op.load_addr is not None:
            if op.load_addr in tainted_addrs or stale_addr(op.load_addr):
                tainted = True
        if not tainted and op.mem_reads:
            for addr in op.mem_reads:
                if addr in tainted_addrs or stale_addr(addr):
                    tainted = True
                    break

        if tainted:
            reexec_ticks += op.ticks
            reexec_ops += 1
            if op.def_name is not None:
                tainted_regs.add(op.def_name)
                clean_regs.discard(op.def_name)
            if op.store_addr is not None:
                tainted_addrs.add(op.store_addr)
                clean_addrs.discard(op.store_addr)
            if op.mem_writes:
                for addr in op.mem_writes:
                    tainted_addrs.add(addr)
                    clean_addrs.discard(addr)
        else:
            # A clean redefinition heals the location: later readers
            # observe a correct value even if an earlier op this
            # iteration tainted it.
            if op.def_name is not None:
                clean_regs.add(op.def_name)
                tainted_regs.discard(op.def_name)
            if op.store_addr is not None:
                clean_addrs.add(op.store_addr)
                tainted_addrs.discard(op.store_addr)
            if op.mem_writes:
                for addr in op.mem_writes:
                    clean_addrs.add(addr)
                    tainted_addrs.discard(addr)
    return reexec_ticks, reexec_ops


def simulate_spt_loop(collector: SptTraceCollector, telemetry=None) -> SptLoopStats:
    """Recombine the collected traces into SPT rounds and total up the
    loop's sequential vs. SPT execution time.

    With enabled ``telemetry``, every round emits one ``spt.round``
    event (fork, commit, re-execution outcome) and the fork/commit/
    misspeculation totals accumulate as ``spt.*`` counters.
    """
    if telemetry is None:
        from repro.obs.telemetry import NULL_TELEMETRY

        telemetry = NULL_TELEMETRY
    observed = telemetry.enabled
    loop_key = f"{collector.func_name}:{collector.header}"
    stats = SptLoopStats(collector.func_name, collector.header)
    for invocation, iterations in enumerate(collector.invocations):
        if not iterations:
            continue
        stats.invocations += 1
        stats.iterations += len(iterations)
        for trace in iterations:
            stats.seq_ticks += trace.total_ticks
            stats.total_ops += len(trace.ops)
            stats.prefork_ticks += trace.pre_ticks()

        index = 0
        round_index = 0
        while index < len(iterations):
            main = iterations[index]
            if index + 1 < len(iterations):
                spec = iterations[index + 1]
                post_reg, post_mem = _post_fork_writes(main)
                reexec_ticks, reexec_ops = _replay_speculative(
                    spec, post_reg, post_mem
                )
                t_pre = main.pre_ticks()
                t_post = main.post_ticks()
                t_spec = spec.total_ticks
                round_ticks = (
                    t_pre
                    + FORK_TICKS
                    + max(t_post, t_spec)
                    + COMMIT_TICKS
                    + reexec_ticks
                )
                stats.spt_ticks += round_ticks
                stats.spec_ops += len(spec.ops)
                stats.spec_ticks += t_spec
                stats.reexec_ops += reexec_ops
                stats.reexec_ticks += reexec_ticks
                if observed:
                    telemetry.count("spt.rounds")
                    telemetry.count("spt.forks")
                    telemetry.count("spt.commits")
                    telemetry.count("spt.reexec_ops", reexec_ops)
                    if reexec_ops:
                        telemetry.count("spt.misspeculation_events")
                    telemetry.event(
                        "spt.round",
                        loop=loop_key,
                        invocation=invocation,
                        round=round_index,
                        committed=True,
                        spec_ops=len(spec.ops),
                        reexec_ops=reexec_ops,
                        reexec_cycles=round(reexec_ticks / TICKS_PER_CYCLE, 3),
                        round_cycles=round(round_ticks / TICKS_PER_CYCLE, 3),
                    )
                index += 2
            else:
                # Unpaired trailing iteration: main runs it alone; the
                # fork it issued spawns a doomed thread (killed at exit).
                stats.spt_ticks += main.total_ticks + FORK_TICKS
                if observed:
                    telemetry.count("spt.forks")
                    telemetry.count("spt.wasted_forks")
                    telemetry.event(
                        "spt.round",
                        loop=loop_key,
                        invocation=invocation,
                        round=round_index,
                        committed=False,
                        spec_ops=0,
                        reexec_ops=0,
                    )
                index += 1
            round_index += 1
    if observed:
        telemetry.count("spt.loops_simulated")
    return stats
