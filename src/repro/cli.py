"""Command-line interface.

Usage (also available as ``python -m repro``):

    repro compile prog.c --config best        # two-pass SPT compilation
    repro run prog.c --args 100               # interpret a MiniC program
    repro dump-ir prog.c [--ssa]              # lower (and SSA-convert)
    repro simulate prog.c --args 500          # compile + SPT machine model
    repro explain prog.c [--loop f:header]    # why was each loop (not) selected
    repro perf record prog.c                  # measure + append to the ledger
    repro perf check --baseline ledger.jsonl  # CI regression verdict
    repro report table1 fig14 ...             # regenerate paper results

Compile-like commands accept observability flags: ``--trace-out t.json``
writes a Chrome trace-event timeline of the compilation, ``--log-out
run.jsonl`` a structured JSONL event log, and ``--obs-summary`` prints
the end-of-run telemetry table.

Every command accepts MiniC source (``.c``-style) or textual IR
(detected by the leading ``module``/``func`` keyword).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.loops import LoopNest
from repro.core.config import (
    SptConfig,
    anticipated_config,
    basic_config,
    best_config,
)
from repro.core.pipeline import Workload, compile_spt
from repro.frontend import compile_minic
from repro.ir import format_module, parse_module
from repro.ir.function import Module
from repro.machine.timing import TimingModel, TimingTracer
from repro.profiling import Machine

CONFIG_FACTORIES = {
    "basic": basic_config,
    "best": best_config,
    "anticipated": anticipated_config,
}


def load_module(path: str, name: str = None) -> Module:
    """Load MiniC or textual IR from ``path`` (``-`` for stdin)."""
    if path == "-":
        source = sys.stdin.read()
    else:
        with open(path) as handle:
            source = handle.read()
    stripped = source.lstrip()
    module_name = name or (path.rsplit("/", 1)[-1].split(".")[0])
    if stripped.startswith("module ") or stripped.startswith("func "):
        return parse_module(source)
    return compile_minic(source, name=module_name)


def _parse_args_list(raw: Optional[str]) -> List[int]:
    if not raw:
        return []
    return [int(part) for part in raw.split(",") if part.strip()]


def _config_from_args(args: argparse.Namespace) -> SptConfig:
    """Build the SptConfig for a compile-like command, applying the
    fast-path opt-out flags on top of the named preset."""
    config = CONFIG_FACTORIES[args.config]()
    overrides = _override_dict_from_args(args)
    return config.with_overrides(**overrides) if overrides else config


def _override_dict_from_args(args: argparse.Namespace) -> dict:
    """The SptConfig overrides shared by all compile-like commands."""
    overrides = {}
    if getattr(args, "no_fast_interp", False):
        overrides["fast_interp"] = False
    if getattr(args, "no_trace_interp", False):
        overrides["trace_interp"] = False
    if getattr(args, "no_vector_timing", False):
        overrides["vector_timing"] = False
    if getattr(args, "no_incremental_cost", False):
        overrides["incremental_cost"] = False
    if getattr(args, "search_deadline_ms", None) is not None:
        overrides["search_deadline_ms"] = args.search_deadline_ms
    if getattr(args, "phase_deadline_ms", None) is not None:
        overrides["phase_deadline_ms"] = args.phase_deadline_ms
    if getattr(args, "no_ladder", False):
        overrides["enable_degradation_ladder"] = False
    return overrides


def _telemetry_from_args(args: argparse.Namespace):
    """Build a Telemetry instance from the --trace-out / --log-out /
    --obs-summary flags, or None when observability is off."""
    from repro.obs import ChromeTraceSink, JsonlSink, Telemetry

    sinks = []
    if getattr(args, "trace_out", None):
        sinks.append(ChromeTraceSink(args.trace_out))
    if getattr(args, "log_out", None):
        sinks.append(JsonlSink(args.log_out))
    if (
        not sinks
        and not getattr(args, "obs_summary", False)
        and not getattr(args, "metrics_out", None)
    ):
        return None
    return Telemetry(sinks=sinks, detail=getattr(args, "obs_detail", False))


def _finish_telemetry(telemetry, args: argparse.Namespace) -> None:
    """Flush sinks, export the metrics snapshot, and print the summary
    table if requested."""
    if telemetry is None:
        return
    telemetry.close()
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        from repro.obs import metrics_json, prometheus_text

        render = (
            metrics_json if metrics_out.endswith(".json") else prometheus_text
        )
        with open(metrics_out, "w") as handle:
            handle.write(render(telemetry))
    if getattr(args, "obs_summary", False):
        from repro.obs import summary_text

        print()
        print(summary_text(telemetry))


def cmd_run(args: argparse.Namespace) -> int:
    module = load_module(args.source)
    machine = Machine(module, fuel=args.fuel)
    tracer = None
    if args.timing:
        tracer = TimingTracer(TimingModel())
        machine.add_tracer(tracer)
    result = machine.run(args.entry, _parse_args_list(args.args))
    print(f"result: {result}")
    if tracer is not None:
        print(f"instructions: {tracer.instructions}")
        print(f"cycles:       {tracer.cycles:.0f}")
        print(f"IPC:          {tracer.ipc:.3f}")
    return 0


def cmd_dump_ir(args: argparse.Namespace) -> int:
    module = load_module(args.source)
    if args.ssa:
        from repro.ssa import build_ssa, optimize

        for func in module.functions.values():
            build_ssa(func)
            if args.optimize:
                optimize(func)
    print(format_module(module), end="")
    return 0


def _phase_checkpoints_from_args(args: argparse.Namespace, telemetry):
    """Build the PhaseCheckpointStore for --checkpoint-phases, or None."""
    if not getattr(args, "checkpoint_phases", False):
        return None
    from repro.checkpoint.phases import PhaseCheckpointStore

    directory = getattr(args, "checkpoint_dir", None)
    if directory is not None:
        directory = os.path.join(directory, "phases")
    return PhaseCheckpointStore(directory, telemetry=telemetry)


def cmd_compile(args: argparse.Namespace) -> int:
    module = load_module(args.source)
    config = _config_from_args(args)
    workload = Workload(entry=args.entry, args=tuple(_parse_args_list(args.args)))
    telemetry = _telemetry_from_args(args)
    phase_checkpoints = _phase_checkpoints_from_args(args, telemetry)
    result = compile_spt(
        module, config, workload, telemetry=telemetry,
        phase_checkpoints=phase_checkpoints,
    )

    print(f"configuration: {args.config}")
    print(f"loop candidates: {len(result.candidates)}")
    for candidate in result.candidates:
        partition = candidate.partition
        line = (
            f"  {candidate.func_name}:{candidate.loop.header:20s}"
            f" {candidate.category:22s}"
            f" size={candidate.dynamic_body_size:7.1f}"
            f" trip={candidate.trip_count:8.1f}"
        )
        if partition is not None and not partition.skipped_too_many_vcs:
            line += (
                f" cost={partition.cost:7.2f}"
                f" prefork={partition.prefork_size:6.1f}"
                f" vcs={len(partition.candidates)}"
            )
        if candidate.svp_applied:
            line += " [svp]"
        print(line)
    print(f"selected SPT loops: {[i.header for i in result.spt_loops]}")
    if result.svp_infos:
        print(f"value predictions: {result.svp_infos}")
    if phase_checkpoints is not None:
        stats = phase_checkpoints.stats
        print(
            f"phase checkpoints: saves={stats.saves} "
            f"restores={stats.restores} corrupt={stats.corrupt}"
        )
    if args.emit_ir:
        print()
        print(format_module(module), end="")
    _finish_telemetry(telemetry, args)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.perf import simulate_program

    module = load_module(args.source)
    config = _config_from_args(args)
    train = _parse_args_list(args.train_args or args.args)
    workload = Workload(entry=args.entry, args=tuple(train))
    telemetry = _telemetry_from_args(args)
    phase_checkpoints = _phase_checkpoints_from_args(args, telemetry)
    result = compile_spt(
        module, config, workload, telemetry=telemetry,
        phase_checkpoints=phase_checkpoints,
    )
    if not result.spt_loops:
        print("no SPT loops selected; nothing to simulate")
        _finish_telemetry(telemetry, args)
        return 1

    checkpoint_every = getattr(args, "checkpoint_every", 0) or 0
    resume_from = getattr(args, "resume_from", None)
    if checkpoint_every or resume_from is not None:
        from repro.checkpoint import run_checkpointed_simulation

        outcome, report = run_checkpointed_simulation(
            module, result, config, entry=args.entry,
            args=tuple(_parse_args_list(args.args)), fuel=args.fuel,
            checkpoint_every=checkpoint_every, resume_from=resume_from,
            checkpoint_dir=getattr(args, "checkpoint_dir", None),
            telemetry=telemetry,
        )
        if report.resumed_from is not None:
            print(f"resumed from snapshot at {report.resumed_from} "
                  f"executed instructions")
        if checkpoint_every:
            print(f"snapshots saved: {len(report.saved_at)} "
                  f"(key {report.key[:12]}..., dir {report.directory})")
    else:
        outcome = simulate_program(
            module, result, entry=args.entry,
            args=_parse_args_list(args.args), fuel=args.fuel,
            telemetry=telemetry,
        )
    print(f"result: {outcome.result}")
    print(f"single-core cycles: {outcome.seq_cycles:.0f}"
          f"  (IPC {outcome.ipc:.3f})")
    for loop in outcome.loops:
        print(
            f"  loop {loop.func_name}:{loop.header}: "
            f"speedup {loop.speedup:.2f}x, "
            f"misspec {loop.misspeculation_ratio:.3f}, "
            f"{loop.iterations} iterations"
        )
    if outcome.spt_cycles > 0:
        print(f"program SPT cycles: {outcome.spt_cycles:.0f} "
              f"(speedup {outcome.program_speedup:.3f}x)")
    _finish_telemetry(telemetry, args)
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    from repro.analysis.depgraph import build_dep_graph
    from repro.core.costgraph import build_cost_graph
    from repro.core.vcdep import VCDepGraph
    from repro.core.violation import find_violation_candidates
    from repro.report.dot import (
        cfg_to_dot,
        costgraph_to_dot,
        depgraph_to_dot,
        vcdep_to_dot,
    )
    from repro.ssa import build_ssa, optimize

    module = load_module(args.source)
    func = module.functions.get(args.function)
    if func is None:
        print(f"no function {args.function!r}", file=sys.stderr)
        return 2
    if args.what != "cfg" or args.ssa:
        build_ssa(func)
        optimize(func)
    if args.what == "cfg":
        print(cfg_to_dot(func))
        return 0

    nest = LoopNest.build(func)
    if args.loop:
        loop = next((l for l in nest.loops if l.header == args.loop), None)
    else:
        loop = nest.loops[0] if nest.loops else None
    if loop is None:
        print("no such loop (use --loop <header-label>)", file=sys.stderr)
        return 2
    graph = build_dep_graph(module, func, loop)
    if args.what == "depgraph":
        print(depgraph_to_dot(graph))
        return 0
    candidates = find_violation_candidates(graph)
    if args.what == "costgraph":
        print(costgraph_to_dot(build_cost_graph(graph, candidates)))
        return 0
    print(vcdep_to_dot(VCDepGraph(graph, candidates)))
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    import json

    module = load_module(args.source)
    config = _config_from_args(args)
    workload = Workload(entry=args.entry, args=tuple(_parse_args_list(args.args)))
    telemetry = _telemetry_from_args(args)
    result = compile_spt(module, config, workload, telemetry=telemetry)
    summary = result.to_dict()
    if result.trace_stats:
        # Added here, NOT in to_dict(): batch manifests embed to_dict()
        # and must stay byte-identical across trace_interp on/off.
        summary["trace_interp"] = result.trace_stats
    print(json.dumps(summary, indent=2))
    _finish_telemetry(telemetry, args)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.report import explain_text

    module = load_module(args.source)
    config = _config_from_args(args)
    workload = Workload(entry=args.entry, args=tuple(_parse_args_list(args.args)))
    telemetry = _telemetry_from_args(args)
    if args.profile and telemetry is None:
        # --profile needs a span tree even when no sink flag was given.
        from repro.obs import Telemetry

        telemetry = Telemetry()
    result = compile_spt(module, config, workload, telemetry=telemetry)
    print(explain_text(result, config, loop=args.loop, verbose=not args.brief))
    if args.cache_dir is not None:
        from repro.batch import ResultCache
        from repro.batch.worker import probe_cache
        from repro.report.explain import cache_probe_text

        with open(args.source) as handle:
            source = handle.read()
        cache = ResultCache(args.cache_dir or None)
        probe = probe_cache(source, config, workload, cache)
        if telemetry is not None:
            telemetry.merge_counters(cache.stats.as_counters())
        print()
        print(cache_probe_text(probe))
    if args.profile:
        from repro.obs import profile_text

        print()
        print(profile_text(telemetry))
    _finish_telemetry(telemetry, args)
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.batch import dump_manifest, run_batch

    overrides = _override_dict_from_args(args)

    telemetry = _telemetry_from_args(args)

    def progress(entry):
        status = entry.get("status")
        if status == "ok":
            summary = entry["summary"]
            selected = len(summary.get("selected", []))
            total = len(summary.get("candidates", []))
            origin = "warm" if entry.get("cached") else "cold"
            print(
                f"  ok      {entry['path']:32s} {selected}/{total} loops"
                f" selected [{origin}]"
            )
        else:
            error = entry.get("error", {})
            detail = error.get("message") or error.get("type") or "?"
            print(f"  {status:7s} {entry['path']:32s} {detail}")

    status = None
    if not args.quiet and sys.stderr.isatty():
        # A single live status line, redrawn in place on stderr so it
        # never pollutes piped stdout output.
        def status(line):
            sys.stderr.write(f"\r\x1b[K{line}")
            sys.stderr.flush()

    try:
        result = run_batch(
            args.inputs,
            config_name=args.config,
            config_overrides=overrides,
            entry=args.entry,
            args=tuple(_parse_args_list(args.args)),
            fuel=args.fuel,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            cache_max_entries=args.cache_max_entries,
            telemetry=telemetry,
            progress=progress if not args.quiet else None,
            stall_timeout=args.stall_timeout,
            program_timeout=args.program_timeout,
            progress_path=args.progress_json,
            status=status,
            resume=args.resume,
            journal_dir=args.journal_dir,
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    finally:
        if status is not None:
            sys.stderr.write("\r\x1b[K")
            sys.stderr.flush()

    stats = result.stats
    cache = stats["cache"]
    print(
        f"batch: {stats['ok']}/{stats['programs']} ok"
        f" ({stats['errors']} errors, {stats['crashed']} crashed,"
        f" {stats['timeouts']} timeouts)"
        f" in {stats['wall_seconds']:.2f}s with {stats['jobs']} jobs"
        + (
            f", {stats['resumed_programs']} resumed from journal"
            if stats.get("resumed_programs")
            else ""
        )
    )
    if stats["degradations"] or stats["degraded_programs"]:
        print(
            f"resilience: {stats['degradations']} contained degradation(s)"
            f" across the batch, {stats['degraded_programs']} program(s)"
            f" finished on the degraded retry"
        )
    if not args.no_cache:
        print(
            f"cache: {cache['hits']} hits / {cache['misses']} misses"
            f" ({cache['hit_rate']:.1%} hit rate),"
            f" {cache['writes']} writes, {cache['evictions']} evictions"
            f"  [{stats['cache_dir']}]"
        )
    if args.manifest:
        dump_manifest(result.manifest, args.manifest)
        print(f"manifest written to {args.manifest}")
    if args.stats_out:
        with open(args.stats_out, "w") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"run stats written to {args.stats_out}")
    if args.progress_json:
        print(f"live progress document written to {args.progress_json}")
    _finish_telemetry(telemetry, args)
    return 0 if result.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import run_daemon

    return run_daemon(
        workers=args.workers,
        host=args.host,
        port=args.port,
        stdio=args.stdio,
        queue_limit=args.queue_limit,
        request_timeout_s=args.request_timeout,
        program_timeout_s=args.program_timeout,
        mem_cache_entries=args.mem_cache_entries,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        ready_file=args.ready_file,
        request_log_path=args.request_log,
        max_body_bytes=args.max_body_bytes,
        heartbeat_s=args.heartbeat,
    )


def cmd_report(args: argparse.Namespace) -> int:
    from repro.report import (
        figure14_text,
        figure15_text,
        figure16_text,
        figure17_text,
        figure18_text,
        figure19_text,
        table1_text,
    )

    generators = {
        "table1": table1_text,
        "fig14": figure14_text,
        "fig15": figure15_text,
        "fig16": figure16_text,
        "fig17": figure17_text,
        "fig18": figure18_text,
        "fig19": figure19_text,
    }
    targets = args.targets or list(generators)
    for target in targets:
        if target not in generators:
            print(f"unknown report target {target!r}; "
                  f"choose from {sorted(generators)}", file=sys.stderr)
            return 2
    for target in targets:
        print()
        print(generators[target]())
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.testkit import (
        ORACLE_NAMES,
        base_seed,
        load_corpus,
        replay_entry,
        run_campaign,
        save_reproducer,
    )

    oracles = None
    if args.oracle:
        oracles = sorted(set(args.oracle))
        unknown = [name for name in oracles if name not in ORACLE_NAMES]
        if unknown:
            print(
                f"unknown oracle(s) {', '.join(unknown)}; "
                f"choose from {', '.join(ORACLE_NAMES)}",
                file=sys.stderr,
            )
            return 2

    telemetry = _telemetry_from_args(args)
    seed = args.seed if args.seed is not None else base_seed()

    failed = False
    if args.corpus_dir and not args.skip_corpus_replay:
        entries = load_corpus(args.corpus_dir)
        for entry in entries:
            detail = replay_entry(entry)
            if detail is not None:
                failed = True
                print(f"corpus regression {entry.name}: {detail}")
        if entries:
            print(f"corpus: {len(entries)} reproducer(s) replayed")

    campaign_kwargs = {}
    if telemetry is not None:
        campaign_kwargs["telemetry"] = telemetry
    report = run_campaign(
        seed,
        args.iterations,
        oracles=oracles,
        shrink=not args.no_shrink,
        max_failures=args.max_failures,
        **campaign_kwargs,
    )
    for line in report.summary_lines():
        print(line)
    for failure in report.failures:
        print()
        print(
            f"FAILURE oracle={failure.oracle} seed={failure.seed} "
            f"iteration={failure.iteration}"
        )
        print(f"  {failure.detail}")
        if args.corpus_dir:
            path = save_reproducer(args.corpus_dir, failure)
            print(f"  reproducer written to {path}")
            if failure.snapshot is not None:
                print(
                    f"  snapshot anchor at {failure.snapshot['executed']} "
                    f"executed instructions written alongside"
                )
        else:
            print("  minimized program:")
            for line in failure.reproducer.source().splitlines():
                print(f"    {line}")
    _finish_telemetry(telemetry, args)
    return 1 if (failed or report.failures) else 0


def _expand_perf_sources(sources: List[str]) -> List[str]:
    from repro.batch.driver import expand_inputs

    return expand_inputs(sources)


def cmd_perf_record(args: argparse.Namespace) -> int:
    from repro.obs import Ledger
    from repro.perf import record_program

    config = _config_from_args(args)
    ledger = Ledger(args.ledger_dir)
    try:
        paths = _expand_perf_sources(args.sources)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for path in paths:
        record, _ = record_program(
            path,
            kind=args.kind,
            config=config,
            entry=args.entry,
            args=_parse_args_list(args.args),
            fuel=args.fuel,
        )
        run_id = ledger.append(record)
        cycles = record.get("cycles")
        line = (
            f"recorded {run_id}  {args.kind:8s} {record['workload']['name']:24s}"
            f" wall {record['wall_s']:.3f}s"
        )
        if cycles is not None:
            line += f"  cycles {cycles:.0f}"
        print(line)
    print(f"ledger: {ledger.path} ({len(ledger)} records)")
    return 0


def cmd_perf_list(args: argparse.Namespace) -> int:
    from repro.obs import Ledger
    from repro.report.tables import format_table

    ledger = Ledger(args.ledger_dir)
    records = ledger.runs(kind=args.kind, workload=args.workload)
    if not records:
        print(f"no matching records in {ledger.path}")
        return 0
    rows = []
    for record in records:
        cycles = record.get("cycles")
        rows.append(
            (
                record.get("run_id", "?"),
                record.get("kind", "?"),
                record.get("workload", {}).get("name", "?"),
                str(record.get("fingerprint", ""))[:10],
                f"{record.get('wall_s') or 0:.3f}",
                "-" if cycles is None else f"{cycles:.0f}",
                record.get("host", "?"),
            )
        )
    print(
        format_table(
            ["run", "kind", "workload", "config", "wall s", "cycles", "host"],
            rows,
            title=f"ledger: {ledger.path}",
        )
    )
    return 0


def cmd_perf_diff(args: argparse.Namespace) -> int:
    from repro.obs import Ledger
    from repro.perf import diff_text

    ledger = Ledger(args.ledger_dir)
    try:
        old = ledger.resolve(args.run_a)
        new = ledger.resolve(args.run_b)
    except LookupError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(diff_text(old, new))
    return 0


def cmd_perf_check(args: argparse.Namespace) -> int:
    from repro.obs import Ledger
    from repro.perf import check_regression

    baseline = Ledger(args.baseline).load()
    current = Ledger(args.ledger_dir).load()
    if not baseline:
        print(f"no baseline records under {args.baseline}", file=sys.stderr)
        return 2
    gate_wall = {"auto": None, "on": True, "off": False}[args.gate_wall]
    report = check_regression(
        baseline,
        current,
        wall_threshold=args.wall_threshold,
        floor_ms=args.floor_ms,
        gate_wall=gate_wall,
    )
    for line in report.lines():
        print(line)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-driven speculative parallelization (PLDI 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_source(p):
        p.add_argument("source", help="MiniC or textual-IR file ('-' for stdin)")
        p.add_argument("--entry", default="main", help="entry function")
        p.add_argument("--args", default="", help="comma-separated int args")
        p.add_argument("--fuel", type=int, default=50_000_000)

    run_p = sub.add_parser("run", help="interpret a program")
    add_source(run_p)
    run_p.add_argument("--timing", action="store_true", help="report cycles/IPC")
    run_p.set_defaults(fn=cmd_run)

    dump_p = sub.add_parser("dump-ir", help="lower and print the IR")
    add_source(dump_p)
    dump_p.add_argument("--ssa", action="store_true", help="convert to SSA")
    dump_p.add_argument("--optimize", action="store_true", help="run cleanup passes")
    dump_p.set_defaults(fn=cmd_dump_ir)

    def add_config_options(p):
        p.add_argument("--config", choices=sorted(CONFIG_FACTORIES), default="best")
        p.add_argument(
            "--no-fast-interp", action="store_true",
            help="profile with the reference interpreter instead of the "
                 "block-compiled fast path",
        )
        p.add_argument(
            "--no-trace-interp", action="store_true",
            help="disable hot-trace (superblock) compilation on the "
                 "fast interpreter; block-compiled execution only",
        )
        p.add_argument(
            "--no-vector-timing", action="store_true",
            help="use per-op timing accounting instead of the "
                 "block-batched vectorized timing engine",
        )
        p.add_argument(
            "--no-incremental-cost", action="store_true",
            help="use full-recompute cost evaluation in the partition search",
        )
        p.add_argument(
            "--search-deadline-ms", type=float, default=None, metavar="MS",
            help="anytime partition-search deadline: on expiry keep the "
                 "best-so-far legal partition (flagged optimal=false)",
        )
        p.add_argument(
            "--phase-deadline-ms", type=float, default=None, metavar="MS",
            help="wall-clock watchdog per firewalled pipeline phase; an "
                 "overrunning phase degrades its loop instead of wedging",
        )
        p.add_argument(
            "--no-ladder", action="store_true",
            help="disable the graceful-degradation retry ladder (a "
                 "contained fault skips the loop immediately)",
        )

    def add_obs_options(p):
        p.add_argument(
            "--trace-out", default=None, metavar="PATH",
            help="write a Chrome trace-event timeline of the compilation "
                 "(open in chrome://tracing or Perfetto)",
        )
        p.add_argument(
            "--log-out", default=None, metavar="PATH",
            help="write a JSONL structured log of spans, events and counters",
        )
        p.add_argument(
            "--obs-summary", action="store_true",
            help="print the end-of-run telemetry summary table",
        )
        p.add_argument(
            "--metrics-out", default=None, metavar="PATH",
            help="write the metrics snapshot (counters, gauges, span "
                 "histograms): Prometheus text, or canonical JSON when "
                 "PATH ends in .json",
        )
        p.add_argument(
            "--obs-detail", action="store_true",
            help="also collect expensive per-event accounting "
                 "(per-hook tracer event counts)",
        )

    def add_checkpoint_options(p):
        p.add_argument(
            "--checkpoint-dir", default=None, metavar="DIR",
            help="snapshot store root (default: $REPRO_CHECKPOINT_DIR, "
                 "else <cache-dir>/checkpoints)",
        )
        p.add_argument(
            "--checkpoint-phases", action="store_true",
            help="durably checkpoint completed compile phases (the "
                 "partition search per loop) so a crashed or killed "
                 "compile resumes past them on re-run",
        )

    compile_p = sub.add_parser("compile", help="two-pass SPT compilation")
    add_source(compile_p)
    add_config_options(compile_p)
    add_obs_options(compile_p)
    add_checkpoint_options(compile_p)
    compile_p.add_argument(
        "--emit-ir", action="store_true", help="print the transformed IR"
    )
    compile_p.set_defaults(fn=cmd_compile)

    sim_p = sub.add_parser("simulate", help="compile and run the SPT machine model")
    add_source(sim_p)
    add_config_options(sim_p)
    add_obs_options(sim_p)
    add_checkpoint_options(sim_p)
    sim_p.add_argument("--train-args", default=None,
                       help="profiling args (defaults to --args)")
    sim_p.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="durably snapshot the whole simulation every N executed "
             "instructions (at the next block boundary); 0 disables",
    )
    sim_p.add_argument(
        "--resume-from", default=None, metavar="WHEN",
        help="resume the simulation from a stored snapshot: 'latest' "
             "or an executed-instruction index upper bound",
    )
    sim_p.set_defaults(fn=cmd_simulate)

    explain_p = sub.add_parser(
        "explain",
        help="compile and explain why each loop was (not) selected",
    )
    add_source(explain_p)
    add_config_options(explain_p)
    add_obs_options(explain_p)
    explain_p.add_argument(
        "--loop", default=None, metavar="FUNC:HEADER",
        help="restrict the report to one loop (e.g. main:for_head)",
    )
    explain_p.add_argument(
        "--brief", action="store_true",
        help="omit the pre-fork region statement listing",
    )
    explain_p.add_argument(
        "--cache-dir", nargs="?", const="", default=None, metavar="DIR",
        help="also report whether this result is warm in the batch "
             "result cache (default dir when no DIR is given)",
    )
    explain_p.add_argument(
        "--profile", action="store_true",
        help="append the per-phase self-time profile and flamegraph "
             "folded stacks aggregated from the compilation span tree",
    )
    explain_p.set_defaults(fn=cmd_explain)

    batch_p = sub.add_parser(
        "batch",
        help="compile many programs in parallel with a persistent "
             "result cache",
    )
    batch_p.add_argument(
        "inputs", nargs="+",
        help="program files, directories, or glob patterns",
    )
    batch_p.add_argument("--entry", default="main", help="entry function")
    batch_p.add_argument("--args", default="", help="comma-separated int args")
    batch_p.add_argument("--fuel", type=int, default=50_000_000)
    add_config_options(batch_p)
    add_obs_options(batch_p)
    batch_p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: os.cpu_count())",
    )
    batch_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache location "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    batch_p.add_argument(
        "--no-cache", action="store_true",
        help="compile everything cold; do not read or write the cache",
    )
    batch_p.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="evict oldest cache entries beyond N after the batch",
    )
    batch_p.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="write the machine-readable batch manifest (JSON)",
    )
    batch_p.add_argument(
        "--stats-out", default=None, metavar="PATH",
        help="write run statistics (wall time, jobs, cache hit rate)",
    )
    batch_p.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-program progress lines",
    )
    batch_p.add_argument(
        "--stall-timeout", type=float, default=None, metavar="S",
        help="seconds of total pool silence before remaining tasks are "
             "declared lost (default: config batch_stall_timeout_s, 60)",
    )
    batch_p.add_argument(
        "--program-timeout", type=float, default=None, metavar="S",
        help="per-program wall-clock budget in each worker; an "
             "overrunning program is retried once on the degraded "
             "ladder configuration, then reported as status=timeout",
    )
    batch_p.add_argument(
        "--progress-json", default=None, metavar="PATH",
        help="continuously (re)write a machine-readable progress "
             "document (schema repro-batch-progress/1) for external "
             "watchers",
    )
    batch_p.add_argument(
        "--resume", action="store_true",
        help="journal every finished program durably and replay a "
             "previous (crashed or killed) run of this exact batch, "
             "re-queueing only unfinished programs",
    )
    batch_p.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="where --resume journals live (default: "
             "<checkpoint-dir>/batches)",
    )
    batch_p.set_defaults(fn=cmd_batch)

    serve_p = sub.add_parser(
        "serve",
        help="run the warm-worker compilation daemon "
             "(JSON-over-HTTP on localhost, or JSON-RPC on stdio)",
    )
    serve_p.add_argument(
        "--workers", type=int, default=4,
        help="pre-forked warm worker processes (default 4)",
    )
    serve_p.add_argument(
        "--host", default="127.0.0.1",
        help="HTTP bind address (default 127.0.0.1; keep it local)",
    )
    serve_p.add_argument(
        "--port", type=int, default=8750,
        help="HTTP port; 0 picks a free one (read it back from "
             "--ready-file)",
    )
    serve_p.add_argument(
        "--stdio", action="store_true",
        help="speak JSON-RPC over stdin/stdout instead of HTTP",
    )
    serve_p.add_argument(
        "--queue-limit", type=int, default=64,
        help="max in-flight requests before 429 + Retry-After "
             "(default 64)",
    )
    serve_p.add_argument(
        "--request-timeout", type=float, default=60.0,
        help="per-request deadline in seconds; a miss answers 504 "
             "(default 60)",
    )
    serve_p.add_argument(
        "--program-timeout", type=float, default=None,
        help="per-compilation watchdog seconds inside the worker "
             "(SIGALRM + one degraded-ladder retry, like repro batch)",
    )
    serve_p.add_argument(
        "--mem-cache-entries", type=int, default=256,
        help="in-memory LRU capacity in results; 0 disables the "
             "memory tier (default 256)",
    )
    serve_p.add_argument(
        "--cache-dir", default=None,
        help="content-addressed disk cache directory shared with "
             "repro batch (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    serve_p.add_argument(
        "--no-cache", action="store_true",
        help="disable the disk cache tier (memory tier still applies)",
    )
    serve_p.add_argument(
        "--ready-file", default=None,
        help="write a JSON readiness document (pid, transport, actual "
             "port) here once requests are accepted",
    )
    serve_p.add_argument(
        "--request-log", default=None,
        help="append one JSONL record per served request to this file",
    )
    serve_p.add_argument(
        "--max-body-bytes", type=int, default=4 * 1024 * 1024,
        help="reject request bodies larger than this with 413 "
             "(default 4 MiB)",
    )
    serve_p.add_argument(
        "--heartbeat", type=float, default=None,
        help="worker heartbeat period in seconds (default: off; "
             "liveness comes from the claim slots)",
    )
    serve_p.set_defaults(fn=cmd_serve)

    perf_p = sub.add_parser(
        "perf",
        help="record runs into the performance ledger and compare them",
    )
    perf_sub = perf_p.add_subparsers(dest="perf_command", required=True)

    def add_ledger_dir(p):
        p.add_argument(
            "--ledger-dir", default=None, metavar="DIR",
            help="ledger location (default: $REPRO_LEDGER_DIR or "
                 ".repro/ledger); a .jsonl file is used directly",
        )

    perf_record_p = perf_sub.add_parser(
        "record",
        help="compile (or simulate) programs and append one ledger "
             "record per program",
    )
    perf_record_p.add_argument(
        "sources", nargs="+",
        help="program files, directories, or glob patterns",
    )
    perf_record_p.add_argument(
        "--kind", choices=["compile", "simulate"], default="compile",
        help="what to measure: compilation only, or compilation plus "
             "the SPT machine model (records simulated cycles)",
    )
    perf_record_p.add_argument("--entry", default="main")
    perf_record_p.add_argument("--args", default="",
                               help="comma-separated int args")
    perf_record_p.add_argument("--fuel", type=int, default=50_000_000)
    add_config_options(perf_record_p)
    add_ledger_dir(perf_record_p)
    perf_record_p.set_defaults(fn=cmd_perf_record)

    perf_list_p = perf_sub.add_parser("list", help="list ledger records")
    perf_list_p.add_argument("--kind", default=None,
                             help="filter by record kind")
    perf_list_p.add_argument("--workload", default=None,
                             help="filter by workload name")
    add_ledger_dir(perf_list_p)
    perf_list_p.set_defaults(fn=cmd_perf_list)

    perf_diff_p = perf_sub.add_parser(
        "diff",
        help="aligned metric table between two ledger records",
    )
    perf_diff_p.add_argument(
        "run_a", help="baseline run: a run-id prefix or @-N position"
    )
    perf_diff_p.add_argument(
        "run_b", help="candidate run: a run-id prefix or @-N position"
    )
    add_ledger_dir(perf_diff_p)
    perf_diff_p.set_defaults(fn=cmd_perf_diff)

    perf_check_p = perf_sub.add_parser(
        "check",
        help="noise-aware regression verdict of the current ledger "
             "against a baseline (CI exit code)",
    )
    perf_check_p.add_argument(
        "--baseline", required=True, metavar="PATH",
        help="baseline ledger directory or .jsonl file",
    )
    perf_check_p.add_argument(
        "--wall-threshold", type=float, default=0.5, metavar="FRAC",
        help="relative wall/self-time growth beyond which a matched "
             "record fails (default 0.5 = +50%%)",
    )
    perf_check_p.add_argument(
        "--floor-ms", type=float, default=25.0, metavar="MS",
        help="absolute growth floor below which wall-time noise never "
             "fails (default 25 ms)",
    )
    perf_check_p.add_argument(
        "--gate-wall", choices=["auto", "on", "off"], default="auto",
        help="wall-time gating: auto = only for same-host record pairs "
             "(deterministic metrics always gate)",
    )
    add_ledger_dir(perf_check_p)
    perf_check_p.set_defaults(fn=cmd_perf_check)

    report_p = sub.add_parser("report", help="regenerate paper tables/figures")
    report_p.add_argument("targets", nargs="*", help="table1 fig14 ... (default: all)")
    report_p.set_defaults(fn=cmd_report)

    dot_p = sub.add_parser("dot", help="emit Graphviz dumps of compiler graphs")
    dot_p.add_argument("source")
    dot_p.add_argument(
        "what", choices=["cfg", "depgraph", "costgraph", "vcdep"]
    )
    dot_p.add_argument("--function", default="main")
    dot_p.add_argument("--loop", default=None, help="loop header label")
    dot_p.add_argument("--ssa", action="store_true",
                       help="convert to SSA before dumping the CFG")
    dot_p.set_defaults(fn=cmd_dot)

    summary_p = sub.add_parser(
        "summary", help="compile and print a JSON compilation summary"
    )
    add_source(summary_p)
    add_config_options(summary_p)
    add_obs_options(summary_p)
    summary_p.set_defaults(fn=cmd_summary)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generated programs vs the oracle battery",
    )
    fuzz_p.add_argument(
        "--seed", type=int, default=None,
        help="campaign base seed (default: $REPRO_TEST_SEED or 0)",
    )
    fuzz_p.add_argument(
        "--iterations", type=int, default=100,
        help="number of generated programs (default 100)",
    )
    fuzz_p.add_argument(
        "--oracle", action="append", default=None, metavar="NAME",
        help="restrict to one oracle (repeatable): "
             "interp, cost, partition, spt",
    )
    fuzz_p.add_argument(
        "--corpus-dir", default=None, metavar="DIR",
        help="replay this regression corpus first, and write minimized "
             "reproducers for new failures into it",
    )
    fuzz_p.add_argument(
        "--skip-corpus-replay", action="store_true",
        help="with --corpus-dir, only write new reproducers",
    )
    fuzz_p.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without delta-debugging them first",
    )
    fuzz_p.add_argument(
        "--max-failures", type=int, default=1,
        help="stop after this many failures (0 = run the full campaign)",
    )
    add_obs_options(fuzz_p)
    fuzz_p.set_defaults(fn=cmd_fuzz)

    return parser


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Downstream pager/head closed early (`repro perf diff | head`);
        # detach stdout so the interpreter's shutdown flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
