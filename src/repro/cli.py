"""Command-line interface.

Usage (also available as ``python -m repro``):

    repro compile prog.c --config best        # two-pass SPT compilation
    repro run prog.c --args 100               # interpret a MiniC program
    repro dump-ir prog.c [--ssa]              # lower (and SSA-convert)
    repro simulate prog.c --args 500          # compile + SPT machine model
    repro explain prog.c [--loop f:header]    # why was each loop (not) selected
    repro report table1 fig14 ...             # regenerate paper results

Compile-like commands accept observability flags: ``--trace-out t.json``
writes a Chrome trace-event timeline of the compilation, ``--log-out
run.jsonl`` a structured JSONL event log, and ``--obs-summary`` prints
the end-of-run telemetry table.

Every command accepts MiniC source (``.c``-style) or textual IR
(detected by the leading ``module``/``func`` keyword).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.loops import LoopNest
from repro.core.config import (
    SptConfig,
    anticipated_config,
    basic_config,
    best_config,
)
from repro.core.pipeline import Workload, compile_spt
from repro.frontend import compile_minic
from repro.ir import format_module, parse_module
from repro.ir.function import Module
from repro.machine.spt_sim import SptTraceCollector, simulate_spt_loop
from repro.machine.timing import TimingModel, TimingTracer
from repro.profiling import Machine

CONFIG_FACTORIES = {
    "basic": basic_config,
    "best": best_config,
    "anticipated": anticipated_config,
}


def load_module(path: str, name: str = None) -> Module:
    """Load MiniC or textual IR from ``path`` (``-`` for stdin)."""
    if path == "-":
        source = sys.stdin.read()
    else:
        with open(path) as handle:
            source = handle.read()
    stripped = source.lstrip()
    module_name = name or (path.rsplit("/", 1)[-1].split(".")[0])
    if stripped.startswith("module ") or stripped.startswith("func "):
        return parse_module(source)
    return compile_minic(source, name=module_name)


def _parse_args_list(raw: Optional[str]) -> List[int]:
    if not raw:
        return []
    return [int(part) for part in raw.split(",") if part.strip()]


def _config_from_args(args: argparse.Namespace) -> SptConfig:
    """Build the SptConfig for a compile-like command, applying the
    fast-path opt-out flags on top of the named preset."""
    config = CONFIG_FACTORIES[args.config]()
    overrides = _override_dict_from_args(args)
    return config.with_overrides(**overrides) if overrides else config


def _override_dict_from_args(args: argparse.Namespace) -> dict:
    """The SptConfig overrides shared by all compile-like commands."""
    overrides = {}
    if getattr(args, "no_fast_interp", False):
        overrides["fast_interp"] = False
    if getattr(args, "no_trace_interp", False):
        overrides["trace_interp"] = False
    if getattr(args, "no_vector_timing", False):
        overrides["vector_timing"] = False
    if getattr(args, "no_incremental_cost", False):
        overrides["incremental_cost"] = False
    if getattr(args, "search_deadline_ms", None) is not None:
        overrides["search_deadline_ms"] = args.search_deadline_ms
    if getattr(args, "phase_deadline_ms", None) is not None:
        overrides["phase_deadline_ms"] = args.phase_deadline_ms
    if getattr(args, "no_ladder", False):
        overrides["enable_degradation_ladder"] = False
    return overrides


def _telemetry_from_args(args: argparse.Namespace):
    """Build a Telemetry instance from the --trace-out / --log-out /
    --obs-summary flags, or None when observability is off."""
    from repro.obs import ChromeTraceSink, JsonlSink, Telemetry

    sinks = []
    if getattr(args, "trace_out", None):
        sinks.append(ChromeTraceSink(args.trace_out))
    if getattr(args, "log_out", None):
        sinks.append(JsonlSink(args.log_out))
    if not sinks and not getattr(args, "obs_summary", False):
        return None
    return Telemetry(sinks=sinks, detail=getattr(args, "obs_detail", False))


def _finish_telemetry(telemetry, args: argparse.Namespace) -> None:
    """Flush sinks and print the summary table if requested."""
    if telemetry is None:
        return
    telemetry.close()
    if getattr(args, "obs_summary", False):
        from repro.obs import summary_text

        print()
        print(summary_text(telemetry))


def cmd_run(args: argparse.Namespace) -> int:
    module = load_module(args.source)
    machine = Machine(module, fuel=args.fuel)
    tracer = None
    if args.timing:
        tracer = TimingTracer(TimingModel())
        machine.add_tracer(tracer)
    result = machine.run(args.entry, _parse_args_list(args.args))
    print(f"result: {result}")
    if tracer is not None:
        print(f"instructions: {tracer.instructions}")
        print(f"cycles:       {tracer.cycles:.0f}")
        print(f"IPC:          {tracer.ipc:.3f}")
    return 0


def cmd_dump_ir(args: argparse.Namespace) -> int:
    module = load_module(args.source)
    if args.ssa:
        from repro.ssa import build_ssa, optimize

        for func in module.functions.values():
            build_ssa(func)
            if args.optimize:
                optimize(func)
    print(format_module(module), end="")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    module = load_module(args.source)
    config = _config_from_args(args)
    workload = Workload(entry=args.entry, args=tuple(_parse_args_list(args.args)))
    telemetry = _telemetry_from_args(args)
    result = compile_spt(module, config, workload, telemetry=telemetry)

    print(f"configuration: {args.config}")
    print(f"loop candidates: {len(result.candidates)}")
    for candidate in result.candidates:
        partition = candidate.partition
        line = (
            f"  {candidate.func_name}:{candidate.loop.header:20s}"
            f" {candidate.category:22s}"
            f" size={candidate.dynamic_body_size:7.1f}"
            f" trip={candidate.trip_count:8.1f}"
        )
        if partition is not None and not partition.skipped_too_many_vcs:
            line += (
                f" cost={partition.cost:7.2f}"
                f" prefork={partition.prefork_size:6.1f}"
                f" vcs={len(partition.candidates)}"
            )
        if candidate.svp_applied:
            line += " [svp]"
        print(line)
    print(f"selected SPT loops: {[i.header for i in result.spt_loops]}")
    if result.svp_infos:
        print(f"value predictions: {result.svp_infos}")
    if args.emit_ir:
        print()
        print(format_module(module), end="")
    _finish_telemetry(telemetry, args)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    module = load_module(args.source)
    config = _config_from_args(args)
    train = _parse_args_list(args.train_args or args.args)
    workload = Workload(entry=args.entry, args=tuple(train))
    telemetry = _telemetry_from_args(args)
    result = compile_spt(module, config, workload, telemetry=telemetry)
    if not result.spt_loops:
        print("no SPT loops selected; nothing to simulate")
        _finish_telemetry(telemetry, args)
        return 1

    collectors = []
    for candidate, info in zip(result.selected, result.spt_loops):
        func = module.function(candidate.func_name)
        nest = LoopNest.build(func)
        loop = next(
            (l for l in nest.loops if l.header == candidate.loop.header), None
        )
        if loop is None:
            continue
        collectors.append(
            SptTraceCollector(
                candidate.func_name, loop.header, loop.body,
                info.loop_id, TimingModel(),
            )
        )

    machine = Machine(module, fuel=args.fuel, telemetry=telemetry)
    tracer = TimingTracer(TimingModel())
    machine.add_tracer(tracer)
    for collector in collectors:
        machine.add_tracer(collector)
    result_value = machine.run(args.entry, _parse_args_list(args.args))

    print(f"result: {result_value}")
    print(f"single-core cycles: {tracer.cycles:.0f}  (IPC {tracer.ipc:.3f})")
    total_delta = 0.0
    for collector in collectors:
        stats = simulate_spt_loop(collector, telemetry=telemetry)
        total_delta += stats.spt_cycles - stats.seq_cycles
        print(
            f"  loop {stats.func_name}:{stats.header}: "
            f"speedup {stats.loop_speedup:.2f}x, "
            f"misspec {stats.misspeculation_ratio:.3f}, "
            f"{stats.iterations} iterations"
        )
    spt_total = tracer.cycles + total_delta
    if spt_total > 0:
        print(f"program SPT cycles: {spt_total:.0f} "
              f"(speedup {tracer.cycles / spt_total:.3f}x)")
    _finish_telemetry(telemetry, args)
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    from repro.analysis.depgraph import build_dep_graph
    from repro.core.costgraph import build_cost_graph
    from repro.core.vcdep import VCDepGraph
    from repro.core.violation import find_violation_candidates
    from repro.report.dot import (
        cfg_to_dot,
        costgraph_to_dot,
        depgraph_to_dot,
        vcdep_to_dot,
    )
    from repro.ssa import build_ssa, optimize

    module = load_module(args.source)
    func = module.functions.get(args.function)
    if func is None:
        print(f"no function {args.function!r}", file=sys.stderr)
        return 2
    if args.what != "cfg" or args.ssa:
        build_ssa(func)
        optimize(func)
    if args.what == "cfg":
        print(cfg_to_dot(func))
        return 0

    nest = LoopNest.build(func)
    if args.loop:
        loop = next((l for l in nest.loops if l.header == args.loop), None)
    else:
        loop = nest.loops[0] if nest.loops else None
    if loop is None:
        print("no such loop (use --loop <header-label>)", file=sys.stderr)
        return 2
    graph = build_dep_graph(module, func, loop)
    if args.what == "depgraph":
        print(depgraph_to_dot(graph))
        return 0
    candidates = find_violation_candidates(graph)
    if args.what == "costgraph":
        print(costgraph_to_dot(build_cost_graph(graph, candidates)))
        return 0
    print(vcdep_to_dot(VCDepGraph(graph, candidates)))
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    import json

    module = load_module(args.source)
    config = _config_from_args(args)
    workload = Workload(entry=args.entry, args=tuple(_parse_args_list(args.args)))
    telemetry = _telemetry_from_args(args)
    result = compile_spt(module, config, workload, telemetry=telemetry)
    summary = result.to_dict()
    if result.trace_stats:
        # Added here, NOT in to_dict(): batch manifests embed to_dict()
        # and must stay byte-identical across trace_interp on/off.
        summary["trace_interp"] = result.trace_stats
    print(json.dumps(summary, indent=2))
    _finish_telemetry(telemetry, args)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.report import explain_text

    module = load_module(args.source)
    config = _config_from_args(args)
    workload = Workload(entry=args.entry, args=tuple(_parse_args_list(args.args)))
    telemetry = _telemetry_from_args(args)
    result = compile_spt(module, config, workload, telemetry=telemetry)
    print(explain_text(result, config, loop=args.loop, verbose=not args.brief))
    if args.cache_dir is not None:
        from repro.batch import ResultCache
        from repro.batch.worker import probe_cache
        from repro.report.explain import cache_probe_text

        with open(args.source) as handle:
            source = handle.read()
        cache = ResultCache(args.cache_dir or None)
        probe = probe_cache(source, config, workload, cache)
        if telemetry is not None:
            telemetry.merge_counters(cache.stats.as_counters())
        print()
        print(cache_probe_text(probe))
    _finish_telemetry(telemetry, args)
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    import json

    from repro.batch import dump_manifest, run_batch

    overrides = _override_dict_from_args(args)

    telemetry = _telemetry_from_args(args)

    def progress(entry):
        status = entry.get("status")
        if status == "ok":
            summary = entry["summary"]
            selected = len(summary.get("selected", []))
            total = len(summary.get("candidates", []))
            origin = "warm" if entry.get("cached") else "cold"
            print(
                f"  ok      {entry['path']:32s} {selected}/{total} loops"
                f" selected [{origin}]"
            )
        else:
            error = entry.get("error", {})
            detail = error.get("message") or error.get("type") or "?"
            print(f"  {status:7s} {entry['path']:32s} {detail}")

    try:
        result = run_batch(
            args.inputs,
            config_name=args.config,
            config_overrides=overrides,
            entry=args.entry,
            args=tuple(_parse_args_list(args.args)),
            fuel=args.fuel,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            cache_max_entries=args.cache_max_entries,
            telemetry=telemetry,
            progress=progress if not args.quiet else None,
            stall_timeout=args.stall_timeout,
            program_timeout=args.program_timeout,
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    stats = result.stats
    cache = stats["cache"]
    print(
        f"batch: {stats['ok']}/{stats['programs']} ok"
        f" ({stats['errors']} errors, {stats['crashed']} crashed,"
        f" {stats['timeouts']} timeouts)"
        f" in {stats['wall_seconds']:.2f}s with {stats['jobs']} jobs"
    )
    if stats["degradations"] or stats["degraded_programs"]:
        print(
            f"resilience: {stats['degradations']} contained degradation(s)"
            f" across the batch, {stats['degraded_programs']} program(s)"
            f" finished on the degraded retry"
        )
    if not args.no_cache:
        print(
            f"cache: {cache['hits']} hits / {cache['misses']} misses"
            f" ({cache['hit_rate']:.1%} hit rate),"
            f" {cache['writes']} writes, {cache['evictions']} evictions"
            f"  [{stats['cache_dir']}]"
        )
    if args.manifest:
        dump_manifest(result.manifest, args.manifest)
        print(f"manifest written to {args.manifest}")
    if args.stats_out:
        with open(args.stats_out, "w") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"run stats written to {args.stats_out}")
    _finish_telemetry(telemetry, args)
    return 0 if result.ok else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.report import (
        figure14_text,
        figure15_text,
        figure16_text,
        figure17_text,
        figure18_text,
        figure19_text,
        table1_text,
    )

    generators = {
        "table1": table1_text,
        "fig14": figure14_text,
        "fig15": figure15_text,
        "fig16": figure16_text,
        "fig17": figure17_text,
        "fig18": figure18_text,
        "fig19": figure19_text,
    }
    targets = args.targets or list(generators)
    for target in targets:
        if target not in generators:
            print(f"unknown report target {target!r}; "
                  f"choose from {sorted(generators)}", file=sys.stderr)
            return 2
    for target in targets:
        print()
        print(generators[target]())
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.testkit import (
        ORACLE_NAMES,
        base_seed,
        load_corpus,
        replay_entry,
        run_campaign,
        save_reproducer,
    )

    oracles = None
    if args.oracle:
        oracles = sorted(set(args.oracle))
        unknown = [name for name in oracles if name not in ORACLE_NAMES]
        if unknown:
            print(
                f"unknown oracle(s) {', '.join(unknown)}; "
                f"choose from {', '.join(ORACLE_NAMES)}",
                file=sys.stderr,
            )
            return 2

    telemetry = _telemetry_from_args(args)
    seed = args.seed if args.seed is not None else base_seed()

    failed = False
    if args.corpus_dir and not args.skip_corpus_replay:
        entries = load_corpus(args.corpus_dir)
        for entry in entries:
            detail = replay_entry(entry)
            if detail is not None:
                failed = True
                print(f"corpus regression {entry.name}: {detail}")
        if entries:
            print(f"corpus: {len(entries)} reproducer(s) replayed")

    campaign_kwargs = {}
    if telemetry is not None:
        campaign_kwargs["telemetry"] = telemetry
    report = run_campaign(
        seed,
        args.iterations,
        oracles=oracles,
        shrink=not args.no_shrink,
        max_failures=args.max_failures,
        **campaign_kwargs,
    )
    for line in report.summary_lines():
        print(line)
    for failure in report.failures:
        print()
        print(
            f"FAILURE oracle={failure.oracle} seed={failure.seed} "
            f"iteration={failure.iteration}"
        )
        print(f"  {failure.detail}")
        if args.corpus_dir:
            path = save_reproducer(args.corpus_dir, failure)
            print(f"  reproducer written to {path}")
        else:
            print("  minimized program:")
            for line in failure.reproducer.source().splitlines():
                print(f"    {line}")
    _finish_telemetry(telemetry, args)
    return 1 if (failed or report.failures) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-driven speculative parallelization (PLDI 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_source(p):
        p.add_argument("source", help="MiniC or textual-IR file ('-' for stdin)")
        p.add_argument("--entry", default="main", help="entry function")
        p.add_argument("--args", default="", help="comma-separated int args")
        p.add_argument("--fuel", type=int, default=50_000_000)

    run_p = sub.add_parser("run", help="interpret a program")
    add_source(run_p)
    run_p.add_argument("--timing", action="store_true", help="report cycles/IPC")
    run_p.set_defaults(fn=cmd_run)

    dump_p = sub.add_parser("dump-ir", help="lower and print the IR")
    add_source(dump_p)
    dump_p.add_argument("--ssa", action="store_true", help="convert to SSA")
    dump_p.add_argument("--optimize", action="store_true", help="run cleanup passes")
    dump_p.set_defaults(fn=cmd_dump_ir)

    def add_config_options(p):
        p.add_argument("--config", choices=sorted(CONFIG_FACTORIES), default="best")
        p.add_argument(
            "--no-fast-interp", action="store_true",
            help="profile with the reference interpreter instead of the "
                 "block-compiled fast path",
        )
        p.add_argument(
            "--no-trace-interp", action="store_true",
            help="disable hot-trace (superblock) compilation on the "
                 "fast interpreter; block-compiled execution only",
        )
        p.add_argument(
            "--no-vector-timing", action="store_true",
            help="use per-op timing accounting instead of the "
                 "block-batched vectorized timing engine",
        )
        p.add_argument(
            "--no-incremental-cost", action="store_true",
            help="use full-recompute cost evaluation in the partition search",
        )
        p.add_argument(
            "--search-deadline-ms", type=float, default=None, metavar="MS",
            help="anytime partition-search deadline: on expiry keep the "
                 "best-so-far legal partition (flagged optimal=false)",
        )
        p.add_argument(
            "--phase-deadline-ms", type=float, default=None, metavar="MS",
            help="wall-clock watchdog per firewalled pipeline phase; an "
                 "overrunning phase degrades its loop instead of wedging",
        )
        p.add_argument(
            "--no-ladder", action="store_true",
            help="disable the graceful-degradation retry ladder (a "
                 "contained fault skips the loop immediately)",
        )

    def add_obs_options(p):
        p.add_argument(
            "--trace-out", default=None, metavar="PATH",
            help="write a Chrome trace-event timeline of the compilation "
                 "(open in chrome://tracing or Perfetto)",
        )
        p.add_argument(
            "--log-out", default=None, metavar="PATH",
            help="write a JSONL structured log of spans, events and counters",
        )
        p.add_argument(
            "--obs-summary", action="store_true",
            help="print the end-of-run telemetry summary table",
        )
        p.add_argument(
            "--obs-detail", action="store_true",
            help="also collect expensive per-event accounting "
                 "(per-hook tracer event counts)",
        )

    compile_p = sub.add_parser("compile", help="two-pass SPT compilation")
    add_source(compile_p)
    add_config_options(compile_p)
    add_obs_options(compile_p)
    compile_p.add_argument(
        "--emit-ir", action="store_true", help="print the transformed IR"
    )
    compile_p.set_defaults(fn=cmd_compile)

    sim_p = sub.add_parser("simulate", help="compile and run the SPT machine model")
    add_source(sim_p)
    add_config_options(sim_p)
    add_obs_options(sim_p)
    sim_p.add_argument("--train-args", default=None,
                       help="profiling args (defaults to --args)")
    sim_p.set_defaults(fn=cmd_simulate)

    explain_p = sub.add_parser(
        "explain",
        help="compile and explain why each loop was (not) selected",
    )
    add_source(explain_p)
    add_config_options(explain_p)
    add_obs_options(explain_p)
    explain_p.add_argument(
        "--loop", default=None, metavar="FUNC:HEADER",
        help="restrict the report to one loop (e.g. main:for_head)",
    )
    explain_p.add_argument(
        "--brief", action="store_true",
        help="omit the pre-fork region statement listing",
    )
    explain_p.add_argument(
        "--cache-dir", nargs="?", const="", default=None, metavar="DIR",
        help="also report whether this result is warm in the batch "
             "result cache (default dir when no DIR is given)",
    )
    explain_p.set_defaults(fn=cmd_explain)

    batch_p = sub.add_parser(
        "batch",
        help="compile many programs in parallel with a persistent "
             "result cache",
    )
    batch_p.add_argument(
        "inputs", nargs="+",
        help="program files, directories, or glob patterns",
    )
    batch_p.add_argument("--entry", default="main", help="entry function")
    batch_p.add_argument("--args", default="", help="comma-separated int args")
    batch_p.add_argument("--fuel", type=int, default=50_000_000)
    add_config_options(batch_p)
    add_obs_options(batch_p)
    batch_p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: os.cpu_count())",
    )
    batch_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent result cache location "
             "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    batch_p.add_argument(
        "--no-cache", action="store_true",
        help="compile everything cold; do not read or write the cache",
    )
    batch_p.add_argument(
        "--cache-max-entries", type=int, default=None, metavar="N",
        help="evict oldest cache entries beyond N after the batch",
    )
    batch_p.add_argument(
        "--manifest", default=None, metavar="PATH",
        help="write the machine-readable batch manifest (JSON)",
    )
    batch_p.add_argument(
        "--stats-out", default=None, metavar="PATH",
        help="write run statistics (wall time, jobs, cache hit rate)",
    )
    batch_p.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-program progress lines",
    )
    batch_p.add_argument(
        "--stall-timeout", type=float, default=None, metavar="S",
        help="seconds of total pool silence before remaining tasks are "
             "declared lost (default: config batch_stall_timeout_s, 60)",
    )
    batch_p.add_argument(
        "--program-timeout", type=float, default=None, metavar="S",
        help="per-program wall-clock budget in each worker; an "
             "overrunning program is retried once on the degraded "
             "ladder configuration, then reported as status=timeout",
    )
    batch_p.set_defaults(fn=cmd_batch)

    report_p = sub.add_parser("report", help="regenerate paper tables/figures")
    report_p.add_argument("targets", nargs="*", help="table1 fig14 ... (default: all)")
    report_p.set_defaults(fn=cmd_report)

    dot_p = sub.add_parser("dot", help="emit Graphviz dumps of compiler graphs")
    dot_p.add_argument("source")
    dot_p.add_argument(
        "what", choices=["cfg", "depgraph", "costgraph", "vcdep"]
    )
    dot_p.add_argument("--function", default="main")
    dot_p.add_argument("--loop", default=None, help="loop header label")
    dot_p.add_argument("--ssa", action="store_true",
                       help="convert to SSA before dumping the CFG")
    dot_p.set_defaults(fn=cmd_dot)

    summary_p = sub.add_parser(
        "summary", help="compile and print a JSON compilation summary"
    )
    add_source(summary_p)
    add_config_options(summary_p)
    add_obs_options(summary_p)
    summary_p.set_defaults(fn=cmd_summary)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generated programs vs the oracle battery",
    )
    fuzz_p.add_argument(
        "--seed", type=int, default=None,
        help="campaign base seed (default: $REPRO_TEST_SEED or 0)",
    )
    fuzz_p.add_argument(
        "--iterations", type=int, default=100,
        help="number of generated programs (default 100)",
    )
    fuzz_p.add_argument(
        "--oracle", action="append", default=None, metavar="NAME",
        help="restrict to one oracle (repeatable): "
             "interp, cost, partition, spt",
    )
    fuzz_p.add_argument(
        "--corpus-dir", default=None, metavar="DIR",
        help="replay this regression corpus first, and write minimized "
             "reproducers for new failures into it",
    )
    fuzz_p.add_argument(
        "--skip-corpus-replay", action="store_true",
        help="with --corpus-dir, only write new reproducers",
    )
    fuzz_p.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without delta-debugging them first",
    )
    fuzz_p.add_argument(
        "--max-failures", type=int, default=1,
        help="stop after this many failures (0 = run the full campaign)",
    )
    add_obs_options(fuzz_p)
    fuzz_p.set_defaults(fn=cmd_fuzz)

    return parser


def main(argv: List[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
