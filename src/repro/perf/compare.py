"""Cross-run comparison over ledger records: diffs and the regression
verdict.

Records are aligned on :func:`match_key` -- kind x workload (name,
content hash, args, entry) x config fingerprint -- so a comparison
never confuses "the code got slower" with "we compiled something
else".  Two classes of metric are gated differently:

* **Deterministic metrics** -- simulated cycles and the search/
  selection/transform/spt counters -- are bit-stable across hosts and
  runs; *any* drift between matched records is a failure.
* **Wall-clock metrics** -- total wall time and per-phase self-times --
  are noisy.  They are gated with a relative threshold *and* an
  absolute floor (a 3x blowup of a 0.2 ms phase is measurement noise,
  not a regression), and only when both records came from the same
  host token.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CheckReport",
    "DETERMINISTIC_COUNTER_PREFIXES",
    "check_regression",
    "diff_text",
    "match_key",
]

#: Counters that must be bit-identical between matched runs.
DETERMINISTIC_COUNTER_PREFIXES = (
    "partition.",
    "selection.",
    "transform.",
    "unroll.",
    "spt.",
)

#: Default noise gates for wall-clock comparisons.
DEFAULT_WALL_THRESHOLD = 0.5   # fail beyond +50% ...
DEFAULT_FLOOR_MS = 25.0        # ... and beyond +25 ms absolute.


def match_key(record: Dict) -> Tuple:
    """The alignment key: what must agree for two records to be
    comparable."""
    workload = record.get("workload", {})
    return (
        record.get("kind"),
        workload.get("name"),
        workload.get("sha256"),
        tuple(workload.get("args") or ()),
        workload.get("entry"),
        record.get("fingerprint"),
    )


def _deterministic_counters(record: Dict) -> Dict[str, float]:
    return {
        name: value
        for name, value in record.get("counters", {}).items()
        if name.startswith(DETERMINISTIC_COUNTER_PREFIXES)
    }


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _delta(old, new) -> str:
    if old is None or new is None:
        return "-"
    diff = new - old
    if old:
        return f"{diff:+.2f} ({diff / old:+.1%})"
    return f"{diff:+.2f}"


def diff_text(old: Dict, new: Dict) -> str:
    """An aligned metric table between two ledger records."""
    from repro.report.tables import format_table

    header = (
        f"run {old.get('run_id')} ({old.get('kind')},"
        f" {old.get('workload', {}).get('name')})"
        f"  ->  run {new.get('run_id')}"
    )
    notes: List[str] = []
    if match_key(old) != match_key(new):
        notes.append(
            "note: records differ in kind/workload/fingerprint -- "
            "wall-clock deltas are not apples-to-apples"
        )
    if old.get("host") != new.get("host"):
        notes.append(
            f"note: different hosts ({old.get('host')} vs"
            f" {new.get('host')}) -- wall-clock deltas are indicative only"
        )

    rows: List[Tuple] = []
    rows.append(
        ("wall_s", _fmt(old.get("wall_s")), _fmt(new.get("wall_s")),
         _delta(old.get("wall_s"), new.get("wall_s")))
    )
    if old.get("cycles") is not None or new.get("cycles") is not None:
        rows.append(
            ("cycles", _fmt(old.get("cycles")), _fmt(new.get("cycles")),
             _delta(old.get("cycles"), new.get("cycles")))
        )
    old_phases = old.get("phase_self_ms", {})
    new_phases = new.get("phase_self_ms", {})
    for name in sorted(set(old_phases) | set(new_phases)):
        rows.append(
            (
                f"phase.{name} (ms)",
                _fmt(old_phases.get(name)),
                _fmt(new_phases.get(name)),
                _delta(old_phases.get(name), new_phases.get(name)),
            )
        )
    old_counters = _deterministic_counters(old)
    new_counters = _deterministic_counters(new)
    for name in sorted(set(old_counters) | set(new_counters)):
        rows.append(
            (
                name,
                _fmt(old_counters.get(name)),
                _fmt(new_counters.get(name)),
                _delta(old_counters.get(name), new_counters.get(name)),
            )
        )
    table = format_table(["metric", "old", "new", "delta"], rows, title=header)
    return "\n".join([table] + notes)


@dataclass
class CheckReport:
    """The outcome of one regression check."""

    ok: bool = True
    failures: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    compared: int = 0

    def fail(self, message: str) -> None:
        self.ok = False
        self.failures.append(message)

    def lines(self) -> List[str]:
        out = []
        for message in self.warnings:
            out.append(f"warning: {message}")
        for message in self.failures:
            out.append(f"FAIL: {message}")
        verdict = "PASS" if self.ok else "FAIL"
        out.append(
            f"perf check: {verdict}"
            f" ({self.compared} matched record pair(s),"
            f" {len(self.failures)} failure(s))"
        )
        return out


def _latest_by_key(records: Sequence[Dict]) -> Dict[Tuple, Dict]:
    latest: Dict[Tuple, Dict] = {}
    for record in records:
        latest[match_key(record)] = record
    return latest


def check_regression(
    baseline: Sequence[Dict],
    current: Sequence[Dict],
    *,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    floor_ms: float = DEFAULT_FLOOR_MS,
    gate_wall: Optional[bool] = None,
) -> CheckReport:
    """The noise-aware regression verdict between two record sets.

    Each current record is matched to the latest baseline record with
    the same :func:`match_key`.  Deterministic metrics (cycles, the
    :data:`DETERMINISTIC_COUNTER_PREFIXES` counters) fail on any drift.
    Wall-clock metrics fail when they grew by more than
    ``wall_threshold`` relative *and* ``floor_ms`` absolute -- and are
    only gated when the two records share a host token (override with
    ``gate_wall``).
    """
    report = CheckReport()
    base_by_key = _latest_by_key(baseline)
    cur_by_key = _latest_by_key(current)
    if not cur_by_key:
        report.fail("no current records to check")
        return report

    for key, cur in sorted(cur_by_key.items(), key=lambda kv: str(kv[0])):
        base = base_by_key.get(key)
        name = f"{key[0]}:{key[1]}"
        if base is None:
            report.warnings.append(
                f"{name}: no baseline record for this workload/fingerprint"
            )
            continue
        report.compared += 1

        # -- deterministic metrics: any drift is a failure ------------
        if base.get("cycles") is not None and cur.get("cycles") is not None:
            if base["cycles"] != cur["cycles"]:
                report.fail(
                    f"{name}: simulated cycles drifted "
                    f"{base['cycles']:.0f} -> {cur['cycles']:.0f}"
                )
        base_counters = _deterministic_counters(base)
        cur_counters = _deterministic_counters(cur)
        for counter in sorted(set(base_counters) & set(cur_counters)):
            if base_counters[counter] != cur_counters[counter]:
                report.fail(
                    f"{name}: counter {counter} drifted "
                    f"{base_counters[counter]:g} -> {cur_counters[counter]:g}"
                )
        if base.get("degradations") != cur.get("degradations"):
            report.fail(
                f"{name}: degradation records changed "
                f"({len(base.get('degradations') or [])} -> "
                f"{len(cur.get('degradations') or [])})"
            )

        # -- wall-clock metrics: noise-gated, same-host only ----------
        same_host = base.get("host") == cur.get("host")
        wall_gated = same_host if gate_wall is None else gate_wall
        if not wall_gated:
            if not same_host:
                report.warnings.append(
                    f"{name}: baseline host differs; wall-time gating skipped"
                )
            continue
        base_wall = base.get("wall_s")
        cur_wall = cur.get("wall_s")
        if base_wall is not None and cur_wall is not None:
            grew = (cur_wall - base_wall) * 1e3
            if grew > floor_ms and cur_wall > base_wall * (1 + wall_threshold):
                report.fail(
                    f"{name}: wall time regressed "
                    f"{base_wall:.3f}s -> {cur_wall:.3f}s "
                    f"(+{cur_wall / base_wall - 1:.0%},"
                    f" threshold +{wall_threshold:.0%})"
                )
        base_phases = base.get("phase_self_ms", {})
        cur_phases = cur.get("phase_self_ms", {})
        for phase in sorted(set(base_phases) & set(cur_phases)):
            old_ms = base_phases[phase]
            new_ms = cur_phases[phase]
            if (new_ms - old_ms) > floor_ms and new_ms > old_ms * (
                1 + wall_threshold
            ):
                rel = f"+{new_ms / old_ms - 1:.0%}" if old_ms else "new"
                report.fail(
                    f"{name}: phase {phase!r} self-time regressed "
                    f"{old_ms:.1f}ms -> {new_ms:.1f}ms "
                    f"({rel}, threshold +{wall_threshold:.0%})"
                )
    return report
