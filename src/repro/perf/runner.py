"""Run one program under observation and turn it into a ledger record.

``record_program`` is the engine behind ``repro perf record``: it
compiles (and for ``kind="simulate"`` also runs the SPT machine model
on) one source file with a throwaway observing telemetry, then distills
the run into one :func:`repro.obs.ledger.make_record` record -- phase
self-times from the span tree, the deterministic search/selection/
transform/spt counters, degradation records, and simulated cycles.

``simulate_program`` is the shared "compile result -> machine model"
step; ``repro simulate`` renders its outcome for humans, ``perf
record`` feeds it into the ledger.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.ledger import make_record
from repro.obs.telemetry import Telemetry

__all__ = ["LoopSim", "SimOutcome", "record_program", "simulate_program"]


@dataclass
class LoopSim:
    """Per-loop outcome of the SPT machine model."""

    func_name: str
    header: str
    speedup: float
    misspeculation_ratio: float
    iterations: int
    seq_cycles: float
    spt_cycles: float


@dataclass
class SimOutcome:
    """One program's trip through the SPT machine model."""

    result: int
    seq_cycles: float
    ipc: float
    spt_cycles: float
    loops: List[LoopSim] = field(default_factory=list)

    @property
    def program_speedup(self) -> float:
        return self.seq_cycles / self.spt_cycles if self.spt_cycles else 1.0


def build_simulation(module, compile_result, *, fuel: int, telemetry=None):
    """Assemble the (machine, timing tracer, SPT collectors) triple one
    simulation runs on.

    Deterministic: the same ``(module, compile_result)`` always builds
    the same collector sequence, which is what lets a checkpoint
    restored in a fresh process (:mod:`repro.checkpoint`) line up its
    per-collector state positionally."""
    from repro.analysis.loops import LoopNest
    from repro.machine.spt_sim import SptTraceCollector
    from repro.machine.timing import TimingModel, TimingTracer
    from repro.profiling import Machine

    collectors = []
    for candidate, info in zip(compile_result.selected, compile_result.spt_loops):
        func = module.function(candidate.func_name)
        nest = LoopNest.build(func)
        loop = next(
            (l for l in nest.loops if l.header == candidate.loop.header), None
        )
        if loop is None:
            continue
        collectors.append(
            SptTraceCollector(
                candidate.func_name, loop.header, loop.body,
                info.loop_id, TimingModel(),
            )
        )

    machine = Machine(module, fuel=fuel, telemetry=telemetry)
    tracer = TimingTracer(TimingModel())
    machine.add_tracer(tracer)
    for collector in collectors:
        machine.add_tracer(collector)
    return machine, tracer, collectors


def finalize_simulation(
    result_value, tracer, collectors, telemetry=None
) -> SimOutcome:
    """Recombine the collected traces into the program-level outcome."""
    from repro.machine.spt_sim import simulate_spt_loop

    loops: List[LoopSim] = []
    total_delta = 0.0
    for collector in collectors:
        stats = simulate_spt_loop(collector, telemetry=telemetry)
        total_delta += stats.spt_cycles - stats.seq_cycles
        loops.append(
            LoopSim(
                func_name=stats.func_name,
                header=stats.header,
                speedup=stats.loop_speedup,
                misspeculation_ratio=stats.misspeculation_ratio,
                iterations=stats.iterations,
                seq_cycles=stats.seq_cycles,
                spt_cycles=stats.spt_cycles,
            )
        )
    return SimOutcome(
        result=result_value,
        seq_cycles=tracer.cycles,
        ipc=tracer.ipc,
        spt_cycles=tracer.cycles + total_delta,
        loops=loops,
    )


def simulate_program(
    module,
    compile_result,
    *,
    entry: str = "main",
    args: Sequence[int] = (),
    fuel: int = 50_000_000,
    telemetry=None,
) -> SimOutcome:
    """Run the SPT machine model over ``compile_result``'s selected
    loops and aggregate program-level cycles.

    ``module`` must be the (already transformed) module that
    ``compile_spt`` returned ``compile_result`` for.
    """
    machine, tracer, collectors = build_simulation(
        module, compile_result, fuel=fuel, telemetry=telemetry
    )
    result_value = machine.run(entry, list(args))
    return finalize_simulation(
        result_value, tracer, collectors, telemetry=telemetry
    )


def _workload_dict(
    source_path: str, source: str, entry: str, args: Sequence[int]
) -> Dict:
    return {
        "name": os.path.basename(source_path),
        "sha256": hashlib.sha256(source.encode()).hexdigest(),
        "entry": entry,
        "args": list(args),
    }


def record_program(
    source_path: str,
    *,
    kind: str = "compile",
    config=None,
    entry: str = "main",
    args: Sequence[int] = (),
    fuel: int = 50_000_000,
    extra: Optional[Dict] = None,
) -> Tuple[Dict, object]:
    """Compile (``kind="compile"``) or compile+simulate
    (``kind="simulate"``) ``source_path`` under an observing telemetry
    and return ``(ledger_record, compile_result)``.

    The record is *not* appended anywhere; the caller owns the
    :class:`~repro.obs.ledger.Ledger`.
    """
    from repro.cli import load_module
    from repro.core.config import best_config
    from repro.core.pipeline import Workload, compile_spt

    if kind not in ("compile", "simulate"):
        raise ValueError(f"unknown perf record kind {kind!r}")
    if config is None:
        config = best_config()
    with open(source_path) as handle:
        source = handle.read()

    telemetry = Telemetry()
    start = time.perf_counter()
    module = load_module(source_path)
    workload = Workload(entry=entry, args=tuple(args))
    result = compile_spt(module, config, workload, telemetry=telemetry)

    cycles = None
    extra_out: Dict = dict(extra or {})
    extra_out["selected_loops"] = [info.header for info in result.spt_loops]
    if kind == "simulate" and result.spt_loops:
        outcome = simulate_program(
            module, result, entry=entry, args=args, fuel=fuel,
            telemetry=telemetry,
        )
        cycles = outcome.spt_cycles
        extra_out["seq_cycles"] = outcome.seq_cycles
        extra_out["program_speedup"] = outcome.program_speedup
    wall_s = time.perf_counter() - start
    telemetry.close()

    record = make_record(
        kind,
        _workload_dict(source_path, source, entry, args),
        config.fingerprint(),
        wall_s=wall_s,
        telemetry=telemetry,
        cycles=cycles,
        degradations=[r.to_dict() for r in result.degradations],
        extra=extra_out,
    )
    return record, result
