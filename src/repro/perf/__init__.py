"""Performance tracking: run recording into the ledger and cross-run
regression comparison.

This layer sits above ``repro.core`` + ``repro.obs`` + ``repro.machine``
and powers the ``repro perf`` CLI family:

* :func:`~repro.perf.runner.record_program` -- compile (and optionally
  simulate) one program under an observing telemetry and produce a
  ledger record carrying phase self-times, deterministic counters, and
  simulated cycles;
* :func:`~repro.perf.runner.simulate_program` -- the shared
  compile-result -> SPT-machine-model simulation used by both
  ``repro simulate`` and ``perf record --kind simulate``;
* :func:`~repro.perf.compare.diff_text` / :func:`~repro.perf.compare.
  check_regression` -- align ledger records on fingerprint x workload x
  host and render deltas or a noise-aware CI verdict.
"""

from repro.perf.compare import (
    CheckReport,
    check_regression,
    diff_text,
    match_key,
)
from repro.perf.runner import SimOutcome, record_program, simulate_program

__all__ = [
    "CheckReport",
    "SimOutcome",
    "check_regression",
    "diff_text",
    "match_key",
    "record_program",
    "simulate_program",
]
