"""Scalar types for the SPT intermediate representation.

The IR is deliberately small: the cost-driven speculative parallelization
framework of Du et al. (PLDI 2004) operates on scalar operations, memory
loads/stores and calls.  Three scalar types are enough to express the
workloads the paper evaluates:

* ``INT``   -- 64-bit signed integers (the default type).
* ``FLOAT`` -- IEEE double precision.
* ``BOOL``  -- results of comparisons; freely convertible to ``INT``.
* ``PTR``   -- flat addresses into the interpreter's memory space.

Types are singletons; identity comparison (``is``) is safe and preferred.
"""

from __future__ import annotations


class Type:
    """A scalar IR type.

    Instances are interned singletons (see module-level constants), so two
    types are equal iff they are the same object.
    """

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type participate in arithmetic."""
        return self in (INT, FLOAT)


#: 64-bit signed integer type.
INT = Type("int")

#: IEEE-754 double type.
FLOAT = Type("float")

#: Boolean type (comparison results).
BOOL = Type("bool")

#: Flat memory address type.
PTR = Type("ptr")

#: All interned types, keyed by their printed name (used by the parser).
BY_NAME = {t.name: t for t in (INT, FLOAT, BOOL, PTR)}


def join(a: Type, b: Type) -> Type:
    """Return the result type of a binary arithmetic operation.

    ``FLOAT`` is contagious; otherwise the integer family collapses to
    ``INT``.  ``PTR`` plus an integer stays ``PTR`` (address arithmetic).
    """
    if a is FLOAT or b is FLOAT:
        return FLOAT
    if a is PTR or b is PTR:
        return PTR
    return INT
