"""Textual IR printer.

The format round-trips through :mod:`repro.ir.parser`::

    module m
    global cost[1]

    func foo(n) {
      local buf[64]
    entry:
      i = copy 0
      jump head
    head:
      i.2 = phi [entry: i, body: i.3]
      c = lt i.2, n
      br c, body, exit
    ...
    }
"""

from __future__ import annotations

from typing import List

from repro.ir.block import Block
from repro.ir.function import Function, Module
from repro.ir.instr import (
    BinOp,
    Branch,
    Call,
    Copy,
    Instr,
    Jump,
    Load,
    LoadAddr,
    Phi,
    Return,
    SptFork,
    SptKill,
    Store,
    UnOp,
)
from repro.ir.values import Const, Value


def format_value(value: Value) -> str:
    if isinstance(value, Const) and isinstance(value.value, float):
        return repr(value.value)
    return str(value)


def format_instr(instr: Instr) -> str:
    """Render one instruction in the textual syntax."""
    if isinstance(instr, BinOp):
        return (
            f"{instr.dest} = {instr.op} "
            f"{format_value(instr.lhs)}, {format_value(instr.rhs)}"
        )
    if isinstance(instr, UnOp):
        return f"{instr.dest} = {instr.op} {format_value(instr.src)}"
    if isinstance(instr, Copy):
        return f"{instr.dest} = copy {format_value(instr.src)}"
    if isinstance(instr, LoadAddr):
        return f"{instr.dest} = addr {instr.sym}"
    if isinstance(instr, Load):
        text = (
            f"{instr.dest} = load "
            f"{format_value(instr.base)}, {format_value(instr.offset)}"
        )
        return f"{text} !{instr.sym}" if instr.sym else text
    if isinstance(instr, Store):
        text = (
            f"store {format_value(instr.base)}, "
            f"{format_value(instr.offset)}, {format_value(instr.value)}"
        )
        return f"{text} !{instr.sym}" if instr.sym else text
    if isinstance(instr, Call):
        args = ", ".join(format_value(a) for a in instr.args)
        pure = "pure " if instr.pure else ""
        if instr.dest is not None:
            return f"{instr.dest} = call {pure}{instr.callee}({args})"
        return f"call {pure}{instr.callee}({args})"
    if isinstance(instr, Phi):
        pairs = ", ".join(
            f"{label}: {format_value(value)}"
            for label, value in sorted(instr.incomings.items())
        )
        return f"{instr.dest} = phi [{pairs}]"
    if isinstance(instr, Jump):
        return f"jump {instr.target}"
    if isinstance(instr, Branch):
        return f"br {format_value(instr.cond)}, {instr.iftrue}, {instr.iffalse}"
    if isinstance(instr, Return):
        if instr.value is not None:
            return f"ret {format_value(instr.value)}"
        return "ret"
    if isinstance(instr, SptFork):
        return f"spt_fork {instr.loop_id}"
    if isinstance(instr, SptKill):
        return f"spt_kill {instr.loop_id}"
    raise TypeError(f"cannot print {instr!r}")


def format_block(block: Block) -> str:
    lines = [f"{block.label}:"]
    for instr in block.instrs:
        lines.append(f"  {format_instr(instr)}")
    return "\n".join(lines)


def format_function(func: Function) -> str:
    params = ", ".join(str(p) for p in func.params)
    lines: List[str] = [f"func {func.name}({params}) {{"]
    for decl in func.arrays.values():
        escapes = " escapes" if decl.escapes else ""
        lines.append(f"  local {decl.sym}[{decl.size}]{escapes}")
    for block in func.blocks:
        lines.append(format_block(block))
    lines.append("}")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    lines: List[str] = [f"module {module.name}"]
    for decl in module.globals.values():
        escapes = " escapes" if decl.escapes else ""
        lines.append(f"global {decl.sym}[{decl.size}]{escapes}")
    for func in module.functions.values():
        lines.append("")
        lines.append(format_function(func))
    return "\n".join(lines) + "\n"
