"""IR values: constants and virtual registers.

A :class:`Var` is a virtual register.  Before SSA construction several
definitions may target the same ``Var``; after SSA construction each
``Var`` has exactly one definition and versioned names such as ``i.2``.
The pre-SSA base name is kept in :attr:`Var.base` so that later phases
(e.g. the SPT transformation's temporary-variable insertion, paper §6.2)
can mint fresh related names.
"""

from __future__ import annotations

from typing import Union

from repro.ir.types import BOOL, FLOAT, INT, Type


class Value:
    """Base class for IR operands."""

    __slots__ = ()


class Const(Value):
    """An immediate constant operand.

    Constants compare (and hash) by value and type, so structurally equal
    constants are interchangeable everywhere.
    """

    __slots__ = ("value", "type")

    def __init__(self, value: Union[int, float, bool], type: Type = None):
        if type is None:
            if isinstance(value, bool):
                type = BOOL
            elif isinstance(value, float):
                type = FLOAT
            else:
                type = INT
        self.value = value
        self.type = type

    def __repr__(self) -> str:
        return f"Const({self.value!r})"

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, float) else str(self.value)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Const)
            and self.value == other.value
            and self.type is other.type
        )

    def __hash__(self) -> int:
        return hash((self.value, id(self.type)))


class Var(Value):
    """A virtual register.

    ``Var`` identity is by *name*: two ``Var`` objects with the same name
    denote the same register.  This makes textual round-tripping and
    hand-written tests straightforward.
    """

    __slots__ = ("name", "type", "base")

    def __init__(self, name: str, type: Type = INT, base: str = None):
        self.name = name
        self.type = type
        #: The pre-SSA base name (``i`` for the SSA version ``i.2``).
        self.base = base if base is not None else name.split(".")[0]

    def __repr__(self) -> str:
        return f"Var({self.name})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        return hash(self.name)

    def with_version(self, version: int) -> "Var":
        """Return the SSA-versioned sibling of this register."""
        return Var(f"{self.base}.{version}", self.type, base=self.base)


def as_value(operand) -> Value:
    """Coerce a Python number or existing :class:`Value` into a Value."""
    if isinstance(operand, Value):
        return operand
    if isinstance(operand, (int, float, bool)):
        return Const(operand)
    raise TypeError(f"cannot use {operand!r} as an IR operand")
