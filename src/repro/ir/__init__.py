"""The SPT intermediate representation.

Public surface: types, values, instructions, blocks, functions, the
builder, printer/parser round-tripping, and the verifier.
"""

from repro.ir.block import Block
from repro.ir.builder import Builder
from repro.ir.function import ArrayDecl, Function, Module
from repro.ir.instr import (
    BINARY_OPS,
    COMPARISONS,
    UNARY_OPS,
    BinOp,
    Branch,
    Call,
    Copy,
    Instr,
    Jump,
    Load,
    LoadAddr,
    Phi,
    Return,
    SptFork,
    SptKill,
    Store,
    UnOp,
)
from repro.ir.parser import IRParseError, parse_function, parse_module
from repro.ir.printer import format_function, format_instr, format_module
from repro.ir.types import BOOL, FLOAT, INT, PTR, Type
from repro.ir.values import Const, Value, Var, as_value
from repro.ir.verify import VerificationError, verify_function, verify_module

__all__ = [
    "ArrayDecl",
    "BINARY_OPS",
    "BOOL",
    "BinOp",
    "Block",
    "Branch",
    "Builder",
    "COMPARISONS",
    "Call",
    "Const",
    "Copy",
    "FLOAT",
    "Function",
    "INT",
    "IRParseError",
    "Instr",
    "Jump",
    "Load",
    "LoadAddr",
    "Module",
    "PTR",
    "Phi",
    "Return",
    "SptFork",
    "SptKill",
    "Store",
    "Type",
    "UNARY_OPS",
    "UnOp",
    "Value",
    "Var",
    "VerificationError",
    "as_value",
    "format_function",
    "format_instr",
    "format_module",
    "parse_function",
    "parse_module",
    "verify_function",
    "verify_module",
]
