"""Three-address IR instructions.

Every instruction exposes a uniform interface used by the analyses:

* :attr:`Instr.dest` -- the defined :class:`~repro.ir.values.Var`
  (``None`` for pure effects such as stores and branches),
* :meth:`Instr.uses` -- the operand values read,
* :meth:`Instr.replace_use` -- operand substitution (SSA renaming,
  copy propagation, SPT temp insertion),
* :attr:`Instr.cost` -- the amount of computation in "elementary
  operations", the unit in which the paper measures misspeculation cost
  (§4.2.4: ``sum v(c) * Cost(c)``).

The two SPT pseudo-instructions of the paper's execution model,
``SPT_FORK`` and ``SPT_KILL`` (§1, Figure 2), are first-class
instructions so the transformed loops remain ordinary IR.
"""

from __future__ import annotations

import copy as _copy
from typing import Dict, List, Optional

from repro.ir.types import BOOL, FLOAT, INT, PTR, Type, join
from repro.ir.values import Const, Value, Var

#: Comparison opcodes (produce BOOL).
COMPARISONS = ("lt", "le", "gt", "ge", "eq", "ne")

#: Arithmetic / logical opcodes accepted by :class:`BinOp`.
BINARY_OPS = (
    "add",
    "sub",
    "mul",
    "div",
    "mod",
    "and",
    "or",
    "xor",
    "shl",
    "shr",
    "min",
    "max",
) + COMPARISONS

#: Opcodes accepted by :class:`UnOp`.
UNARY_OPS = ("neg", "not", "abs", "i2f", "f2i")

#: Default dynamic cost of a call whose body is unknown to the cost model.
DEFAULT_CALL_COST = 20


class Instr:
    """Base class for IR instructions."""

    #: Printable opcode; subclasses override.
    opcode = "instr"

    #: Whether the instruction ends a basic block.
    is_terminator = False

    def __init__(self):
        #: Optional source-position / provenance tag carried through
        #: transformations (used by tests and diagnostics).
        self.tag: Optional[str] = None

    @property
    def dest(self) -> Optional[Var]:
        """The register this instruction defines, if any."""
        return None

    def uses(self) -> List[Value]:
        """The operand values read by this instruction."""
        return []

    def replace_use(self, old: Value, new: Value) -> None:
        """Replace every read of ``old`` with ``new`` (in place)."""

    @property
    def cost(self) -> int:
        """Amount of computation, in elementary operations (paper §4.2.4)."""
        return 1

    @property
    def has_side_effects(self) -> bool:
        """Whether removing the instruction could change program behaviour."""
        return False

    @property
    def reads_memory(self) -> bool:
        return False

    @property
    def writes_memory(self) -> bool:
        return False

    def clone(self) -> "Instr":
        """A deep copy, safe to insert elsewhere."""
        return _copy.deepcopy(self)

    def __repr__(self) -> str:
        from repro.ir.printer import format_instr

        return f"<{format_instr(self)}>"


class BinOp(Instr):
    """``dest = lhs <op> rhs``."""

    opcode = "binop"

    def __init__(self, op: str, dest: Var, lhs: Value, rhs: Value):
        super().__init__()
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self._dest = dest
        self.lhs = lhs
        self.rhs = rhs

    @property
    def dest(self) -> Var:
        return self._dest

    @dest.setter
    def dest(self, var: Var) -> None:
        self._dest = var

    def uses(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def replace_use(self, old: Value, new: Value) -> None:
        if self.lhs == old:
            self.lhs = new
        if self.rhs == old:
            self.rhs = new

    @property
    def cost(self) -> int:
        # Division and modulo are markedly more expensive on in-order
        # cores; everything else counts as one elementary operation.
        return 4 if self.op in ("div", "mod") else 1


class UnOp(Instr):
    """``dest = <op> src``."""

    opcode = "unop"

    def __init__(self, op: str, dest: Var, src: Value):
        super().__init__()
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        self.op = op
        self._dest = dest
        self.src = src

    @property
    def dest(self) -> Var:
        return self._dest

    @dest.setter
    def dest(self, var: Var) -> None:
        self._dest = var

    def uses(self) -> List[Value]:
        return [self.src]

    def replace_use(self, old: Value, new: Value) -> None:
        if self.src == old:
            self.src = new


class Copy(Instr):
    """``dest = src`` -- register copy.

    Inserted by SSA destruction and by the SPT transformation's
    temporary-variable insertion (paper Figure 11).
    """

    opcode = "copy"

    def __init__(self, dest: Var, src: Value):
        super().__init__()
        self._dest = dest
        self.src = src

    @property
    def dest(self) -> Var:
        return self._dest

    @dest.setter
    def dest(self, var: Var) -> None:
        self._dest = var

    def uses(self) -> List[Value]:
        return [self.src]

    def replace_use(self, old: Value, new: Value) -> None:
        if self.src == old:
            self.src = new


class LoadAddr(Instr):
    """``dest = &sym`` -- materialize the base address of an array symbol.

    Arrays (function locals and module globals) live in the interpreter's
    flat memory; this instruction is the only way an address enters the
    register file, which keeps the type-based alias analysis exact for
    non-escaping symbols.
    """

    opcode = "addr"

    def __init__(self, dest: Var, sym: str):
        super().__init__()
        self._dest = dest
        self.sym = sym

    @property
    def dest(self) -> Var:
        return self._dest

    @dest.setter
    def dest(self, var: Var) -> None:
        self._dest = var


class Load(Instr):
    """``dest = mem[base + offset]``.

    ``sym`` is an optional disambiguation hint: the source-level symbol
    this access provably belongs to, or ``None`` when unknown (e.g. the
    address came through arbitrary pointer arithmetic).
    """

    opcode = "load"

    def __init__(self, dest: Var, base: Value, offset: Value, sym: str = None):
        super().__init__()
        self._dest = dest
        self.base = base
        self.offset = offset
        self.sym = sym

    @property
    def dest(self) -> Var:
        return self._dest

    @dest.setter
    def dest(self, var: Var) -> None:
        self._dest = var

    def uses(self) -> List[Value]:
        return [self.base, self.offset]

    def replace_use(self, old: Value, new: Value) -> None:
        if self.base == old:
            self.base = new
        if self.offset == old:
            self.offset = new

    @property
    def reads_memory(self) -> bool:
        return True


class Store(Instr):
    """``mem[base + offset] = value``."""

    opcode = "store"

    def __init__(self, base: Value, offset: Value, value: Value, sym: str = None):
        super().__init__()
        self.base = base
        self.offset = offset
        self.value = value
        self.sym = sym

    def uses(self) -> List[Value]:
        return [self.base, self.offset, self.value]

    def replace_use(self, old: Value, new: Value) -> None:
        if self.base == old:
            self.base = new
        if self.offset == old:
            self.offset = new
        if self.value == old:
            self.value = new

    @property
    def has_side_effects(self) -> bool:
        return True

    @property
    def writes_memory(self) -> bool:
        return True


class Call(Instr):
    """``dest = callee(args...)`` (or a bare call when ``dest is None``).

    ``pure`` marks calls the compiler may treat as side-effect free; an
    impure call both reads and writes unknown memory, which is exactly the
    conservatism that produces the paper's Figure 19 outliers (function
    calls modifying globals unknown to the caller loop).
    """

    opcode = "call"

    def __init__(
        self,
        dest: Optional[Var],
        callee: str,
        args: List[Value],
        pure: bool = False,
    ):
        super().__init__()
        self._dest = dest
        self.callee = callee
        self.args = list(args)
        self.pure = pure

    @property
    def dest(self) -> Optional[Var]:
        return self._dest

    @dest.setter
    def dest(self, var: Optional[Var]) -> None:
        self._dest = var

    def uses(self) -> List[Value]:
        return list(self.args)

    def replace_use(self, old: Value, new: Value) -> None:
        self.args = [new if a == old else a for a in self.args]

    @property
    def cost(self) -> int:
        return DEFAULT_CALL_COST

    @property
    def has_side_effects(self) -> bool:
        return not self.pure

    @property
    def reads_memory(self) -> bool:
        return not self.pure

    @property
    def writes_memory(self) -> bool:
        return not self.pure


class Phi(Instr):
    """SSA phi node: ``dest = phi [pred_label -> value, ...]``."""

    opcode = "phi"

    def __init__(self, dest: Var, incomings: Dict[str, Value] = None):
        super().__init__()
        self._dest = dest
        #: Mapping from predecessor block label to the incoming value.
        self.incomings: Dict[str, Value] = dict(incomings or {})

    @property
    def dest(self) -> Var:
        return self._dest

    @dest.setter
    def dest(self, var: Var) -> None:
        self._dest = var

    def uses(self) -> List[Value]:
        return list(self.incomings.values())

    def replace_use(self, old: Value, new: Value) -> None:
        for label, value in list(self.incomings.items()):
            if value == old:
                self.incomings[label] = new

    @property
    def cost(self) -> int:
        # Phis are resolved by copies on edges; they model no computation.
        return 0


class Jump(Instr):
    """Unconditional jump to ``target`` (a block label)."""

    opcode = "jump"
    is_terminator = True

    def __init__(self, target: str):
        super().__init__()
        self.target = target

    def targets(self) -> List[str]:
        return [self.target]

    @property
    def cost(self) -> int:
        return 0


class Branch(Instr):
    """Conditional branch: ``if cond goto iftrue else goto iffalse``."""

    opcode = "br"
    is_terminator = True

    def __init__(self, cond: Value, iftrue: str, iffalse: str):
        super().__init__()
        self.cond = cond
        self.iftrue = iftrue
        self.iffalse = iffalse

    def uses(self) -> List[Value]:
        return [self.cond]

    def replace_use(self, old: Value, new: Value) -> None:
        if self.cond == old:
            self.cond = new

    def targets(self) -> List[str]:
        return [self.iftrue, self.iffalse]


class Return(Instr):
    """Function return, optionally with a value."""

    opcode = "ret"
    is_terminator = True

    def __init__(self, value: Optional[Value] = None):
        super().__init__()
        self.value = value

    def uses(self) -> List[Value]:
        return [self.value] if self.value is not None else []

    def replace_use(self, old: Value, new: Value) -> None:
        if self.value == old:
            self.value = new

    def targets(self) -> List[str]:
        return []

    @property
    def has_side_effects(self) -> bool:
        return True


class SptFork(Instr):
    """``SPT_FORK(loop_id)`` -- spawn a speculative thread for the next
    iteration (paper Figure 2).  Everything textually before the fork in
    the loop body is the *pre-fork region*; everything after is the
    *post-fork region*.
    """

    opcode = "spt_fork"

    def __init__(self, loop_id: int):
        super().__init__()
        self.loop_id = loop_id

    @property
    def has_side_effects(self) -> bool:
        return True

    @property
    def cost(self) -> int:
        return 0


class SptKill(Instr):
    """``SPT_KILL(loop_id)`` -- kill any running speculative thread,
    executed at SPT loop exit (paper §1)."""

    opcode = "spt_kill"

    def __init__(self, loop_id: int):
        super().__init__()
        self.loop_id = loop_id

    @property
    def has_side_effects(self) -> bool:
        return True

    @property
    def cost(self) -> int:
        return 0
