"""Functions and modules."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from repro.ir.block import Block
from repro.ir.instr import Instr
from repro.ir.values import Var


class ArrayDecl:
    """A declared array symbol (function-local or module-global).

    ``size`` is the element count; elements are word-sized.  ``escapes``
    marks symbols whose address may leave the function (passed to calls),
    which the type-based alias analysis must then treat conservatively.
    """

    def __init__(self, sym: str, size: int, escapes: bool = False):
        self.sym = sym
        self.size = size
        self.escapes = escapes

    def __repr__(self) -> str:
        return f"ArrayDecl({self.sym}[{self.size}])"


class Function:
    """An IR function: ordered basic blocks, the first being the entry."""

    def __init__(self, name: str, params: Sequence[Var] = ()):
        self.name = name
        self.params: List[Var] = list(params)
        self.blocks: List[Block] = []
        #: Function-local array declarations, keyed by symbol.
        self.arrays: Dict[str, ArrayDecl] = {}
        self._next_temp = 0
        #: Labels handed out by :meth:`fresh_label` but not yet realized
        #: as blocks (lowering reserves labels ahead of creation).
        self._reserved_labels: set = set()

    # -- structure ---------------------------------------------------

    @property
    def entry(self) -> Block:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    def block(self, label: str) -> Block:
        """Look up a block by label; raises ``KeyError`` if absent."""
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError(f"no block {label!r} in function {self.name}")

    def block_map(self) -> Dict[str, Block]:
        return {blk.label: blk for blk in self.blocks}

    def has_block(self, label: str) -> bool:
        return any(blk.label == label for blk in self.blocks)

    def instructions(self) -> Iterator[Instr]:
        """All instructions in block order."""
        for blk in self.blocks:
            yield from blk.instrs

    # -- mutation ----------------------------------------------------

    def add_block(self, label: str) -> Block:
        if self.has_block(label):
            raise ValueError(f"duplicate block label {label!r}")
        blk = Block(label)
        self.blocks.append(blk)
        return blk

    def fresh_label(self, hint: str = "bb") -> str:
        """An unused block label derived from ``hint``.

        The label is reserved: a second call with the same hint returns
        a different name even before any block is created.
        """
        def taken(label: str) -> bool:
            return self.has_block(label) or label in self._reserved_labels

        candidate = hint
        index = 1
        while taken(candidate):
            candidate = f"{hint}{index}"
            index += 1
        self._reserved_labels.add(candidate)
        return candidate

    def fresh_var(self, hint: str = "t", type=None) -> Var:
        """A fresh temporary register with a function-unique name."""
        from repro.ir.types import INT

        name = f"{hint}${self._next_temp}"
        self._next_temp += 1
        return Var(name, type if type is not None else INT)

    def declare_array(self, sym: str, size: int, escapes: bool = False) -> ArrayDecl:
        decl = ArrayDecl(sym, size, escapes)
        self.arrays[sym] = decl
        return decl

    def __repr__(self) -> str:
        return f"Function({self.name}, {len(self.blocks)} blocks)"


class Module:
    """A compilation unit: functions plus global array symbols."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        #: Module-global arrays, keyed by symbol.
        self.globals: Dict[str, ArrayDecl] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def function(self, name: str) -> Function:
        return self.functions[name]

    def declare_global(self, sym: str, size: int, escapes: bool = False) -> ArrayDecl:
        decl = ArrayDecl(sym, size, escapes)
        self.globals[sym] = decl
        return decl

    def lookup_array(self, func: Optional[Function], sym: str) -> Optional[ArrayDecl]:
        """Resolve ``sym`` against ``func``'s locals then module globals."""
        if func is not None and sym in func.arrays:
            return func.arrays[sym]
        return self.globals.get(sym)

    def __repr__(self) -> str:
        return f"Module({self.name}, {len(self.functions)} functions)"
