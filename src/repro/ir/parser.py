"""Parser for the textual IR emitted by :mod:`repro.ir.printer`.

The grammar is line-oriented; see the printer's module docstring for a
sample.  The parser is intentionally strict: malformed input raises
:class:`IRParseError` with a line number, which keeps hand-written test
fixtures honest.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.ir.function import Function, Module
from repro.ir.instr import (
    BINARY_OPS,
    UNARY_OPS,
    BinOp,
    Branch,
    Call,
    Copy,
    Instr,
    Jump,
    Load,
    LoadAddr,
    Phi,
    Return,
    SptFork,
    SptKill,
    Store,
    UnOp,
)
from repro.ir.values import Const, Value, Var


class IRParseError(ValueError):
    """Raised on malformed textual IR."""

    def __init__(self, message: str, line_no: int):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_IDENT = r"[A-Za-z_][A-Za-z0-9_.$]*"
_FUNC_RE = re.compile(rf"^func\s+({_IDENT})\s*\(([^)]*)\)\s*\{{$")
_ARRAY_RE = re.compile(rf"^(local|global)\s+({_IDENT})\[(\d+)\](\s+escapes)?$")
_LABEL_RE = re.compile(rf"^({_IDENT}):$")
_ASSIGN_RE = re.compile(rf"^({_IDENT})\s*=\s*(.+)$")
_CALL_RE = re.compile(rf"^call\s+(pure\s+)?({_IDENT})\((.*)\)$")
_PHI_RE = re.compile(r"^phi\s*\[(.*)\]$")
_FLOAT_RE = re.compile(r"^-?\d+\.\d*(e[-+]?\d+)?$|^-?\d+e[-+]?\d+$", re.IGNORECASE)
_INT_RE = re.compile(r"^-?\d+$")


def _parse_value(text: str, line_no: int) -> Value:
    text = text.strip()
    if not text:
        raise IRParseError("empty operand", line_no)
    if _INT_RE.match(text):
        return Const(int(text))
    if _FLOAT_RE.match(text):
        return Const(float(text))
    if text == "true":
        return Const(True)
    if text == "false":
        return Const(False)
    if re.match(rf"^{_IDENT}$", text):
        return Var(text)
    raise IRParseError(f"bad operand {text!r}", line_no)


def _split_args(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _parse_rhs(dest: Var, rhs: str, line_no: int) -> Instr:
    """Parse the right-hand side of an assignment line."""
    call_match = _CALL_RE.match(rhs)
    if call_match:
        pure, callee, args_text = call_match.groups()
        args = [_parse_value(a, line_no) for a in _split_args(args_text)]
        return Call(dest, callee, args, pure=bool(pure))

    phi_match = _PHI_RE.match(rhs)
    if phi_match:
        incomings = {}
        for pair in _split_args(phi_match.group(1)):
            if ":" not in pair:
                raise IRParseError(f"bad phi incoming {pair!r}", line_no)
            label, value_text = pair.split(":", 1)
            incomings[label.strip()] = _parse_value(value_text, line_no)
        return Phi(dest, incomings)

    parts = rhs.split(None, 1)
    if not parts:
        raise IRParseError("empty right-hand side", line_no)
    op = parts[0]
    rest = parts[1] if len(parts) > 1 else ""

    if op == "copy":
        return Copy(dest, _parse_value(rest, line_no))
    if op == "addr":
        return LoadAddr(dest, rest.strip())
    if op == "load":
        rest, sym = _strip_sym(rest)
        operands = _split_args(rest)
        if len(operands) != 2:
            raise IRParseError("load needs base, offset", line_no)
        return Load(
            dest,
            _parse_value(operands[0], line_no),
            _parse_value(operands[1], line_no),
            sym,
        )
    if op in BINARY_OPS:
        operands = _split_args(rest)
        if len(operands) != 2:
            raise IRParseError(f"{op} needs two operands", line_no)
        return BinOp(
            op,
            dest,
            _parse_value(operands[0], line_no),
            _parse_value(operands[1], line_no),
        )
    if op in UNARY_OPS:
        return UnOp(op, dest, _parse_value(rest, line_no))
    raise IRParseError(f"unknown operation {op!r}", line_no)


def _strip_sym(text: str):
    """Split a trailing ``!sym`` disambiguation annotation, if present."""
    if "!" in text:
        body, sym = text.rsplit("!", 1)
        return body.strip().rstrip(","), sym.strip()
    return text, None


def _parse_instr(line: str, line_no: int) -> Instr:
    assign = _ASSIGN_RE.match(line)
    if assign:
        dest_name, rhs = assign.groups()
        return _parse_rhs(Var(dest_name), rhs.strip(), line_no)

    parts = line.split(None, 1)
    op = parts[0]
    rest = parts[1] if len(parts) > 1 else ""

    if op == "store":
        rest, sym = _strip_sym(rest)
        operands = _split_args(rest)
        if len(operands) != 3:
            raise IRParseError("store needs base, offset, value", line_no)
        return Store(
            _parse_value(operands[0], line_no),
            _parse_value(operands[1], line_no),
            _parse_value(operands[2], line_no),
            sym,
        )
    if op == "call":
        call_match = _CALL_RE.match(line)
        if not call_match:
            raise IRParseError("malformed call", line_no)
        pure, callee, args_text = call_match.groups()
        args = [_parse_value(a, line_no) for a in _split_args(args_text)]
        return Call(None, callee, args, pure=bool(pure))
    if op == "jump":
        return Jump(rest.strip())
    if op == "br":
        operands = _split_args(rest)
        if len(operands) != 3:
            raise IRParseError("br needs cond, iftrue, iffalse", line_no)
        return Branch(_parse_value(operands[0], line_no), operands[1], operands[2])
    if op == "ret":
        if rest.strip():
            return Return(_parse_value(rest, line_no))
        return Return()
    if op == "spt_fork":
        return SptFork(int(rest))
    if op == "spt_kill":
        return SptKill(int(rest))
    raise IRParseError(f"cannot parse instruction {line!r}", line_no)


def parse_module(text: str) -> Module:
    """Parse a full module from its textual form."""
    module: Optional[Module] = None
    func: Optional[Function] = None
    block = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue

        if line.startswith("module "):
            module = Module(line[len("module "):].strip())
            continue
        if module is None:
            module = Module()

        array_match = _ARRAY_RE.match(line)
        if array_match:
            scope, sym, size, escapes = array_match.groups()
            if scope == "global":
                module.declare_global(sym, int(size), bool(escapes))
            else:
                if func is None:
                    raise IRParseError("local outside function", line_no)
                func.declare_array(sym, int(size), bool(escapes))
            continue

        func_match = _FUNC_RE.match(line)
        if func_match:
            name, params_text = func_match.groups()
            params = [Var(p) for p in _split_args(params_text)]
            func = module.add_function(Function(name, params))
            block = None
            continue

        if line == "}":
            func = None
            block = None
            continue

        label_match = _LABEL_RE.match(line)
        if label_match:
            if func is None:
                raise IRParseError("label outside function", line_no)
            block = func.add_block(label_match.group(1))
            continue

        if func is None or block is None:
            raise IRParseError(f"instruction outside block: {line!r}", line_no)
        instr = _parse_instr(line, line_no)
        if isinstance(instr, Phi):
            block.add_phi(instr)
        else:
            block.append(instr)

    if module is None:
        raise IRParseError("empty input", 0)
    return module


def parse_function(text: str) -> Function:
    """Parse a single function (with an implicit wrapping module)."""
    module = parse_module(text)
    if len(module.functions) != 1:
        raise ValueError("expected exactly one function")
    return next(iter(module.functions.values()))
