"""Basic blocks."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.ir.instr import Instr, Phi


class Block:
    """A basic block: a label plus a straight-line instruction list.

    The last instruction, when present and marked ``is_terminator``, is
    the block terminator.  Phi nodes, when present, form a prefix of the
    instruction list (enforced by the verifier).
    """

    def __init__(self, label: str):
        self.label = label
        self.instrs: List[Instr] = []
        #: Free-form pass annotations (e.g. the frontend tags loop
        #: headers with ``loop_kind: "for" | "while"``, the paper's
        #: loop-unrolling pragma equivalent).
        self.annotations: dict = {}

    # -- structure ---------------------------------------------------

    @property
    def terminator(self) -> Optional[Instr]:
        """The block terminator, or ``None`` for an unterminated block."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def successors(self) -> List[str]:
        """Labels of successor blocks (empty for return / unterminated)."""
        term = self.terminator
        if term is None:
            return []
        return term.targets()

    def phis(self) -> Iterator[Phi]:
        """The phi-node prefix of this block."""
        for instr in self.instrs:
            if isinstance(instr, Phi):
                yield instr
            else:
                break

    def non_phi_instrs(self) -> Iterator[Instr]:
        """Instructions after the phi prefix."""
        for instr in self.instrs:
            if not isinstance(instr, Phi):
                yield instr

    # -- mutation ----------------------------------------------------

    def append(self, instr: Instr) -> Instr:
        """Append ``instr``; raises if the block is already terminated."""
        if self.terminator is not None:
            raise ValueError(f"block {self.label} is already terminated")
        self.instrs.append(instr)
        return instr

    def insert_before_terminator(self, instr: Instr) -> Instr:
        """Insert ``instr`` just before the terminator (or append)."""
        if self.terminator is not None:
            self.instrs.insert(len(self.instrs) - 1, instr)
        else:
            self.instrs.append(instr)
        return instr

    def add_phi(self, phi: Phi) -> Phi:
        """Insert ``phi`` at the end of the phi prefix."""
        index = 0
        while index < len(self.instrs) and isinstance(self.instrs[index], Phi):
            index += 1
        self.instrs.insert(index, phi)
        return phi

    def __repr__(self) -> str:
        return f"Block({self.label}, {len(self.instrs)} instrs)"

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)
