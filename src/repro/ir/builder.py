"""Convenience builder for constructing IR by hand (tests, examples).

The builder keeps a *current block* cursor and offers one method per
instruction kind.  Operands may be Python numbers; they are coerced to
:class:`~repro.ir.values.Const`.

Example::

    fn = Function("count", [Var("n")])
    b = Builder(fn)
    b.new_block("entry")
    i = Var("i")
    b.copy(i, 0)
    ...
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.ir.block import Block
from repro.ir.function import Function
from repro.ir.instr import (
    BinOp,
    Branch,
    Call,
    Copy,
    Instr,
    Jump,
    Load,
    LoadAddr,
    Phi,
    Return,
    SptFork,
    SptKill,
    Store,
    UnOp,
)
from repro.ir.types import INT, Type
from repro.ir.values import Value, Var, as_value

Operand = Union[Value, int, float, bool]


class Builder:
    """Cursor-style IR builder over a :class:`Function`."""

    def __init__(self, func: Function):
        self.func = func
        self.block: Optional[Block] = func.blocks[-1] if func.blocks else None

    # -- cursor ------------------------------------------------------

    def new_block(self, label: str = None) -> Block:
        """Create a new block and move the cursor to it."""
        self.block = self.func.add_block(
            label if label is not None else self.func.fresh_label()
        )
        return self.block

    def at(self, block: Block) -> "Builder":
        """Move the cursor to ``block``; returns ``self`` for chaining."""
        self.block = block
        return self

    def _emit(self, instr: Instr) -> Instr:
        if self.block is None:
            raise ValueError("builder has no current block")
        return self.block.append(instr)

    def fresh(self, hint: str = "t", type: Type = INT) -> Var:
        return self.func.fresh_var(hint, type)

    # -- instructions --------------------------------------------------

    def binop(self, op: str, dest: Var, lhs: Operand, rhs: Operand) -> Var:
        self._emit(BinOp(op, dest, as_value(lhs), as_value(rhs)))
        return dest

    def add(self, dest: Var, lhs: Operand, rhs: Operand) -> Var:
        return self.binop("add", dest, lhs, rhs)

    def sub(self, dest: Var, lhs: Operand, rhs: Operand) -> Var:
        return self.binop("sub", dest, lhs, rhs)

    def mul(self, dest: Var, lhs: Operand, rhs: Operand) -> Var:
        return self.binop("mul", dest, lhs, rhs)

    def div(self, dest: Var, lhs: Operand, rhs: Operand) -> Var:
        return self.binop("div", dest, lhs, rhs)

    def lt(self, dest: Var, lhs: Operand, rhs: Operand) -> Var:
        return self.binop("lt", dest, lhs, rhs)

    def unop(self, op: str, dest: Var, src: Operand) -> Var:
        self._emit(UnOp(op, dest, as_value(src)))
        return dest

    def copy(self, dest: Var, src: Operand) -> Var:
        self._emit(Copy(dest, as_value(src)))
        return dest

    def addr(self, dest: Var, sym: str) -> Var:
        self._emit(LoadAddr(dest, sym))
        return dest

    def load(self, dest: Var, base: Operand, offset: Operand = 0, sym: str = None) -> Var:
        self._emit(Load(dest, as_value(base), as_value(offset), sym))
        return dest

    def store(self, base: Operand, offset: Operand, value: Operand, sym: str = None):
        return self._emit(Store(as_value(base), as_value(offset), as_value(value), sym))

    def call(
        self,
        dest: Optional[Var],
        callee: str,
        args: List[Operand] = (),
        pure: bool = False,
    ):
        self._emit(Call(dest, callee, [as_value(a) for a in args], pure))
        return dest

    def phi(self, dest: Var, incomings=None) -> Phi:
        node = Phi(dest, {})
        if incomings:
            for label, value in dict(incomings).items():
                node.incomings[label] = as_value(value)
        if self.block is None:
            raise ValueError("builder has no current block")
        return self.block.add_phi(node)

    def jump(self, target: str):
        return self._emit(Jump(target))

    def branch(self, cond: Operand, iftrue: str, iffalse: str):
        return self._emit(Branch(as_value(cond), iftrue, iffalse))

    def ret(self, value: Operand = None):
        return self._emit(Return(as_value(value) if value is not None else None))

    def spt_fork(self, loop_id: int):
        return self._emit(SptFork(loop_id))

    def spt_kill(self, loop_id: int):
        return self._emit(SptKill(loop_id))
