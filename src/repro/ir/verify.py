"""IR well-formedness verifier.

Checks are split into *structural* checks (always required) and *SSA*
checks (required once a function claims SSA form):

Structural:
  S1. every block ends in exactly one terminator (last instruction);
  S2. every jump/branch target names an existing block;
  S3. phi nodes form a prefix of their block;
  S4. every phi has exactly one incoming per CFG predecessor;
  S5. memory-op ``sym`` hints name declared arrays (when present).

SSA:
  V1. every register is defined at most once;
  V2. every use is dominated by its definition (phi uses are checked at
      the end of the corresponding predecessor).
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function, Module
from repro.ir.instr import Load, Phi, Store
from repro.ir.values import Const, Var


class VerificationError(ValueError):
    """Raised when an IR function violates a well-formedness rule."""


def _structural_errors(module: Module, func: Function) -> List[str]:
    errors: List[str] = []
    labels = {blk.label for blk in func.blocks}
    preds = {blk.label: [] for blk in func.blocks}

    for blk in func.blocks:
        for index, instr in enumerate(blk.instrs):
            is_last = index == len(blk.instrs) - 1
            if instr.is_terminator and not is_last:
                errors.append(f"{blk.label}: terminator mid-block at {index}")
        term = blk.terminator
        if term is None:
            errors.append(f"{blk.label}: missing terminator")
            continue
        for target in term.targets():
            if target not in labels:
                errors.append(f"{blk.label}: branch to unknown block {target!r}")
            else:
                preds[target].append(blk.label)

    for blk in func.blocks:
        seen_non_phi = False
        for instr in blk.instrs:
            if isinstance(instr, Phi):
                if seen_non_phi:
                    errors.append(f"{blk.label}: phi after non-phi instruction")
                expected = set(preds.get(blk.label, []))
                got = set(instr.incomings)
                if expected != got:
                    errors.append(
                        f"{blk.label}: phi {instr.dest} incomings {sorted(got)} "
                        f"!= preds {sorted(expected)}"
                    )
            else:
                seen_non_phi = True

            if isinstance(instr, (Load, Store)) and instr.sym is not None:
                if module.lookup_array(func, instr.sym) is None:
                    errors.append(
                        f"{blk.label}: memory op names undeclared array "
                        f"{instr.sym!r}"
                    )
    return errors


def _ssa_errors(func: Function) -> List[str]:
    from repro.analysis.dominators import DominatorTree

    errors: List[str] = []
    defs = {}
    for param in func.params:
        defs[param] = ("<param>", -1)
    for blk in func.blocks:
        for index, instr in enumerate(blk.instrs):
            dest = instr.dest
            if dest is None:
                continue
            if dest in defs:
                errors.append(f"{blk.label}: {dest} redefined (SSA violation)")
            defs[dest] = (blk.label, index)

    if errors:
        return errors

    domtree = DominatorTree.build(func)
    block_map = func.block_map()

    def dominates_use(def_site, use_block: str, use_index: int) -> bool:
        def_block, def_index = def_site
        if def_block == "<param>":
            return True
        if def_block == use_block:
            return def_index < use_index
        return domtree.dominates(def_block, use_block)

    for blk in func.blocks:
        for index, instr in enumerate(blk.instrs):
            if isinstance(instr, Phi):
                for pred_label, value in instr.incomings.items():
                    if not isinstance(value, Var):
                        continue
                    if value not in defs:
                        errors.append(f"{blk.label}: phi uses undefined {value}")
                        continue
                    pred = block_map.get(pred_label)
                    end = len(pred.instrs) if pred else 0
                    if not dominates_use(defs[value], pred_label, end):
                        errors.append(
                            f"{blk.label}: phi incoming {value} from "
                            f"{pred_label} not dominated by its definition"
                        )
            else:
                for value in instr.uses():
                    if not isinstance(value, Var):
                        continue
                    if value not in defs:
                        errors.append(
                            f"{blk.label}: use of undefined {value} in "
                            f"{instr!r}"
                        )
                    elif not dominates_use(defs[value], blk.label, index):
                        errors.append(
                            f"{blk.label}: use of {value} not dominated "
                            f"by its definition"
                        )
    return errors


def verify_function(module: Module, func: Function, ssa: bool = False) -> None:
    """Raise :class:`VerificationError` if ``func`` is malformed."""
    errors = _structural_errors(module, func)
    if not errors and ssa:
        errors.extend(_ssa_errors(func))
    if errors:
        details = "\n  ".join(errors)
        raise VerificationError(f"function {func.name}:\n  {details}")


def verify_module(module: Module, ssa: bool = False) -> None:
    for func in module.functions.values():
        verify_function(module, func, ssa=ssa)
