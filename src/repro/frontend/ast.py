"""MiniC abstract syntax tree."""

from __future__ import annotations

from typing import List, Optional


class Node:
    """Base AST node; ``line`` is the 1-based source line."""

    def __init__(self, line: int = 0):
        self.line = line


# -- expressions ------------------------------------------------------------


class Expr(Node):
    pass


class IntLit(Expr):
    def __init__(self, value: int, line: int = 0):
        super().__init__(line)
        self.value = value


class FloatLit(Expr):
    def __init__(self, value: float, line: int = 0):
        super().__init__(line)
        self.value = value


class VarRef(Expr):
    def __init__(self, name: str, line: int = 0):
        super().__init__(line)
        self.name = name


class ArrayRef(Expr):
    def __init__(self, name: str, index: Expr, line: int = 0):
        super().__init__(line)
        self.name = name
        self.index = index


class Unary(Expr):
    """``op`` is one of ``- ! ~``."""

    def __init__(self, op: str, operand: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Expr):
    """C binary operators including short-circuit ``&&``/``||``."""

    def __init__(self, op: str, lhs: Expr, rhs: Expr, line: int = 0):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class CallExpr(Expr):
    def __init__(self, name: str, args: List[Expr], line: int = 0):
        super().__init__(line)
        self.name = name
        self.args = args


# -- statements -----------------------------------------------------------


class Stmt(Node):
    pass


class Block(Stmt):
    def __init__(self, stmts: List[Stmt], line: int = 0):
        super().__init__(line)
        self.stmts = stmts


class VarDecl(Stmt):
    """``int x = init;`` or ``float buf[64];`` (arrays take no init)."""

    def __init__(
        self,
        type_name: str,
        name: str,
        init: Optional[Expr] = None,
        array_size: Optional[int] = None,
        line: int = 0,
    ):
        super().__init__(line)
        self.type_name = type_name
        self.name = name
        self.init = init
        self.array_size = array_size


class Assign(Stmt):
    """``target = value`` where target is a VarRef or ArrayRef."""

    def __init__(self, target: Expr, value: Expr, line: int = 0):
        super().__init__(line)
        self.target = target
        self.value = value


class ExprStmt(Stmt):
    def __init__(self, expr: Expr, line: int = 0):
        super().__init__(line)
        self.expr = expr


class If(Stmt):
    def __init__(
        self,
        cond: Expr,
        then_body: Block,
        else_body: Optional[Block] = None,
        line: int = 0,
    ):
        super().__init__(line)
        self.cond = cond
        self.then_body = then_body
        self.else_body = else_body


class While(Stmt):
    def __init__(self, cond: Expr, body: Block, line: int = 0):
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Stmt):
    def __init__(
        self,
        init: Optional[Stmt],
        cond: Optional[Expr],
        step: Optional[Stmt],
        body: Block,
        line: int = 0,
    ):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Break(Stmt):
    pass


class Continue(Stmt):
    pass


class Return(Stmt):
    def __init__(self, value: Optional[Expr] = None, line: int = 0):
        super().__init__(line)
        self.value = value


# -- top level ---------------------------------------------------------------


class Param(Node):
    def __init__(self, type_name: str, name: str, line: int = 0):
        super().__init__(line)
        self.type_name = type_name
        self.name = name


class FuncDef(Node):
    def __init__(
        self,
        return_type: str,
        name: str,
        params: List[Param],
        body: Block,
        line: int = 0,
    ):
        super().__init__(line)
        self.return_type = return_type
        self.name = name
        self.params = params
        self.body = body


class GlobalDecl(Node):
    """``global int table[100];`` or ``global int heap[100] aliased;``.

    ``aliased`` marks data that real C would reach through pointers:
    the type-based alias analysis must treat it conservatively (it "may
    alias anything"), exactly like ORC facing pointer-heavy SPEC code.
    """

    def __init__(
        self,
        type_name: str,
        name: str,
        array_size: int,
        aliased: bool = False,
        line: int = 0,
    ):
        super().__init__(line)
        self.type_name = type_name
        self.name = name
        self.array_size = array_size
        self.aliased = aliased


class ExternDecl(Node):
    """``extern int rand_next(int);`` -- declares an intrinsic.  ``pure``
    externs are side-effect free for the dependence analysis."""

    def __init__(self, name: str, pure: bool = False, line: int = 0):
        super().__init__(line)
        self.name = name
        self.pure = pure


class Program(Node):
    def __init__(self, items: List[Node], line: int = 0):
        super().__init__(line)
        self.items = items

    @property
    def functions(self) -> List[FuncDef]:
        return [item for item in self.items if isinstance(item, FuncDef)]

    @property
    def globals(self) -> List[GlobalDecl]:
        return [item for item in self.items if isinstance(item, GlobalDecl)]

    @property
    def externs(self) -> List[ExternDecl]:
        return [item for item in self.items if isinstance(item, ExternDecl)]
