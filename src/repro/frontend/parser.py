"""Recursive-descent parser for MiniC."""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast
from repro.frontend.lexer import Token, tokenize

#: Binary operator precedence (larger binds tighter), C-like.
PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_COMPOUND_ASSIGN = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}


class ParseError(ValueError):
    def __init__(self, message: str, token: Token):
        super().__init__(f"{token.line}:{token.column}: {message}")
        self.token = token


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ---------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind: str, text: str = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str = None) -> Token:
        if not self.check(kind, text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, got {self.peek().text!r}", self.peek())
        return self.advance()

    # -- top level ---------------------------------------------------------

    def parse_program(self) -> ast.Program:
        items: List[ast.Node] = []
        while not self.check("eof"):
            items.append(self.parse_top_level())
        return ast.Program(items)

    def parse_top_level(self) -> ast.Node:
        if self.check("keyword", "global"):
            return self.parse_global()
        if self.check("keyword", "extern"):
            return self.parse_extern()
        return self.parse_function()

    def parse_global(self) -> ast.GlobalDecl:
        start = self.expect("keyword", "global")
        type_name = self.expect("keyword").text
        name = self.expect("ident").text
        self.expect("op", "[")
        size = int(self.expect("int").text)
        self.expect("op", "]")
        aliased = self.accept("keyword", "aliased") is not None
        self.expect("op", ";")
        return ast.GlobalDecl(type_name, name, size, aliased=aliased, line=start.line)

    def parse_extern(self) -> ast.ExternDecl:
        start = self.expect("keyword", "extern")
        pure = self.accept("keyword", "pure") is not None
        self.expect("keyword")  # return type, unchecked
        name = self.expect("ident").text
        self.expect("op", "(")
        depth = 1
        while depth:  # skip the parameter list; externs are untyped here
            token = self.advance()
            if token.kind == "eof":
                raise ParseError("unterminated extern declaration", token)
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth -= 1
        self.expect("op", ";")
        return ast.ExternDecl(name, pure=pure, line=start.line)

    def parse_function(self) -> ast.FuncDef:
        return_type = self.expect("keyword").text
        if return_type not in ("int", "float", "void"):
            raise ParseError(f"bad return type {return_type!r}", self.peek())
        name = self.expect("ident").text
        start_line = self.peek().line
        self.expect("op", "(")
        params: List[ast.Param] = []
        if not self.check("op", ")"):
            while True:
                type_name = self.expect("keyword").text
                param_name = self.expect("ident").text
                params.append(ast.Param(type_name, param_name))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.parse_block()
        return ast.FuncDef(return_type, name, params, body, line=start_line)

    # -- statements -----------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect("op", "{")
        stmts: List[ast.Stmt] = []
        while not self.check("op", "}"):
            stmts.append(self.parse_statement())
        self.expect("op", "}")
        return ast.Block(stmts, line=start.line)

    def parse_statement(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "op" and token.text == "{":
            return self.parse_block()
        if token.kind == "keyword":
            if token.text in ("int", "float"):
                return self.parse_decl()
            if token.text == "if":
                return self.parse_if()
            if token.text == "while":
                return self.parse_while()
            if token.text == "for":
                return self.parse_for()
            if token.text == "return":
                self.advance()
                value = None
                if not self.check("op", ";"):
                    value = self.parse_expression()
                self.expect("op", ";")
                return ast.Return(value, line=token.line)
            if token.text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(line=token.line)
        stmt = self.parse_simple_statement()
        self.expect("op", ";")
        return stmt

    def parse_decl(self) -> ast.VarDecl:
        type_token = self.advance()
        name = self.expect("ident").text
        if self.accept("op", "["):
            size = int(self.expect("int").text)
            self.expect("op", "]")
            self.expect("op", ";")
            return ast.VarDecl(
                type_token.text, name, array_size=size, line=type_token.line
            )
        init = None
        if self.accept("op", "="):
            init = self.parse_expression()
        self.expect("op", ";")
        return ast.VarDecl(type_token.text, name, init=init, line=type_token.line)

    def parse_if(self) -> ast.If:
        start = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then_body = self._statement_as_block()
        else_body = None
        if self.accept("keyword", "else"):
            else_body = self._statement_as_block()
        return ast.If(cond, then_body, else_body, line=start.line)

    def parse_while(self) -> ast.While:
        start = self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self._statement_as_block()
        return ast.While(cond, body, line=start.line)

    def parse_for(self) -> ast.For:
        start = self.expect("keyword", "for")
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.check("op", ";"):
            if self.check("keyword", "int") or self.check("keyword", "float"):
                init = self.parse_decl()  # consumes the ';'
            else:
                init = self.parse_simple_statement()
                self.expect("op", ";")
        else:
            self.expect("op", ";")
        cond: Optional[ast.Expr] = None
        if not self.check("op", ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        step: Optional[ast.Stmt] = None
        if not self.check("op", ")"):
            step = self.parse_simple_statement()
        self.expect("op", ")")
        body = self._statement_as_block()
        return ast.For(init, cond, step, body, line=start.line)

    def _statement_as_block(self) -> ast.Block:
        stmt = self.parse_statement()
        if isinstance(stmt, ast.Block):
            return stmt
        return ast.Block([stmt], line=stmt.line)

    def parse_simple_statement(self) -> ast.Stmt:
        """Assignment, compound assignment, ++/--, or expression."""
        start = self.peek()
        expr = self.parse_expression()
        if self.check("op") and self.peek().text in _COMPOUND_ASSIGN:
            op = _COMPOUND_ASSIGN[self.advance().text]
            value = self.parse_expression()
            self._require_lvalue(expr)
            return ast.Assign(
                expr, ast.Binary(op, expr, value, line=start.line), line=start.line
            )
        if self.accept("op", "="):
            value = self.parse_expression()
            self._require_lvalue(expr)
            return ast.Assign(expr, value, line=start.line)
        if self.check("op") and self.peek().text in ("++", "--"):
            op = "+" if self.advance().text == "++" else "-"
            self._require_lvalue(expr)
            return ast.Assign(
                expr,
                ast.Binary(op, expr, ast.IntLit(1), line=start.line),
                line=start.line,
            )
        return ast.ExprStmt(expr, line=start.line)

    def _require_lvalue(self, expr: ast.Expr) -> None:
        if not isinstance(expr, (ast.VarRef, ast.ArrayRef)):
            raise ParseError("assignment target is not an lvalue", self.peek())

    # -- expressions (precedence climbing) -------------------------------------

    def parse_expression(self, min_precedence: int = 1) -> ast.Expr:
        lhs = self.parse_unary()
        while True:
            token = self.peek()
            if token.kind != "op" or token.text not in PRECEDENCE:
                break
            precedence = PRECEDENCE[token.text]
            if precedence < min_precedence:
                break
            self.advance()
            rhs = self.parse_expression(precedence + 1)
            lhs = ast.Binary(token.text, lhs, rhs, line=token.line)
        return lhs

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(token.text, operand, line=token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return ast.IntLit(int(token.text), line=token.line)
        if token.kind == "float":
            self.advance()
            return ast.FloatLit(float(token.text), line=token.line)
        if token.kind == "op" and token.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        if token.kind == "ident":
            self.advance()
            if self.accept("op", "("):
                args: List[ast.Expr] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return ast.CallExpr(token.text, args, line=token.line)
            if self.accept("op", "["):
                index = self.parse_expression()
                self.expect("op", "]")
                return ast.ArrayRef(token.text, index, line=token.line)
            return ast.VarRef(token.text, line=token.line)
        raise ParseError(f"unexpected token {token.text!r}", token)


def parse_source(source: str) -> ast.Program:
    """Parse MiniC source into an AST."""
    return Parser(source).parse_program()
