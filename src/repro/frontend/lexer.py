"""Lexer for MiniC, the small C-like language the workload suite is
written in.

MiniC exists so the synthetic SPEC2000Int-like benchmarks (paper §8) can
be authored as readable source instead of hand-written IR.  The language
covers what the workloads need: ``int``/``float`` scalars, fixed-size
arrays, functions, ``if``/``while``/``for``/``break``/``continue``, and
C expression syntax.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

KEYWORDS = {
    "int",
    "float",
    "void",
    "if",
    "else",
    "while",
    "for",
    "return",
    "break",
    "continue",
    "global",
    "extern",
    "pure",
    "aliased",
}

#: Multi-character operators, longest first so maximal munch works.
MULTI_OPS = [
    "<<=",
    ">>=",
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "++",
    "--",
]

SINGLE_OPS = "+-*/%<>=!&|^~(){}[];,"


class Token(NamedTuple):
    kind: str  # "ident" | "keyword" | "int" | "float" | "op" | "eof"
    text: str
    line: int
    column: int


class LexError(ValueError):
    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


def tokenize(source: str) -> List[Token]:
    """Produce the token stream, ending with one ``eof`` token."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> LexError:
        return LexError(message, line, column)

    while index < length:
        ch = source[index]

        if ch == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if ch in " \t\r":
            index += 1
            column += 1
            continue

        # Comments: // to end of line, /* ... */ possibly multi-line.
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise error("unterminated comment")
            for skipped in source[index:end]:
                if skipped == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
            index = end + 2
            column += 2
            continue

        start_line, start_column = line, column

        if ch.isdigit() or (
            ch == "." and index + 1 < length and source[index + 1].isdigit()
        ):
            end = index
            is_float = False
            while end < length and (source[end].isdigit() or source[end] == "."):
                if source[end] == ".":
                    if is_float:
                        raise error("malformed number")
                    is_float = True
                end += 1
            if end < length and source[end] in "eE":
                is_float = True
                end += 1
                if end < length and source[end] in "+-":
                    end += 1
                while end < length and source[end].isdigit():
                    end += 1
            text = source[index:end]
            kind = "float" if is_float else "int"
            tokens.append(Token(kind, text, start_line, start_column))
            column += end - index
            index = end
            continue

        if ch.isalpha() or ch == "_":
            end = index
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[index:end]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_column))
            column += end - index
            index = end
            continue

        matched = None
        for op in MULTI_OPS:
            if source.startswith(op, index):
                matched = op
                break
        if matched is None and ch in SINGLE_OPS:
            matched = ch
        if matched is None:
            raise error(f"unexpected character {ch!r}")
        tokens.append(Token("op", matched, start_line, start_column))
        index += len(matched)
        column += len(matched)

    tokens.append(Token("eof", "", line, column))
    return tokens
