"""The MiniC frontend: lexer, parser, semantic analysis, and lowering
to the SPT IR."""

from repro.frontend.lexer import LexError, Token, tokenize
from repro.frontend.lower import LowerError, compile_minic, lower_program
from repro.frontend.parser import ParseError, parse_source
from repro.frontend.sema import ProgramInfo, SemaError, analyze

__all__ = [
    "LexError",
    "LowerError",
    "ParseError",
    "ProgramInfo",
    "SemaError",
    "Token",
    "analyze",
    "compile_minic",
    "lower_program",
    "parse_source",
    "tokenize",
]
