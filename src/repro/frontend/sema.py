"""Semantic analysis for MiniC.

Checks performed:

* every variable/array reference resolves to a declaration (parameter,
  local, or global array);
* arrays are always indexed, scalars never are;
* no duplicate declarations within one function (MiniC uses
  function-level scoping: a name is declared at most once per function);
* calls to defined functions have matching arity; calls to declared
  externs (or undeclared names) are treated as intrinsics;
* ``break``/``continue`` appear only inside loops;
* a ``void`` function never returns a value, a typed one always does.

The analysis annotates each ``FuncDef`` with ``symbol_kinds``: a map
from name to ``("int",) | ("float",) | ("array", elem, size)`` that the
lowering consumes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend import ast

Kind = Tuple


class SemaError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class ProgramInfo:
    """Program-level symbol information produced by :func:`analyze`."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.functions: Dict[str, ast.FuncDef] = {}
        self.globals: Dict[str, ast.GlobalDecl] = {}
        #: extern name -> pure flag
        self.externs: Dict[str, bool] = {}


def analyze(program: ast.Program) -> ProgramInfo:
    """Check ``program``; raises :class:`SemaError` on the first error."""
    info = ProgramInfo(program)

    for decl in program.globals:
        if decl.name in info.globals:
            raise SemaError(f"duplicate global {decl.name!r}", decl.line)
        if decl.type_name not in ("int", "float"):
            raise SemaError(f"bad global type {decl.type_name!r}", decl.line)
        info.globals[decl.name] = decl
    for decl in program.externs:
        info.externs[decl.name] = decl.pure
    for func in program.functions:
        if func.name in info.functions:
            raise SemaError(f"duplicate function {func.name!r}", func.line)
        info.functions[func.name] = func

    for func in program.functions:
        _check_function(info, func)
    return info


def _check_function(info: ProgramInfo, func: ast.FuncDef) -> None:
    kinds: Dict[str, Kind] = {}
    for name, decl in info.globals.items():
        kinds[name] = ("array", decl.type_name, decl.array_size)
    for param in func.params:
        if param.type_name not in ("int", "float"):
            raise SemaError(f"bad parameter type {param.type_name!r}", func.line)
        if param.name in kinds and kinds[param.name][0] != "array":
            raise SemaError(f"duplicate parameter {param.name!r}", func.line)
        kinds[param.name] = (param.type_name,)

    declared_locals: set = set()

    def check_block(block: ast.Block, loop_depth: int) -> None:
        block_decls: set = set()
        for stmt in block.stmts:
            if isinstance(stmt, ast.VarDecl):
                if stmt.name in block_decls:
                    raise SemaError(
                        f"duplicate declaration of {stmt.name!r}", stmt.line
                    )
                block_decls.add(stmt.name)
            check_stmt(stmt, loop_depth)

    def check_stmt(stmt: ast.Stmt, loop_depth: int) -> None:
        if isinstance(stmt, ast.Block):
            check_block(stmt, loop_depth)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.array_size is not None:
                new_kind: Kind = ("array", stmt.type_name, stmt.array_size)
            else:
                new_kind = (stmt.type_name,)
            existing = kinds.get(stmt.name)
            if existing is not None and stmt.name in info.globals:
                raise SemaError(
                    f"local {stmt.name!r} shadows a global array", stmt.line
                )
            if existing is not None and existing != new_kind:
                raise SemaError(
                    f"conflicting redeclaration of {stmt.name!r}", stmt.line
                )
            if existing is not None and new_kind[0] == "array":
                # Two arrays of the same name would share storage.
                raise SemaError(f"duplicate array {stmt.name!r}", stmt.line)
            # MiniC uses function-level scoping; redeclaring the same
            # scalar (e.g. a second `for (int i = ...)`) is benign.
            declared_locals.add(stmt.name)
            kinds[stmt.name] = new_kind
            if stmt.array_size is not None:
                if stmt.init is not None:
                    raise SemaError("arrays take no initializer", stmt.line)
            elif stmt.init is not None:
                check_expr(stmt.init)
        elif isinstance(stmt, ast.Assign):
            check_lvalue(stmt.target)
            check_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            check_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            check_expr(stmt.cond)
            check_block(stmt.then_body, loop_depth)
            if stmt.else_body is not None:
                check_block(stmt.else_body, loop_depth)
        elif isinstance(stmt, ast.While):
            check_expr(stmt.cond)
            check_block(stmt.body, loop_depth + 1)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                check_stmt(stmt.init, loop_depth)
            if stmt.cond is not None:
                check_expr(stmt.cond)
            if stmt.step is not None:
                check_stmt(stmt.step, loop_depth)
            check_block(stmt.body, loop_depth + 1)
        elif isinstance(stmt, ast.Break):
            if loop_depth == 0:
                raise SemaError("break outside loop", stmt.line)
        elif isinstance(stmt, ast.Continue):
            if loop_depth == 0:
                raise SemaError("continue outside loop", stmt.line)
        elif isinstance(stmt, ast.Return):
            if func.return_type == "void" and stmt.value is not None:
                raise SemaError("void function returns a value", stmt.line)
            if func.return_type != "void" and stmt.value is None:
                raise SemaError("missing return value", stmt.line)
            if stmt.value is not None:
                check_expr(stmt.value)
        else:
            raise SemaError(f"unknown statement {stmt!r}", stmt.line)

    def check_lvalue(expr: ast.Expr) -> None:
        if isinstance(expr, ast.VarRef):
            kind = kinds.get(expr.name)
            if kind is None:
                raise SemaError(f"undeclared variable {expr.name!r}", expr.line)
            if kind[0] == "array":
                raise SemaError(f"array {expr.name!r} assigned without index", expr.line)
        elif isinstance(expr, ast.ArrayRef):
            kind = kinds.get(expr.name)
            if kind is None:
                raise SemaError(f"undeclared array {expr.name!r}", expr.line)
            if kind[0] != "array":
                raise SemaError(f"{expr.name!r} is not an array", expr.line)
            check_expr(expr.index)
        else:
            raise SemaError("assignment target is not an lvalue", expr.line)

    def check_expr(expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLit, ast.FloatLit)):
            return
        if isinstance(expr, ast.VarRef):
            kind = kinds.get(expr.name)
            if kind is None:
                raise SemaError(f"undeclared variable {expr.name!r}", expr.line)
            if kind[0] == "array":
                raise SemaError(f"array {expr.name!r} used without index", expr.line)
            return
        if isinstance(expr, ast.ArrayRef):
            check_lvalue(expr)
            return
        if isinstance(expr, ast.Unary):
            check_expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            check_expr(expr.lhs)
            check_expr(expr.rhs)
            return
        if isinstance(expr, ast.CallExpr):
            target = info.functions.get(expr.name)
            if target is not None and len(target.params) != len(expr.args):
                raise SemaError(
                    f"{expr.name!r} expects {len(target.params)} args, "
                    f"got {len(expr.args)}",
                    expr.line,
                )
            for arg in expr.args:
                check_expr(arg)
            return
        raise SemaError(f"unknown expression {expr!r}", expr.line)

    check_block(func.body, 0)
    func.symbol_kinds = kinds  # type: ignore[attr-defined]
