"""Lowering MiniC ASTs to the (pre-SSA) IR.

Design notes:

* scalars become mutable IR registers named after the source variable;
  SSA construction versions them later;
* every referenced array gets its base address materialized once in the
  entry block (``LoadAddr``), so all accesses carry an exact symbol hint
  for the type-based alias analysis;
* ``for`` headers are annotated ``loop_kind: "for"`` and ``while``
  headers ``"while"`` -- the unroller's pragma (paper §7.1: ORC could
  only unroll counted DO loops);
* ``&&``/``||`` short-circuit through control flow;
* assignments into ``float`` scalars/arrays insert ``i2f`` so integer
  values promote like C.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.frontend import ast
from repro.frontend.sema import ProgramInfo, SemaError, analyze
from repro.ir.builder import Builder
from repro.ir.function import Function, Module
from repro.ir.instr import Branch, Call, Jump, Return
from repro.ir.values import Const, Value, Var


class LowerError(ValueError):
    pass


class _FunctionLowerer:
    def __init__(self, info: ProgramInfo, module: Module, func_def: ast.FuncDef):
        self.info = info
        self.module = module
        self.func_def = func_def
        self.kinds: Dict[str, Tuple] = func_def.symbol_kinds  # set by sema
        self.func = Function(func_def.name, [Var(p.name) for p in func_def.params])
        self.builder = Builder(self.func)
        #: array sym -> Var holding its base address
        self.array_bases: Dict[str, Var] = {}
        #: stack of (continue_target, break_target)
        self.loop_targets: List[Tuple[str, str]] = []

    # -- plumbing -----------------------------------------------------------

    def fresh(self, hint: str = "t") -> Var:
        return self.func.fresh_var(hint)

    def terminated(self) -> bool:
        return self.builder.block.terminator is not None

    def start_block(self, hint: str) -> str:
        label = self.func.fresh_label(hint)
        self.builder.new_block(label)
        return label

    def ensure_open_block(self) -> None:
        """After a return/break, further statements are unreachable; give
        them a fresh (dead) block so lowering stays total."""
        if self.terminated():
            self.start_block("dead")

    def _is_float_target(self, kind: Tuple) -> bool:
        if kind[0] == "float":
            return True
        return kind[0] == "array" and kind[1] == "float"

    def _coerce_float(self, value: Value) -> Value:
        if isinstance(value, Const):
            return Const(float(value.value))
        dest = self.fresh("f")
        self.builder.unop("i2f", dest, value)
        return dest

    # -- entry ---------------------------------------------------------------

    def lower(self) -> Function:
        self.builder.new_block("entry")
        # Declare and materialize arrays up front.
        used_arrays = _collect_array_names(self.func_def)
        for name, kind in self.kinds.items():
            if kind[0] != "array":
                continue
            if name not in self.info.globals:
                self.func.declare_array(name, kind[2])
            if name in used_arrays:
                base = Var(f"{name}$base")
                self.builder.addr(base, name)
                self.array_bases[name] = base

        self.lower_block(self.func_def.body)
        if not self.terminated():
            if self.func_def.return_type == "void":
                self.builder.ret()
            else:
                self.builder.ret(0)
        return self.func

    # -- statements -----------------------------------------------------------

    def lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self.ensure_open_block()
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.array_size is None and stmt.init is not None:
                value = self.lower_expr(stmt.init)
                if stmt.type_name == "float":
                    value = self._coerce_float(value)
                self.builder.copy(Var(stmt.name), value)
        elif isinstance(stmt, ast.Assign):
            self.lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.CallExpr):
                self.lower_call(stmt.expr, want_value=False)
            else:
                self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Break):
            self.builder.jump(self.loop_targets[-1][1])
        elif isinstance(stmt, ast.Continue):
            self.builder.jump(self.loop_targets[-1][0])
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.builder.ret(self.lower_expr(stmt.value))
            else:
                self.builder.ret()
        else:
            raise LowerError(f"cannot lower {stmt!r}")

    def lower_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.VarRef):
            kind = self.kinds[target.name]
            # Peephole: `x = a <op> b` computes straight into x (keeps
            # `i = i + 1` recognizable to the counted-loop unroller).
            if (
                not self._is_float_target(kind)
                and isinstance(stmt.value, ast.Binary)
                and stmt.value.op in self._BINOPS
            ):
                lhs = self.lower_expr(stmt.value.lhs)
                rhs = self.lower_expr(stmt.value.rhs)
                self.builder.binop(
                    self._BINOPS[stmt.value.op], Var(target.name), lhs, rhs
                )
                return
            value = self.lower_expr(stmt.value)
            if self._is_float_target(kind):
                value = self._coerce_float(value)
            self.builder.copy(Var(target.name), value)
        else:
            assert isinstance(target, ast.ArrayRef)
            kind = self.kinds[target.name]
            value = self.lower_expr(stmt.value)
            if self._is_float_target(kind):
                value = self._coerce_float(value)
            index = self.lower_expr(target.index)
            self.builder.store(
                self.array_bases[target.name], index, value, sym=target.name
            )

    def lower_if(self, stmt: ast.If) -> None:
        cond = self.lower_expr(stmt.cond)
        then_label = self.func.fresh_label("then")
        join_label = self.func.fresh_label("endif")
        else_label = (
            self.func.fresh_label("else") if stmt.else_body is not None else join_label
        )
        self.builder.branch(cond, then_label, else_label)

        self.builder.new_block(then_label)
        self.lower_block(stmt.then_body)
        if not self.terminated():
            self.builder.jump(join_label)

        if stmt.else_body is not None:
            self.builder.new_block(else_label)
            self.lower_block(stmt.else_body)
            if not self.terminated():
                self.builder.jump(join_label)

        self.builder.new_block(join_label)

    def lower_while(self, stmt: ast.While) -> None:
        head = self.func.fresh_label("while_head")
        body = self.func.fresh_label("while_body")
        exit_label = self.func.fresh_label("while_exit")
        self.builder.jump(head)

        head_block = self.builder.new_block(head)
        head_block.annotations["loop_kind"] = "while"
        cond = self.lower_expr(stmt.cond)
        self.builder.branch(cond, body, exit_label)

        self.builder.new_block(body)
        self.loop_targets.append((head, exit_label))
        self.lower_block(stmt.body)
        self.loop_targets.pop()
        if not self.terminated():
            self.builder.jump(head)

        self.builder.new_block(exit_label)

    def lower_for(self, stmt: ast.For) -> None:
        head = self.func.fresh_label("for_head")
        body = self.func.fresh_label("for_body")
        latch = self.func.fresh_label("for_latch")
        exit_label = self.func.fresh_label("for_exit")

        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        self.builder.jump(head)

        head_block = self.builder.new_block(head)
        head_block.annotations["loop_kind"] = "for"
        if stmt.cond is not None:
            cond = self.lower_expr(stmt.cond)
            self.builder.branch(cond, body, exit_label)
        else:
            self.builder.jump(body)

        self.builder.new_block(body)
        self.loop_targets.append((latch, exit_label))
        self.lower_block(stmt.body)
        self.loop_targets.pop()
        if not self.terminated():
            self.builder.jump(latch)

        self.builder.new_block(latch)
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        self.builder.jump(head)

        self.builder.new_block(exit_label)

    # -- expressions -----------------------------------------------------------

    _BINOPS = {
        "+": "add",
        "-": "sub",
        "*": "mul",
        "/": "div",
        "%": "mod",
        "<<": "shl",
        ">>": "shr",
        "&": "and",
        "|": "or",
        "^": "xor",
        "<": "lt",
        "<=": "le",
        ">": "gt",
        ">=": "ge",
        "==": "eq",
        "!=": "ne",
    }

    def lower_expr(self, expr: ast.Expr) -> Value:
        if isinstance(expr, ast.IntLit):
            return Const(expr.value)
        if isinstance(expr, ast.FloatLit):
            return Const(expr.value)
        if isinstance(expr, ast.VarRef):
            return Var(expr.name)
        if isinstance(expr, ast.ArrayRef):
            index = self.lower_expr(expr.index)
            dest = self.fresh(f"{expr.name}_v")
            self.builder.load(dest, self.array_bases[expr.name], index, sym=expr.name)
            return dest
        if isinstance(expr, ast.Unary):
            operand = self.lower_expr(expr.operand)
            dest = self.fresh("u")
            if expr.op == "-":
                self.builder.unop("neg", dest, operand)
            elif expr.op == "!":
                self.builder.unop("not", dest, operand)
            elif expr.op == "~":
                self.builder.binop("xor", dest, operand, -1)
            else:
                raise LowerError(f"bad unary {expr.op!r}")
            return dest
        if isinstance(expr, ast.Binary):
            if expr.op in ("&&", "||"):
                return self.lower_short_circuit(expr)
            lhs = self.lower_expr(expr.lhs)
            rhs = self.lower_expr(expr.rhs)
            dest = self.fresh("t")
            self.builder.binop(self._BINOPS[expr.op], dest, lhs, rhs)
            return dest
        if isinstance(expr, ast.CallExpr):
            return self.lower_call(expr, want_value=True)
        raise LowerError(f"cannot lower {expr!r}")

    def lower_short_circuit(self, expr: ast.Binary) -> Value:
        result = self.fresh("sc")
        rhs_label = self.func.fresh_label("sc_rhs")
        end_label = self.func.fresh_label("sc_end")
        lhs = self.lower_expr(expr.lhs)
        if expr.op == "&&":
            self.builder.copy(result, 0)
            self.builder.branch(lhs, rhs_label, end_label)
        else:
            self.builder.copy(result, 1)
            self.builder.branch(lhs, end_label, rhs_label)
        self.builder.new_block(rhs_label)
        rhs = self.lower_expr(expr.rhs)
        self.builder.binop("ne", result, rhs, 0)
        self.builder.jump(end_label)
        self.builder.new_block(end_label)
        return result

    def lower_call(self, expr: ast.CallExpr, want_value: bool) -> Optional[Var]:
        args = [self.lower_expr(arg) for arg in expr.args]
        pure = self.info.externs.get(expr.name, False)
        dest = self.fresh(f"{expr.name}_r") if want_value else None
        self.builder.call(dest, expr.name, args, pure=pure)
        return dest


def _collect_array_names(func_def: ast.FuncDef) -> set:
    names = set()

    def walk_expr(expr: ast.Expr) -> None:
        if isinstance(expr, ast.ArrayRef):
            names.add(expr.name)
            walk_expr(expr.index)
        elif isinstance(expr, ast.Unary):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            walk_expr(expr.lhs)
            walk_expr(expr.rhs)
        elif isinstance(expr, ast.CallExpr):
            for arg in expr.args:
                walk_expr(arg)

    def walk_stmt(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                walk_stmt(inner)
        elif isinstance(stmt, ast.VarDecl) and stmt.init is not None:
            walk_expr(stmt.init)
        elif isinstance(stmt, ast.Assign):
            walk_expr(stmt.target)
            walk_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            walk_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            walk_expr(stmt.cond)
            walk_stmt(stmt.then_body)
            if stmt.else_body is not None:
                walk_stmt(stmt.else_body)
        elif isinstance(stmt, ast.While):
            walk_expr(stmt.cond)
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                walk_stmt(stmt.init)
            if stmt.cond is not None:
                walk_expr(stmt.cond)
            if stmt.step is not None:
                walk_stmt(stmt.step)
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            walk_expr(stmt.value)

    walk_stmt(func_def.body)
    return names


def lower_program(program: ast.Program, name: str = "module") -> Module:
    """Lower a checked AST to an IR module."""
    info = analyze(program)
    module = Module(name)
    for decl in program.globals:
        module.declare_global(decl.name, decl.array_size, escapes=decl.aliased)
    for func_def in program.functions:
        module.add_function(_FunctionLowerer(info, module, func_def).lower())
    return module


def compile_minic(source: str, name: str = "module") -> Module:
    """Front door: MiniC source text to an IR module (pre-SSA)."""
    from repro.frontend.parser import parse_source

    return lower_program(parse_source(source), name)
