"""Synthetic SPEC2000Int-like workloads and the compile/simulate
runner."""

from repro.benchsuite.programs import BY_NAME, SUITE, Benchmark
from repro.benchsuite.runner import BenchmarkRun, LoopReport, run_benchmark

__all__ = [
    "BY_NAME",
    "Benchmark",
    "BenchmarkRun",
    "LoopReport",
    "SUITE",
    "run_benchmark",
]
