"""The synthetic SPEC2000Int-like workload suite (paper §8).

We cannot ship SPEC sources or inputs, so each of the ten benchmarks
the paper evaluates is represented by a MiniC program engineered to
reproduce its published *loop-level character*:

* the base-machine IPC band of Table 1 (e.g. ``mcf`` 0.44 from pointer
  chasing with cache misses; ``gzip`` 1.77 from tight scalar loops);
* a mix of speculative-parallelization opportunities: loops whose only
  carried dependence is the induction variable (found by the basic
  compilation), loops whose may-alias dependences never materialize
  (need dependence profiling), predictable value recurrences (need
  software value prediction), small-body while loops (need while-loop
  unrolling), helper calls over disjoint globals (need interprocedural
  summaries), and genuine recurrences that must be rejected.

All inputs are generated in-language from a deterministic LCG, standing
in for the paper's trimmed reference inputs (~5% of the reference run
with similar behaviour).  Hot kernels favour shifts/masks over ``%``
(division is 8 cycles on the modelled core), mirroring how the integer
SPEC codes actually behave.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple

#: Shared LCG helper prepended to every benchmark.
_PRELUDE = """
global int rng_state[2];

int rng_next() {
    int s = rng_state[0];
    s = (s * 1103515245 + 12345) & 2147483647;
    rng_state[0] = s;
    return s;
}

void rng_seed(int seed) {
    rng_state[0] = seed;
}
"""


class Benchmark(NamedTuple):
    """One synthetic workload."""

    name: str
    description: str
    source: str
    #: Argument for the profiling (training) run.
    train_n: int
    #: Argument for the evaluation run (the "trimmed input").
    eval_n: int


BZIP2 = Benchmark(
    name="bzip2",
    description=(
        "Block compression: histogram + byte-wise transform over a "
        "buffer.  Regular compute-dense loops; the histogram's carried "
        "dependence is discharged by dependence profiling."
    ),
    source=_PRELUDE
    + """
global int block[4096] aliased;
global int freq[256];
global int outbuf[4096] aliased;

int main(int n) {
    rng_seed(42);
    for (int i = 0; i < n; i++) {
        block[i] = rng_next() & 255;
    }
    // Histogram: a small-body while loop whose freq update looks like
    // a carried dependence but distinct iterations usually hit
    // distinct buckets (needs while-unrolling AND dependence
    // profiling).
    int hi = 0;
    while (hi < n) {
        int b = block[hi];
        freq[b] = freq[b] + 1;
        hi += 1;
    }
    // Byte-wise transform: embarrassingly parallel heavy compute.
    int checksum = 0;
    for (int i = 0; i < n; i++) {
        int x = block[i];
        int a = x * 3 + 7;
        int b = a * a + x;
        int c = (b << 2) ^ a;
        int d = c + (b >> 3);
        int e = d * 3 + c;
        int f = (e << 1) ^ d;
        int g = f + (e >> 2);
        int h = (g * 5 + f) & 65535;
        outbuf[i] = h & 255;
        checksum += h & 63;
    }
    // Run-length pass: a small-body while loop with a real carried
    // run counter (rejected by every configuration, like the paper's
    // too-small while loops).
    int runs = 0;
    int run_len = 0;
    int ri = 1;
    while (ri < n) {
        if (block[ri] == block[ri - 1]) {
            run_len += 1;
        } else {
            runs += run_len;
            run_len = 0;
        }
        ri += 1;
    }
    return checksum + runs + freq[10];
}
""",
    train_n=1500,
    eval_n=3500,
)


CRAFTY = Benchmark(
    name="crafty",
    description=(
        "Chess engine flavour: bitboard-style shifts/masks and a "
        "popcount-ish evaluation over move lists.  High integer ILP."
    ),
    source=_PRELUDE
    + """
global int boards[2048];
global int scores[2048];
global int ttable[2048];

int main(int n) {
    rng_seed(7);
    for (int i = 0; i < n; i++) {
        boards[i] = rng_next();
    }
    int best = 0;
    for (int i = 0; i < n; i++) {
        int b = boards[i];
        int attacks = (b << 3) ^ (b >> 5);
        int center = attacks & 16777215;
        int wings = (attacks >> 8) | (b & 4095);
        int mobility = (center * 3 + wings) & 65535;
        int king = ((b >> 11) ^ (b << 2)) & 8191;
        // Transposition-table probe: a scattered lookup per position.
        int slot = (b * 2654435761) & 2047;
        int cached = ttable[slot];
        int material = (mobility + (king << 1) + cached) & 32767;
        int score = (material << 1) + (center & 127);
        ttable[slot] = score;
        scores[i] = score;
        if (score > best) { best = score; }
    }
    // Quiescence refinement: a small-body while loop over the move
    // scores (anticipated-only unrolling opportunity).
    int total = 0;
    int qi = 0;
    while (qi < n) {
        int s = scores[qi];
        int r = (s * s + 17) & 8191;
        int t = (r << 2) ^ (r >> 3);
        int u = (t + s) & 4095;
        total += u & 255;
        qi += 1;
    }
    return best + total;
}
""",
    train_n=1000,
    eval_n=2048,
)


GAP = Benchmark(
    name="gap",
    description=(
        "Computer algebra flavour: modular arithmetic over vectors (the "
        "domain genuinely needs division) with a constant-stride cursor "
        "recurrence (SVP target)."
    ),
    source=_PRELUDE
    + """
global int vec[2048] aliased;
global int table[2048] aliased;

int advance(int c) {
    return (c + 5) & 2047;
}

int main(int n) {
    rng_seed(11);
    for (int i = 0; i < n; i++) {
        vec[i] = rng_next() & 65535;
    }
    // Modular product chain per element: parallel, one real division.
    int acc = 0;
    for (int i = 0; i < n; i++) {
        int v = vec[i];
        int p = v;
        p = (p * v) & 1048575;
        p = (p * 3 + v) & 1048575;
        p = (p + (v << 2)) & 1048575;
        p = p % 40961;
        table[i] = p;
        acc += p & 31;
    }
    // Cursor walk: the carrier advances through an opaque helper
    // call, unmovable by code reordering but perfectly stride-
    // predictable -- the software-value-prediction showcase.
    int cursor = 0;
    int sum = 0;
    for (int i = 0; i < n; i++) {
        int t = table[cursor];
        int u = (t * 3 + i) & 16383;
        int w = (u * u) & 16383;
        sum += w & 63;
        cursor = advance(cursor);
    }
    return acc + sum;
}
""",
    train_n=1000,
    eval_n=2048,
)


GCC = Benchmark(
    name="gcc",
    description=(
        "Compiler flavour: branchy opcode dispatch over an instruction "
        "stream, with a small carried register-pressure counter.  "
        "Moderate IPC from branchy code."
    ),
    source=_PRELUDE
    + """
global int insns[4096] aliased;
global int defs[4096] aliased;
global int symtab[4096] aliased;
global int pressure_hist[64];

int main(int n) {
    rng_seed(13);
    for (int i = 0; i < n; i++) {
        insns[i] = rng_next() & 1023;
    }
    int pressure = 0;
    int spills = 0;
    for (int i = 0; i < n; i++) {
        int op = insns[i] & 7;
        // Symbol-table probe: irregular pointer-ish lookup per insn.
        int sym = symtab[(insns[i] * 40961 + i) & 4095];
        int value = 0;
        if (op < 3) {
            value = insns[i] * 3 + op + sym;
            pressure += 1;
        } else if (op < 6) {
            value = ((insns[i] >> 2) ^ 77) + sym;
            if (pressure > 0) { pressure -= 1; }
        } else {
            value = (insns[i] * insns[i]) & 8191;
        }
        value = ((value << 1) ^ (value >> 3)) & 65535;
        value = (value * 3 + op) & 16383;
        value = (value + (sym << 2)) & 16383;
        if (pressure > 24) {
            spills += 1;
            pressure = 12;
        }
        defs[i] = value;
        pressure_hist[pressure & 63] = pressure_hist[pressure & 63] + 1;
    }
    // Constant folding sweep: a small-body while loop rewriting the
    // defs in place (anticipated-only unrolling opportunity).
    int folded = 0;
    int fi = 0;
    while (fi < n) {
        int v = defs[fi];
        int w = (v * 7 + 3) & 16383;
        int x = (w << 1) ^ (w >> 4);
        defs[fi] = x & 8191;
        folded += x & 31;
        fi += 1;
    }
    return spills * 1000 + (folded & 65535);
}
""",
    train_n=1200,
    eval_n=3000,
)


GZIP = Benchmark(
    name="gzip",
    description=(
        "LZ-style compression: hash-chain match scoring, tight scalar "
        "loops over a hot window with well-predicted branches.  Highest "
        "IPC of the suite."
    ),
    source=_PRELUDE
    + """
global int window[4096] aliased;
global int hashes[1024];
global int match_len[4096] aliased;

int main(int n) {
    rng_seed(17);
    for (int i = 0; i < n; i++) {
        window[i] = rng_next() & 63;
    }
    int emitted = 0;
    for (int i = 0; i < n; i++) {
        int w = window[i];
        int h1 = (w * 2654435761) & 1023;
        int cand = hashes[h1];
        int a = w * 3 + cand;
        int b = (a * a) & 4095;
        int c = (b << 2) ^ (a >> 1);
        int d = (c + (w << 3)) & 2047;
        int score = (b + c + d) & 511;
        match_len[i] = score;
        hashes[h1] = i;
        emitted += score & 31;
    }
    // Huffman-ish cost accumulation: a small-body while loop with a
    // biased branch (anticipated-only unrolling opportunity).
    int bits = 0;
    int bi = 0;
    while (bi < n) {
        int m = match_len[bi];
        int cost = 9;
        if (m > 496) { cost = 5; }
        int packed = (m * cost + bi) & 65535;
        int mixed = (packed << 1) ^ (packed >> 3);
        bits += (mixed & 31) + cost;
        bi += 1;
    }
    return emitted + bits;
}
""",
    train_n=1200,
    eval_n=3000,
)


MCF = Benchmark(
    name="mcf",
    description=(
        "Network simplex flavour: pointer chasing across a large node "
        "array with data-dependent successors -- cache misses dominate "
        "and IPC collapses (Table 1: 0.44)."
    ),
    source=_PRELUDE
    + """
global int succ[65536] aliased;
global int cost_of[65536] aliased;
global int potential[65536] aliased;

int main(int n) {
    // A scattered successor graph over a footprint far beyond L2;
    // cheap arithmetic init (no rng) so the chase dominates.
    for (int i = 0; i < 65536; i++) {
        succ[i] = (i * 40503 + 12829) & 65535;
        cost_of[i] = (i * 2654435761) & 4095;
    }
    int node = 0;
    int total = 0;
    int updates = 0;
    // Several simplex passes so the memory-bound loops dominate the
    // one-off graph construction.
    for (int pass = 0; pass < 6; pass++) {
        // The chase: every iteration depends on the previous load (true
        // recurrence + cache miss per hop).  SPT must reject this one.
        for (int i = 0; i < n; i++) {
            int c = cost_of[node];
            total += c & 127;
            node = succ[node];
        }
        // Price update sweep: parallel but memory-bound.
        for (int i = 0; i < n; i++) {
            int idx = (i * 12049 + pass * 8191) & 65535;
            int p = potential[idx];
            int c = cost_of[idx];
            int np = p + (c >> 2) - (p >> 3);
            potential[idx] = np;
            updates += np & 15;
        }
    }
    return total + updates;
}
""",
    train_n=2000,
    eval_n=4000,
)


PARSER = Benchmark(
    name="parser",
    description=(
        "Link-grammar flavour: dictionary scanning with branchy "
        "comparisons and a small-body while loop (anticipated-only "
        "unrolling opportunity)."
    ),
    source=_PRELUDE
    + """
global int words[4096] aliased;
global int dict[1024];
global int links[4096] aliased;

int main(int n) {
    rng_seed(23);
    for (int i = 0; i < 1024; i++) {
        dict[i] = (i * 37) & 1023;
    }
    for (int i = 0; i < n; i++) {
        words[i] = rng_next() & 1023;
    }
    // Per-word probe chain: parallel across words.
    int matched = 0;
    for (int i = 0; i < n; i++) {
        int w = words[i];
        int h = (w * 31) & 1023;
        int probe = dict[h];
        int d1 = w - probe;
        if (d1 < 0) { d1 = -d1; }
        int weight = (d1 * 3 + w) & 511;
        int strength = (weight * weight) & 255;
        links[i] = strength;
        if (strength > 128) { matched += 1; }
    }
    // Small-body while loop scanning for sentence boundaries.
    int boundaries = 0;
    int j = 0;
    while (j < n) {
        if (links[j] < 8) { boundaries += 1; }
        j += 1;
    }
    return matched + boundaries;
}
""",
    train_n=1200,
    eval_n=3000,
)


TWOLF = Benchmark(
    name="twolf",
    description=(
        "Placement flavour: cost evaluation of random cell swaps -- a "
        "mix of arithmetic and medium-footprint random access."
    ),
    source=_PRELUDE
    + """
global int cell_x[1024];
global int cell_y[1024];
global int net_cost[1024];

int main(int n) {
    for (int i = 0; i < 1024; i++) {
        cell_x[i] = (i * 26821 + 13) & 1023;
        cell_y[i] = (i * 30013 + 7) & 1023;
        net_cost[i] = (i * 7919 + 301) & 4095;
    }
    int accepted = 0;
    int total_delta = 0;
    for (int i = 0; i < n; i++) {
        int a = (i * 131) & 1023;
        int b = (i * 277 + 51) & 1023;
        int dx = cell_x[a] - cell_x[b];
        int dy = cell_y[a] - cell_y[b];
        if (dx < 0) { dx = -dx; }
        if (dy < 0) { dy = -dy; }
        int wire = dx + dy;
        int skew = (wire * 5 + dx) & 255;
        int bias = ((skew << 1) ^ dy) & 511;
        int spread = (dx * 3 + dy * 2) & 1023;
        int penalty = (spread + (bias >> 1)) & 255;
        int old_cost = net_cost[a] + net_cost[b];
        int new_cost = wire * 3 + penalty + (old_cost >> 2);
        int delta = new_cost - old_cost;
        if (delta < 0) {
            net_cost[a] = new_cost >> 1;
            net_cost[b] = new_cost - (new_cost >> 1);
            accepted += 1;
        }
        total_delta += delta & 15;
    }
    return accepted * 100 + (total_delta & 1023);
}
""",
    train_n=1500,
    eval_n=3000,
)


VORTEX = Benchmark(
    name="vortex",
    description=(
        "OO-database flavour: object lookups through an index with "
        "scattered heap accesses and helper calls on disjoint globals "
        "(interprocedural-summary opportunity).  Low IPC."
    ),
    source=_PRELUDE
    + """
global int index_tbl[32768] aliased;
global int objects[32768] aliased;
global int audit_log[4096];
global int audit_pos[2];

void audit(int v) {
    int p = audit_pos[0];
    audit_log[p & 4095] = v;
    audit_pos[0] = p + 1;
}

int main(int n) {
    for (int i = 0; i < 32768; i++) {
        index_tbl[i] = (i * 24499 + 3) & 32767;
        objects[i] = (i * 2654435761) & 16383;
    }
    int found = 0;
    // Several query batches so the scattered lookups dominate the
    // one-off database construction.
    for (int batch = 0; batch < 6; batch++) {
        for (int i = 0; i < n; i++) {
            int key = (i * 40961 + 77 + batch * 5119) & 32767;
            int slot = index_tbl[key];
            int obj = objects[slot];
            int parent = objects[(obj * 31 + key) & 32767];
            int grand = objects[(parent ^ obj) & 32767];
            int owner = index_tbl[(grand * 17 + key) & 32767];
            int field = (obj * 3 + parent + grand + owner + key) & 8191;
            audit(field);
            if (field > 4096) { found += 1; }
        }
    }
    return found + (audit_log[0] & 127);
}
""",
    train_n=1500,
    eval_n=3000,
)


VPR = Benchmark(
    name="vpr",
    description=(
        "Place-and-route flavour: per-connection geometric cost, plus a "
        "routing-congestion relaxation with a write-before-read private "
        "scratch row (privatization target)."
    ),
    source=_PRELUDE
    + """
global int pin_x[4096];
global int pin_y[4096];
global int route_cost[4096];
global int rr_graph[8192];
global int scratch[16];

int main(int n) {
    rng_seed(37);
    for (int i = 0; i < n; i++) {
        pin_x[i] = rng_next() & 511;
        pin_y[i] = rng_next() & 511;
    }
    int wirelen = 0;
    for (int i = 0; i < n; i++) {
        int x = pin_x[i];
        int y = pin_y[i];
        int bb = (x + y) & 1023;
        int crit = (x * y + 13) & 511;
        int lin = x * 3 + y * 2;
        int quad = (lin * lin) & 8191;
        // Routing-resource lookup: scattered access per connection.
        int rr = rr_graph[(x * 499 + y * 269) & 8191];
        int c = bb + crit + (quad >> 3) + (rr & 63);
        route_cost[i] = c;
        wirelen += c & 31;
    }
    // Congestion relaxation: a while loop whose scratch row is
    // written before read each iteration (iteration-private buffer);
    // only the anticipated compilation can unroll and select it.
    int congestion = 0;
    int ci = 0;
    while (ci < n) {
        int base = route_cost[ci];
        scratch[0] = base;
        scratch[1] = base >> 1;
        scratch[2] = (base * 3) & 127;
        scratch[3] = scratch[0] + scratch[1];
        scratch[4] = scratch[2] ^ scratch[3];
        int relax = scratch[3] + scratch[4];
        congestion += relax & 31;
        ci += 1;
    }
    return wirelen + congestion;
}
""",
    train_n=1200,
    eval_n=3000,
)


#: The ten benchmarks in the paper's Table 1 order.
SUITE: List[Benchmark] = [
    BZIP2,
    CRAFTY,
    GAP,
    GCC,
    GZIP,
    MCF,
    PARSER,
    TWOLF,
    VORTEX,
    VPR,
]

BY_NAME: Dict[str, Benchmark] = {bench.name: bench for bench in SUITE}
