"""Compile-and-simulate driver for the workload suite.

For one benchmark and one compiler configuration this module produces
everything the paper's evaluation section reports:

* base-machine cycles / retired instructions / IPC (Table 1),
* the SPT compilation's candidate statistics (Figure 15),
* runtime coverage of the selected SPT loops and their count (Fig 16),
* per-loop dynamic body size and pre-fork fraction (Figure 17),
* per-loop misspeculation ratio and loop speedup (Figure 18),
* compiler-estimated cost vs. measured re-execution ratio (Figure 19),
* the program-level speedup (Figure 14).

The *base reference* is the same module compiled without any SPT work
(SSA + cleanup only, our -O3 stand-in) and timed on a single core.  The
SPT run replays the transformed module; program SPT time substitutes
each selected loop's simulated two-core time for its measured
sequential time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.loops import LoopNest
from repro.benchsuite.programs import Benchmark
from repro.core.config import SptConfig
from repro.core.pipeline import CompilationResult, Workload, compile_spt
from repro.core.selection import CATEGORY_VALID
from repro.frontend import compile_minic
from repro.machine.spt_sim import SptLoopStats, SptTraceCollector, simulate_spt_loop
from repro.machine.timing import TimingModel, TimingTracer
from repro.machine.vector_timing import VectorTimingEngine
from repro.profiling.compiled import CompiledMachine
from repro.profiling.interp import Machine
from repro.ssa import build_ssa, optimize


class LoopReport:
    """Per-SPT-loop evaluation record."""

    def __init__(
        self,
        func_name: str,
        header: str,
        stats: SptLoopStats,
        estimated_cost_ratio: float,
        prefork_size: float,
        body_size: float,
    ):
        self.func_name = func_name
        self.header = header
        self.stats = stats
        #: Compiler-estimated misspeculation cost / body size (Fig 19 x).
        self.estimated_cost_ratio = estimated_cost_ratio
        self.prefork_size = prefork_size
        self.body_size = body_size

    @property
    def key(self) -> Tuple[str, str]:
        return (self.func_name, self.header)


class BenchmarkRun:
    """All measurements for one (benchmark, configuration) pair."""

    def __init__(self, name: str, config_name: str):
        self.name = name
        self.config_name = config_name
        # Base reference (single core, no SPT).
        self.base_cycles = 0.0
        self.base_instructions = 0
        # SPT run.
        self.spt_run_cycles = 0.0
        self.program_spt_cycles = 0.0
        self.loops: List[LoopReport] = []
        self.compilation: Optional[CompilationResult] = None
        self.result_value = None
        self.base_result_value = None

    # -- derived metrics ---------------------------------------------------

    @property
    def base_ipc(self) -> float:
        return self.base_instructions / self.base_cycles if self.base_cycles else 0.0

    @property
    def program_speedup(self) -> float:
        if not self.program_spt_cycles:
            return 1.0
        return self.base_cycles / self.program_spt_cycles

    @property
    def spt_loop_count(self) -> int:
        return len(self.loops)

    @property
    def coverage(self) -> float:
        """Fraction of run cycles spent in the selected SPT loops."""
        if not self.spt_run_cycles:
            return 0.0
        covered = sum(report.stats.seq_cycles for report in self.loops)
        return min(1.0, covered / self.spt_run_cycles)

    def max_loop_coverage(self, tracer_loop_cycles: Dict, config: SptConfig) -> float:
        """Coverage of *all* loop candidates within the size limit --
        the upper bound the paper compares against in Figure 16."""
        if not self.spt_run_cycles or self.compilation is None:
            return 0.0
        eligible = []
        for candidate in self.compilation.candidates:
            if candidate.dynamic_body_size > config.max_body_size:
                continue
            cycles = tracer_loop_cycles.get(
                (candidate.func_name, candidate.loop.header), 0.0
            )
            eligible.append((candidate, cycles))
        # Resolve nesting: greedy by cycles, skip loops nested in a pick.
        eligible.sort(key=lambda pair: -pair[1])
        chosen: List = []
        total = 0.0
        for candidate, cycles in eligible:
            conflict = False
            for other in chosen:
                if other.func_name != candidate.func_name:
                    continue
                if (
                    candidate.loop.header in other.loop.body
                    or other.loop.header in candidate.loop.body
                ):
                    conflict = True
                    break
            if not conflict:
                chosen.append(candidate)
                total += cycles
        return min(1.0, total / self.spt_run_cycles)


def _build_clean_module(bench: Benchmark):
    """The non-SPT base reference: frontend + unrolling + SSA + cleanup.

    The paper's base reference is full -O3 output, which includes ORC's
    own DO-loop unrolling -- so the baseline unrolls counted loops
    exactly like the basic SPT compilation does (while-loops excluded,
    as in ORC).
    """
    from repro.core.config import basic_config
    from repro.core.unroll import unroll_function

    module = compile_minic(bench.source, name=bench.name)
    base_unroll = basic_config()
    for func in module.functions.values():
        unroll_function(func, base_unroll)
    for func in module.functions.values():
        build_ssa(func)
        optimize(func)
    return module


def _timed_run(module, entry: str, args, extra_tracers=(), config=None):
    """Simulate one run and return (timing accounting, result).

    The default path runs the trace-compiled interpreter with the
    vectorized timing engine (bitwise-identical cycles to a
    ``Machine`` + ``TimingTracer`` run; see
    ``tests/machine/test_vector_timing.py``).  ``config`` flags select
    slower paths: ``vector_timing=False`` falls back to a
    :class:`TimingTracer`, ``fast_interp=False`` to the reference
    interpreter.  Per-instruction tracers (e.g. SPT trace collectors)
    automatically disable hot traces but still ride the compiled
    machine.
    """
    fast = config.fast_interp if config is not None else True
    trace = config.trace_interp if config is not None else True
    vector = config.vector_timing if config is not None else True
    if fast and vector:
        engine = VectorTimingEngine(TimingModel())
        machine = CompiledMachine(module, trace=trace, timing_engine=engine)
        for extra in extra_tracers:
            machine.add_tracer(extra)
        result = machine.run(entry, list(args))
        engine.flush()
        return engine, result
    tracer = TimingTracer(TimingModel())
    machine = CompiledMachine(module, trace=trace) if fast else Machine(module)
    machine.add_tracer(tracer)
    for extra in extra_tracers:
        machine.add_tracer(extra)
    result = machine.run(entry, list(args))
    return tracer, result


def run_benchmark(
    bench: Benchmark, config: SptConfig, config_name: str = "spt"
) -> BenchmarkRun:
    """Compile ``bench`` under ``config`` and simulate base + SPT runs."""
    run = BenchmarkRun(bench.name, config_name)

    # -- base reference (Table 1) ----------------------------------------
    base_module = _build_clean_module(bench)
    base_tracer, base_result = _timed_run(
        base_module, "main", [bench.eval_n], config=config
    )
    run.base_cycles = base_tracer.cycles
    run.base_instructions = base_tracer.instructions
    run.base_result_value = base_result

    # -- SPT compilation ------------------------------------------------------
    spt_module = compile_minic(bench.source, name=bench.name)
    workload = Workload(entry="main", args=(bench.train_n,))
    compilation = compile_spt(spt_module, config, workload)
    run.compilation = compilation

    # -- SPT evaluation run -----------------------------------------------------
    collectors: List[SptTraceCollector] = []
    collector_meta: List[Tuple[str, str, float, float, float]] = []
    for candidate, info in zip(compilation.selected, compilation.spt_loops):
        func = spt_module.function(candidate.func_name)
        nest = LoopNest.build(func)
        loop = next(
            (l for l in nest.loops if l.header == candidate.loop.header), None
        )
        if loop is None:
            continue
        collectors.append(
            SptTraceCollector(
                candidate.func_name,
                loop.header,
                loop.body,
                info.loop_id,
                TimingModel(),
            )
        )
        collector_meta.append(
            (
                candidate.func_name,
                loop.header,
                candidate.partition.cost_ratio,
                candidate.partition.prefork_size,
                candidate.dynamic_body_size,
            )
        )

    spt_tracer, spt_result = _timed_run(
        spt_module, "main", [bench.eval_n], extra_tracers=collectors, config=config
    )
    run.spt_run_cycles = spt_tracer.cycles
    run.result_value = spt_result
    run._spt_loop_cycles = dict(spt_tracer.loop_cycles)

    substituted = spt_tracer.cycles
    for collector, meta in zip(collectors, collector_meta):
        stats = simulate_spt_loop(collector)
        func_name, header, cost_ratio, prefork_size, body_size = meta
        run.loops.append(
            LoopReport(func_name, header, stats, cost_ratio, prefork_size, body_size)
        )
        substituted += stats.spt_cycles - stats.seq_cycles
    run.program_spt_cycles = substituted
    return run
