"""stdio JSON-RPC transport for the serving daemon.

One JSON envelope per line on stdin (``{"id": ..., "method": ...,
"params": {...}}``), one per line on stdout (``{"id": ..., "result":
...}`` or ``{"id": ..., "error": {"code": ..., "message": ...}}``).
The same :class:`~repro.serve.service.CompileService` sits behind both
this and the HTTP transport, so the two speak identical payloads.

Requests are handled on their own threads (a slow compile must not
block a ``healthz`` pipelined behind it); a write lock keeps response
lines whole.  Responses therefore arrive in completion order -- clients
correlate by ``id``, exactly as over HTTP connections.

Methods: ``compile``, ``healthz``, ``metrics`` (the canonical JSON
snapshot), ``ping``, ``shutdown``.  EOF on stdin is a clean shutdown.
Malformed lines get an ``id: null`` error; oversized lines are
rejected without being parsed."""

from __future__ import annotations

import json
import sys
import threading
from typing import Dict, List, Optional

from repro.obs.sinks import metrics_json
from repro.serve.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_OVERSIZED,
    ERR_UNKNOWN_METHOD,
    PROTOCOL_SCHEMA,
    BadRequest,
    ServeRejection,
)
from repro.serve.service import CompileService

__all__ = ["serve_stdio"]

_METHODS = ("compile", "healthz", "metrics", "ping", "shutdown")


class _StdioLoop:
    def __init__(self, service: CompileService, stdin, stdout,
                 max_body_bytes: int):
        self.service = service
        self.stdin = stdin
        self.stdout = stdout
        self.max_body_bytes = max_body_bytes
        self.stop = threading.Event()
        self._write_lock = threading.Lock()
        self._threads: List[threading.Thread] = []

    def reply(self, rid, result: Optional[Dict] = None,
              error: Optional[Dict] = None) -> None:
        envelope: Dict = {"id": rid, "schema": PROTOCOL_SCHEMA}
        if error is not None:
            envelope["error"] = error
        else:
            envelope["result"] = result
        data = (json.dumps(envelope, sort_keys=True) + "\n").encode("utf-8")
        with self._write_lock:
            try:
                self.stdout.write(data)
                self.stdout.flush()
            except (BrokenPipeError, ValueError):
                # Client went away mid-write: nothing left to answer.
                self.stop.set()

    def reply_error(self, rid, code: str, message: str,
                    retry_after: Optional[float] = None) -> None:
        error: Dict = {"code": code, "message": message}
        if retry_after is not None:
            error["retry_after"] = round(retry_after, 3)
        self.reply(rid, error=error)

    def handle_line(self, line: bytes) -> None:
        rid = None
        try:
            try:
                envelope = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise BadRequest(f"line is not valid JSON: {exc}")
            if not isinstance(envelope, dict):
                raise BadRequest("envelope must be a JSON object")
            rid = envelope.get("id")
            method = envelope.get("method")
            if method == "compile":
                result = self.service.compile(envelope.get("params"))
            elif method == "healthz":
                result = self.service.stats()
            elif method == "metrics":
                result = json.loads(
                    metrics_json(self.service.metrics_snapshot())
                )
            elif method == "ping":
                result = {"ok": True}
            elif method == "shutdown":
                self.service.begin_shutdown()
                self.reply(rid, result={"ok": True, "status": "stopping"})
                self.stop.set()
                return
            else:
                self.reply_error(
                    rid,
                    ERR_UNKNOWN_METHOD,
                    f"unknown method {method!r} (have: {', '.join(_METHODS)})",
                )
                return
            self.reply(rid, result=result)
        except BadRequest as exc:
            self.reply_error(rid, ERR_BAD_REQUEST, str(exc))
        except ServeRejection as exc:
            self.reply_error(rid, exc.code, str(exc),
                            retry_after=exc.retry_after)
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            self.reply_error(
                rid, ERR_INTERNAL, f"{exc.__class__.__name__}: {exc}"
            )

    def run(self) -> None:
        while not self.stop.is_set():
            line = self.stdin.readline()
            if not line:
                break
            if len(line) > self.max_body_bytes:
                # Never parse (or even decode) an oversized line.
                self.reply_error(
                    None,
                    ERR_OVERSIZED,
                    f"request line of {len(line)} bytes exceeds the "
                    f"{self.max_body_bytes}-byte limit",
                )
                continue
            if not line.strip():
                continue
            thread = threading.Thread(
                target=self.handle_line, args=(line,), daemon=True
            )
            thread.start()
            self._threads.append(thread)
            self._threads = [t for t in self._threads if t.is_alive()]
        for thread in self._threads:
            thread.join(timeout=5.0)


def serve_stdio(
    service: CompileService,
    stdin=None,
    stdout=None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> None:
    """Run the stdio loop until ``shutdown`` or EOF (blocking)."""
    loop = _StdioLoop(
        service,
        stdin if stdin is not None else sys.stdin.buffer,
        stdout if stdout is not None else sys.stdout.buffer,
        max_body_bytes,
    )
    loop.run()
