"""The in-memory LRU tier in front of the content-addressed disk cache.

Keyed by the *same* program key as :class:`repro.batch.cache.
ResultCache` -- SHA-256 over canonical module IR x
``SptConfig.fingerprint()`` x workload -- so the two tiers can never
disagree about identity: a memory hit is exactly the payload a disk
hit (or a cold compile) would have produced.

Payloads are stored as their canonical JSON serialization and
deserialized on every hit.  That costs a few hundred microseconds but
buys two guarantees the differential battery leans on:

* hits return *fresh* objects -- no caller can mutate a cached result
  out from under a concurrent request;
* hits are JSON-normalized by construction, byte-identical to what a
  worker shipped over the result queue.

Thread-safe: one lock around the OrderedDict; the serving daemon's
HTTP handler threads all read through here.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Dict, Optional

__all__ = ["MemoryCache"]


class MemoryCache:
    """A bounded, thread-safe LRU of serialized result payloads."""

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.bytes = 0

    def get(self, key: str) -> Optional[Dict]:
        """The payload stored under ``key`` (a fresh object), or None."""
        with self._lock:
            serialized = self._entries.get(key)
            if serialized is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        return json.loads(serialized)

    def put(self, key: str, payload: Dict) -> None:
        """Store ``payload`` under ``key``, evicting the LRU tail."""
        if self.capacity == 0:
            return
        serialized = json.dumps(payload, sort_keys=True)
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self.bytes -= len(previous)
            self._entries[key] = serialized
            self.bytes += len(serialized)
            while len(self._entries) > self.capacity:
                _, evicted = self._entries.popitem(last=False)
                self.bytes -= len(evicted)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> Dict:
        with self._lock:
            requests = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "bytes": self.bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": round(self.hits / requests, 4) if requests else 0.0,
            }

    def __repr__(self) -> str:
        return (
            f"MemoryCache({len(self)}/{self.capacity} entries, "
            f"hits={self.hits}, misses={self.misses})"
        )
