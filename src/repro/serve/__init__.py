"""Compilation-as-a-service: the ``repro serve`` warm-worker daemon.
See ``docs/serving.md``.

The package splits along the request path:

* :mod:`repro.serve.protocol` -- the wire schema (``repro-serve/1``),
  error codes and their HTTP mapping, request validation;
* :mod:`repro.serve.pool` -- the pre-forked, pre-warmed worker pool,
  built on the batch layer's claim-slot crash attribution;
* :mod:`repro.serve.memcache` -- the in-memory LRU tier sharing the
  disk cache's content-addressed keys;
* :mod:`repro.serve.service` -- admission control, cache tiers,
  deadlines, metrics, request log: the transport-agnostic core;
* :mod:`repro.serve.http` / :mod:`repro.serve.stdio` -- the two
  transports (JSON-over-HTTP on localhost, JSON-RPC over stdio);
* :mod:`repro.serve.daemon` -- assembly and lifecycle
  (``repro serve``'s body);
* :mod:`repro.serve.client` -- the client and daemon-spawning helpers
  the tests, benchmark, and CI smoke script share.

The central invariant, enforced by the differential test battery: a
served ``compile`` returns the *byte-identical* manifest entry the
``repro compile`` / ``repro batch`` CLI produces for the same (source,
config, workload) -- the daemon only moves work between cache tiers
and warm processes, never changes its meaning.
"""

from repro.serve.client import (
    DaemonHandle,
    ServeClient,
    ServeError,
    start_daemon,
)
from repro.serve.daemon import run_daemon
from repro.serve.memcache import MemoryCache
from repro.serve.pool import WarmPool, prime_process, serve_worker_main
from repro.serve.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    PROTOCOL_SCHEMA,
    BadRequest,
    ServeRejection,
    corpus_requests,
    error_body,
    http_status_for,
    normalize_compile_params,
)
from repro.serve.service import CompileService, RequestLog

__all__ = [
    "BadRequest",
    "CompileService",
    "DEFAULT_MAX_BODY_BYTES",
    "DaemonHandle",
    "MemoryCache",
    "PROTOCOL_SCHEMA",
    "RequestLog",
    "ServeClient",
    "ServeError",
    "ServeRejection",
    "WarmPool",
    "corpus_requests",
    "error_body",
    "http_status_for",
    "normalize_compile_params",
    "prime_process",
    "run_daemon",
    "serve_worker_main",
    "start_daemon",
]
