"""Client-side helpers for the serving daemon (stdlib only).

* :class:`ServeClient` -- a thin HTTP client over one keep-alive
  connection.  **Not** thread-safe by design: each client thread owns
  its own instance (what the concurrency battery and the load
  benchmark do), mirroring how real clients hold per-connection state.
* :func:`start_daemon` -- spawn ``python -m repro serve`` as a
  subprocess, wait for its ready file (which carries the actual port,
  since tests bind port 0), and yield a :class:`DaemonHandle`; on exit
  the daemon is shut down gracefully and its exit code recorded.
  Every consumer of the daemon in-tree (differential tests, chaos
  tests, the load benchmark, the CI smoke script) goes through this
  one spawn path.
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
import tempfile
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.serve.protocol import PROTOCOL_SCHEMA

__all__ = ["DaemonHandle", "ServeClient", "ServeError", "start_daemon"]


class ServeError(RuntimeError):
    """A protocol-level error response (429, 504, ...)."""

    def __init__(self, http_status: int, body: Dict):
        error = body.get("error", {}) if isinstance(body, dict) else {}
        super().__init__(
            f"HTTP {http_status}: {error.get('code', 'unknown')}: "
            f"{error.get('message', '')}"
        )
        self.http_status = http_status
        self.body = body
        self.code = error.get("code")
        self.retry_after = error.get("retry_after")


class ServeClient:
    """One keep-alive HTTP connection to a daemon.  One per thread."""

    def __init__(self, port: int, host: str = "127.0.0.1",
                 timeout: float = 120.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # -- plumbing ---------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _request(self, method: str, path: str,
                 payload: Optional[Dict] = None):
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in (1, 2):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                return response.status, dict(response.getheaders()), \
                    response.read()
            except (http.client.HTTPException, ConnectionError, OSError):
                # A dropped keep-alive connection (daemon restarted the
                # listener, idle timeout): reconnect once, then give up.
                self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")

    def _request_json(self, method: str, path: str,
                      payload: Optional[Dict] = None) -> Dict:
        status, _, raw = self._request(method, path, payload)
        document = json.loads(raw.decode("utf-8"))
        if status != 200:
            raise ServeError(status, document)
        return document

    # -- endpoints --------------------------------------------------------

    def compile(self, params: Dict) -> Dict:
        """POST /compile; the full response (``entry`` + ``serve``)."""
        return self._request_json("POST", "/compile", params)

    def compile_raw(self, body: bytes, headers: Optional[Dict] = None):
        """POST arbitrary bytes to /compile (malformed-input tests)."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "POST", "/compile", body=body, headers=headers or {}
            )
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def healthz(self) -> Dict:
        return self._request_json("GET", "/healthz")

    def metrics_text(self) -> str:
        status, _, raw = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(status, {})
        return raw.decode("utf-8")

    def metrics(self) -> Dict:
        status, _, raw = self._request("GET", "/metrics.json")
        if status != 200:
            raise ServeError(status, {})
        return json.loads(raw.decode("utf-8"))

    def shutdown(self) -> Dict:
        return self._request_json("POST", "/shutdown", {})


class DaemonHandle:
    """A spawned daemon subprocess plus a default client."""

    def __init__(self, process: subprocess.Popen, ready: Dict):
        self.process = process
        self.ready = ready
        self.port: int = ready["port"]
        self.client = ServeClient(self.port)
        self.returncode: Optional[int] = None

    def new_client(self, timeout: float = 120.0) -> ServeClient:
        """A fresh connection (one per concurrent client thread)."""
        return ServeClient(self.port, timeout=timeout)

    def stop(self, timeout: float = 15.0) -> int:
        """Graceful shutdown; returns (and records) the exit code."""
        if self.returncode is not None:
            return self.returncode
        try:
            self.client.shutdown()
        except Exception:  # noqa: BLE001 - daemon may already be gone
            pass
        try:
            self.returncode = self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.returncode = self.process.wait(timeout=5.0)
        self.client.close()
        return self.returncode


def _serve_command(workers: int, extra_args) -> List[str]:
    return [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--workers",
        str(workers),
        *[str(argument) for argument in extra_args],
    ]


def wait_for_ready(
    ready_path: str, process: subprocess.Popen, timeout: float = 60.0
) -> Dict:
    """Poll for the daemon's ready file; raise with its output if the
    process dies first."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(ready_path):
            try:
                with open(ready_path, "r", encoding="utf-8") as handle:
                    ready = json.load(handle)
                if ready.get("schema") == PROTOCOL_SCHEMA:
                    return ready
            except (OSError, ValueError):
                pass  # mid-write; retry
        if process.poll() is not None:
            stdout, stderr = process.communicate(timeout=5.0)
            raise RuntimeError(
                "repro serve exited with code "
                f"{process.returncode} before becoming ready\n"
                f"stdout: {stdout.decode(errors='replace')}\n"
                f"stderr: {stderr.decode(errors='replace')}"
            )
        time.sleep(0.02)
    process.kill()
    raise TimeoutError(
        f"repro serve not ready within {timeout:g}s ({ready_path})"
    )


@contextmanager
def start_daemon(
    workers: int = 2,
    cache_dir: Optional[str] = None,
    extra_args=(),
    env: Optional[Dict] = None,
    startup_timeout: float = 60.0,
):
    """Spawn a daemon, wait until it serves, yield a DaemonHandle.

    ``env`` entries overlay ``os.environ`` (fault-injection variables,
    ``REPRO_CACHE_DIR``, ...).  On exit the daemon is stopped
    gracefully; inspect ``handle.returncode`` afterwards."""
    run_env = dict(os.environ)
    if env:
        run_env.update(env)
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as scratch:
        ready_path = os.path.join(scratch, "ready.json")
        command = _serve_command(workers, extra_args)
        command += ["--ready-file", ready_path]
        if cache_dir is not None:
            command += ["--cache-dir", cache_dir]
        process = subprocess.Popen(
            command,
            env=run_env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        handle = None
        try:
            ready = wait_for_ready(ready_path, process, startup_timeout)
            handle = DaemonHandle(process, ready)
            yield handle
        finally:
            if handle is not None:
                handle.stop()
            elif process.poll() is None:
                process.kill()
                process.wait(timeout=5.0)
            # Reap the pipes so the interpreter does not warn.
            try:
                process.communicate(timeout=5.0)
            except (ValueError, subprocess.TimeoutExpired):
                pass
