"""Daemon assembly and lifecycle: what ``repro serve`` actually runs.

Order of operations matters here:

1. :func:`~repro.serve.pool.prime_process` first -- the parent imports
   the whole pipeline and compiles a warm-up program *before* forking,
   so every worker is born warm (Linux ``fork`` start method);
2. fork the :class:`~repro.serve.pool.WarmPool` and wait for every
   worker's ``ready`` message;
3. assemble the :class:`~repro.serve.service.CompileService` (memory
   LRU, admission limits, metrics registry, optional request log);
4. bind the transport, then atomically write the ``--ready-file``
   (carrying the actual port -- tests bind port 0) so a supervising
   process knows exactly when requests will be accepted;
5. serve until ``POST /shutdown`` / stdio ``shutdown`` / SIGTERM /
   SIGINT, then drain: stop admissions, stop the listener, close the
   pool.  A clean shutdown exits 0.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
from typing import Dict, Optional

from repro.batch.cache import default_cache_dir
from repro.obs.telemetry import MetricsRegistry
from repro.serve.http import serve_http
from repro.serve.memcache import MemoryCache
from repro.serve.pool import WarmPool, prime_process
from repro.serve.protocol import DEFAULT_MAX_BODY_BYTES, PROTOCOL_SCHEMA
from repro.serve.service import CompileService, RequestLog
from repro.serve.stdio import serve_stdio
from repro.util.atomicio import atomic_write_json

__all__ = ["run_daemon"]


def _write_ready_file(path: str, payload: Dict) -> None:
    """Atomic write: pollers never observe a torn ready file."""
    atomic_write_json(path, payload, fsync=False)


def run_daemon(
    workers: int = 4,
    host: str = "127.0.0.1",
    port: int = 8750,
    stdio: bool = False,
    queue_limit: int = 64,
    request_timeout_s: float = 60.0,
    program_timeout_s: Optional[float] = None,
    mem_cache_entries: int = 256,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    ready_file: Optional[str] = None,
    request_log_path: Optional[str] = None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    heartbeat_s: Optional[float] = None,
    log_stream=None,
) -> int:
    """Run the daemon to completion; the process exit code."""
    log_stream = log_stream if log_stream is not None else sys.stderr

    def log(message: str) -> None:
        print(f"repro serve: {message}", file=log_stream, flush=True)

    log(f"priming pipeline in pid {os.getpid()} ...")
    prime_process()

    disk_cache_dir = None if no_cache else (cache_dir or default_cache_dir())
    pool = WarmPool(
        workers=workers, cache_dir=disk_cache_dir, heartbeat_s=heartbeat_s
    )
    pool.start()
    if not pool.wait_ready(timeout=60.0):
        log("worker pool failed to become ready within 60s")
        pool.close()
        return 1
    log(f"{workers} warm worker(s) ready")

    memory_cache = (
        MemoryCache(mem_cache_entries) if mem_cache_entries > 0 else None
    )
    service = CompileService(
        pool,
        queue_limit=queue_limit,
        request_timeout_s=request_timeout_s,
        program_timeout_s=program_timeout_s,
        memory_cache=memory_cache,
        metrics=MetricsRegistry(),
        request_log=(
            RequestLog(request_log_path) if request_log_path else None
        ),
    )

    ready_payload: Dict = {
        "schema": PROTOCOL_SCHEMA,
        "pid": os.getpid(),
        "workers": workers,
        "cache_dir": disk_cache_dir,
        "queue_limit": queue_limit,
    }

    try:
        if stdio:
            ready_payload["transport"] = "stdio"
            if ready_file:
                _write_ready_file(ready_file, ready_payload)
            log("serving JSON-RPC on stdio (EOF or `shutdown` to stop)")
            serve_stdio(service, max_body_bytes=max_body_bytes)
            return 0

        server = serve_http(
            service, host=host, port=port, max_body_bytes=max_body_bytes
        )

        def _on_signal(signum, frame):
            service.begin_shutdown()
            # shutdown() joins serve_forever; it must not run on the
            # thread executing the serve_forever loop itself.
            threading.Thread(target=server.shutdown, daemon=True).start()

        previous_handlers = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, _on_signal)

        ready_payload["transport"] = "http"
        ready_payload["host"] = host
        ready_payload["port"] = server.port
        if ready_file:
            _write_ready_file(ready_file, ready_payload)
        log(f"listening on http://{host}:{server.port}")
        try:
            server.serve_forever(poll_interval=0.05)
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
            server.server_close()
        log("listener stopped, draining workers")
        return 0
    finally:
        service.close()
        log("shutdown complete")
