"""The serving protocol: request/response shapes and error codes.

One schema (``repro-serve/1``) is spoken over both transports:

* **JSON-over-HTTP** (:mod:`repro.serve.http`): REST-ish endpoints
  (``POST /compile``, ``GET /metrics``, ...) where protocol errors map
  onto HTTP status codes (429 for queue overflow with a ``Retry-After``
  header, 504 for a missed deadline, 413 for an oversized body);
* **stdio JSON-RPC** (:mod:`repro.serve.stdio`): one JSON envelope per
  line -- ``{"id": ..., "method": ..., "params": {...}}`` in,
  ``{"id": ..., "result": ...}`` or ``{"id": ..., "error": {...}}``
  out.

A ``compile`` result carries the manifest ``entry`` -- byte-for-byte
the entry a ``repro batch`` worker would have produced for the same
(source, config, workload) -- plus serving sideband (``tier``,
``attempts``, ``wall_ms``, ``queue_ms``) that never leaks into the
entry itself, so served manifests stay diffable against CLI manifests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "ERR_BAD_REQUEST",
    "ERR_CRASHED",
    "ERR_DEADLINE",
    "ERR_INTERNAL",
    "ERR_OVERSIZED",
    "ERR_QUEUE_FULL",
    "ERR_SHUTTING_DOWN",
    "ERR_UNKNOWN_METHOD",
    "PROTOCOL_SCHEMA",
    "BadRequest",
    "ServeRejection",
    "error_body",
    "http_status_for",
    "normalize_compile_params",
]

PROTOCOL_SCHEMA = "repro-serve/1"

#: Default request-body ceiling (HTTP body or stdio line).  Oversized
#: requests are rejected before parsing -- a malformed gigabyte must
#: cost the daemon nothing.
DEFAULT_MAX_BODY_BYTES = 4 * 1024 * 1024

ERR_BAD_REQUEST = "bad_request"
ERR_OVERSIZED = "oversized"
ERR_QUEUE_FULL = "queue_full"
ERR_DEADLINE = "deadline"
ERR_CRASHED = "crashed"
ERR_SHUTTING_DOWN = "shutting_down"
ERR_UNKNOWN_METHOD = "unknown_method"
ERR_INTERNAL = "internal"

#: Protocol error code -> HTTP status.  429 + Retry-After is the
#: backpressure signal admission control emits when the queue is full.
_HTTP_STATUS = {
    ERR_BAD_REQUEST: 400,
    ERR_UNKNOWN_METHOD: 404,
    ERR_OVERSIZED: 413,
    ERR_QUEUE_FULL: 429,
    ERR_INTERNAL: 500,
    ERR_SHUTTING_DOWN: 503,
    ERR_DEADLINE: 504,
}

_CONFIG_PRESETS = ("basic", "best", "anticipated")

#: Fuel ceiling accepted from the wire (matches the CLI default's
#: order of magnitude; a request cannot buy an unbounded interpreter
#: run just by sending a big number).
MAX_FUEL = 1_000_000_000


def http_status_for(code: str) -> int:
    return _HTTP_STATUS.get(code, 500)


class BadRequest(ValueError):
    """A request that fails validation (code ``bad_request``)."""


class ServeRejection(RuntimeError):
    """A structured protocol-level rejection (not a compile failure).

    ``code`` is one of the ``ERR_*`` constants; ``retry_after`` (seconds)
    accompanies ``queue_full`` so clients can back off intelligently.
    """

    def __init__(
        self, code: str, message: str, retry_after: Optional[float] = None
    ):
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after

    @property
    def http_status(self) -> int:
        return http_status_for(self.code)

    def body(self) -> Dict:
        return error_body(self.code, str(self), retry_after=self.retry_after)


def error_body(
    code: str, message: str, retry_after: Optional[float] = None
) -> Dict:
    """The canonical error payload both transports emit."""
    error: Dict = {"code": code, "message": message}
    if retry_after is not None:
        error["retry_after"] = round(retry_after, 3)
    return {"schema": PROTOCOL_SCHEMA, "error": error}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BadRequest(message)


def normalize_compile_params(params) -> Dict:
    """Validate and normalize ``compile`` params into a worker task.

    Returns the picklable task dict :func:`repro.batch.worker.
    compile_program_task` consumes (``rid``/``timeout_s`` are stamped
    on later by the service).  Raises :class:`BadRequest` on anything
    malformed; validation must be total -- a garbage request can never
    reach the worker pool."""
    _require(isinstance(params, dict), "params must be a JSON object")
    source = params.get("source")
    _require(isinstance(source, str) and source.strip() != "",
             "params.source must be a non-empty string")
    path = params.get("path", "<request>")
    _require(isinstance(path, str) and path != "",
             "params.path must be a non-empty string")
    config = params.get("config", "best")
    _require(config in _CONFIG_PRESETS,
             f"params.config must be one of {_CONFIG_PRESETS}")
    overrides = params.get("config_overrides") or {}
    _require(
        isinstance(overrides, dict)
        and all(isinstance(k, str) for k in overrides),
        "params.config_overrides must be an object with string keys",
    )
    entry = params.get("entry", "main")
    _require(isinstance(entry, str) and entry.isidentifier(),
             "params.entry must be an identifier")
    args = params.get("args", [])
    _require(
        isinstance(args, list)
        and all(isinstance(a, int) and not isinstance(a, bool) for a in args),
        "params.args must be a list of integers",
    )
    fuel = params.get("fuel", 50_000_000)
    _require(
        isinstance(fuel, int) and not isinstance(fuel, bool)
        and 0 < fuel <= MAX_FUEL,
        f"params.fuel must be an integer in (0, {MAX_FUEL}]",
    )
    deadline_ms = params.get("deadline_ms")
    if deadline_ms is not None:
        _require(
            isinstance(deadline_ms, (int, float))
            and not isinstance(deadline_ms, bool) and deadline_ms > 0,
            "params.deadline_ms must be a positive number",
        )
    unknown = set(params) - {
        "source", "path", "config", "config_overrides", "entry", "args",
        "fuel", "deadline_ms",
    }
    _require(not unknown,
             f"unknown params: {', '.join(sorted(unknown))}")
    return {
        "path": path,
        "name": path.rsplit("/", 1)[-1].split(".")[0] or "m",
        "source": source,
        "config": config,
        "config_overrides": dict(overrides),
        "entry": entry,
        "args": [int(a) for a in args],
        "fuel": fuel,
        "deadline_ms": deadline_ms,
    }


def corpus_requests(paths: List[str], **common) -> List[Dict]:
    """Build one compile-params dict per source file (client helper:
    the smoke script and benchmarks map a corpus directory onto
    requests the same way ``repro batch`` expands its inputs)."""
    requests = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        import os

        params = {"source": source, "path": os.path.basename(path)}
        params.update(common)
        requests.append(params)
    return requests
