"""The transport-agnostic serving core behind both daemon transports.

:class:`CompileService` owns the request path a compile takes once it
clears transport framing, in tier order:

1. **Admission.**  At most ``queue_limit`` requests may be in flight;
   the next one is rejected with ``queue_full`` plus a ``retry_after``
   hint (HTTP 429 + ``Retry-After``) -- backpressure, never unbounded
   queueing.  A fault-injection site (``serve.request``, driven by
   ``$REPRO_FAULT``) sits here for the chaos battery.
2. **Memory tier.**  A thread-safe LRU (:class:`repro.serve.memcache.
   MemoryCache`) keyed by the *same* content digest as the disk cache:
   canonical module IR x ``SptConfig.fingerprint()`` x workload.  A
   hit answers in microseconds without touching the pool.
3. **Worker pool.**  Misses are submitted to the :class:`repro.serve.
   pool.WarmPool`; the worker consults the shared content-addressed
   disk tier and compiles cold if needed, under the same SIGALRM
   watchdog + degraded-ladder retry a ``repro batch`` worker uses --
   which is exactly why served entries are byte-identical to CLI
   entries.
4. **Deadline.**  The handler thread waits on the pending event at
   most ``min(request deadline, request_timeout_s)``; a miss abandons
   the request (``deadline``, HTTP 504) while the worker's eventual
   result is discarded, and the client never hangs.

Every response is also an observation: counters/histograms go into a
:class:`repro.obs.telemetry.MetricsRegistry` (exported by
``GET /metrics`` through the Prometheus sink) and, when a request log
is configured, one JSONL ledger line per request (same
``O_APPEND`` + ``flock`` whole-line discipline as the run ledger).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Dict, Optional

from repro.batch.cache import ResultCache
from repro.batch.worker import canonical_module_text, config_from_task
from repro.obs.telemetry import MetricsRegistry
from repro.resilience.faults import maybe_inject
from repro.serve.memcache import MemoryCache
from repro.serve.pool import WarmPool
from repro.serve.protocol import (
    ERR_DEADLINE,
    ERR_QUEUE_FULL,
    ERR_SHUTTING_DOWN,
    PROTOCOL_SCHEMA,
    ServeRejection,
    normalize_compile_params,
)

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

__all__ = ["REQUEST_LOG_SCHEMA", "CompileService", "RequestLog"]

REQUEST_LOG_SCHEMA = "repro-serve-log/1"


class RequestLog:
    """Append-only JSONL record of every served request.

    Same whole-line ``O_APPEND`` + ``flock`` discipline as
    :class:`repro.obs.ledger.Ledger`: handler threads (and multiple
    daemons sharing a log) interleave whole lines, never fragments."""

    def __init__(self, path: str):
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)

    def append(self, record: Dict) -> None:
        line = (
            json.dumps(
                dict(record, schema=REQUEST_LOG_SCHEMA), sort_keys=True
            )
            + "\n"
        ).encode()
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            os.write(fd, line)
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)


class CompileService:
    """Admission control + cache tiers + pool dispatch + observation."""

    def __init__(
        self,
        pool: WarmPool,
        queue_limit: int = 64,
        request_timeout_s: float = 60.0,
        program_timeout_s: Optional[float] = None,
        memory_cache: Optional[MemoryCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        request_log: Optional[RequestLog] = None,
    ):
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.pool = pool
        self.queue_limit = queue_limit
        self.request_timeout_s = request_timeout_s
        self.program_timeout_s = program_timeout_s
        self.memory_cache = memory_cache
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.request_log = request_log
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._inflight = 0
        self._stopping = False

    # -- the request path -------------------------------------------------

    def compile(self, params) -> Dict:
        """Serve one ``compile`` request; the protocol-level response.

        Raises :class:`~repro.serve.protocol.BadRequest` on malformed
        params and :class:`~repro.serve.protocol.ServeRejection` for
        queue overflow, missed deadlines, and shutdown."""
        started = time.monotonic()
        maybe_inject("serve.request")
        task = normalize_compile_params(params)
        self.metrics.count("serve.requests")
        with self._lock:
            if self._stopping:
                self.metrics.count("serve.rejected.shutting_down")
                raise ServeRejection(
                    ERR_SHUTTING_DOWN, "daemon is shutting down"
                )
            if self._inflight >= self.queue_limit:
                self.metrics.count("serve.rejected.queue_full")
                raise ServeRejection(
                    ERR_QUEUE_FULL,
                    f"admission queue full "
                    f"({self._inflight}/{self.queue_limit} in flight)",
                    retry_after=self._retry_after_hint(),
                )
            self._inflight += 1
        try:
            return self._serve(task, started)
        finally:
            with self._lock:
                self._inflight -= 1

    def _serve(self, task: Dict, started: float) -> Dict:
        key = self._program_key(task)

        if key is not None and self.memory_cache is not None:
            payload = self.memory_cache.get(key)
            if payload is not None:
                entry = {
                    "path": task["path"],
                    "sha256": hashlib.sha256(
                        task["source"].encode("utf-8")
                    ).hexdigest(),
                }
                entry.update(payload)
                entry["cached"] = True
                return self._respond(entry, tier="memory", attempts=0,
                                     started=started)

        deadline_s = self.request_timeout_s
        if task.get("deadline_ms"):
            deadline_s = min(deadline_s, task["deadline_ms"] / 1000.0)
        worker_task = {
            name: value
            for name, value in task.items()
            if name != "deadline_ms"
        }
        if self.program_timeout_s:
            worker_task["timeout_s"] = self.program_timeout_s

        try:
            pending = self.pool.submit(worker_task)
        except RuntimeError:
            self.metrics.count("serve.rejected.shutting_down")
            raise ServeRejection(
                ERR_SHUTTING_DOWN, "worker pool is shutting down"
            )
        queue_wait_started = time.monotonic()
        if not pending.wait(deadline_s):
            self.pool.abandon(pending.rid)
            self.metrics.count("serve.rejected.deadline")
            raise ServeRejection(
                ERR_DEADLINE,
                f"request missed its {deadline_s:g}s deadline",
            )
        if pending.shutdown or pending.entry is None:
            self.metrics.count("serve.rejected.shutting_down")
            raise ServeRejection(
                ERR_SHUTTING_DOWN,
                "daemon shut down before the request completed",
            )
        self.metrics.observe(
            "serve.pool.wait_ms",
            (time.monotonic() - queue_wait_started) * 1e3,
        )

        entry = pending.entry
        if entry.get("status") == "crashed":
            tier = "crashed"
        elif entry.get("cached"):
            tier = "disk"
        else:
            tier = "compute"
        if (
            key is not None
            and self.memory_cache is not None
            and entry.get("status") == "ok"
        ):
            payload = {
                name: value
                for name, value in entry.items()
                if name not in ("path", "sha256")
            }
            self.memory_cache.put(key, payload)
        return self._respond(entry, tier=tier, attempts=pending.attempts,
                             started=started)

    # -- helpers ----------------------------------------------------------

    def _program_key(self, task: Dict) -> Optional[str]:
        """The shared content digest, or None when the program will not
        canonicalize (parse errors go to a worker so the error entry is
        produced by the same code path the CLI uses)."""
        try:
            canonical = canonical_module_text(task["source"])
            config = config_from_task(task)
        except Exception:  # noqa: BLE001 - any failure means "no key"
            return None
        return ResultCache.program_key(
            canonical,
            config.fingerprint(),
            ResultCache.workload_token(
                task["entry"], tuple(task["args"]), task["fuel"]
            ),
        )

    def _retry_after_hint(self) -> float:
        """Seconds a rejected client should back off: the observed warm
        p50 request latency scaled by queue depth per worker, clamped
        to a sane band."""
        snapshot = self.metrics.histograms.get("serve.request.wall_ms")
        p50_ms = 5.0
        if snapshot is not None and snapshot.count:
            p50_ms = snapshot.quantile(0.5)
        depth_per_worker = self.queue_limit / max(self.pool.size, 1)
        hint = (p50_ms / 1000.0) * depth_per_worker
        return min(max(hint, 0.05), 5.0)

    def _respond(
        self, entry: Dict, tier: str, attempts: int, started: float
    ) -> Dict:
        wall_ms = (time.monotonic() - started) * 1e3
        status = entry.get("status", "error")
        self.metrics.count("serve.responses")
        self.metrics.count(f"serve.tier.{tier}")
        self.metrics.count(f"serve.status.{status}")
        self.metrics.observe("serve.request.wall_ms", wall_ms)
        self.metrics.observe(f"serve.tier.{tier}.wall_ms", wall_ms)
        if entry.get("degraded"):
            self.metrics.count("serve.degraded")
        serve_info = {
            "tier": tier,
            "attempts": attempts,
            "wall_ms": round(wall_ms, 3),
        }
        if self.request_log is not None:
            self.request_log.append(
                {
                    "ts": round(time.time(), 3),
                    "path": entry.get("path"),
                    "sha256": entry.get("sha256"),
                    "status": status,
                    "tier": tier,
                    "attempts": attempts,
                    "wall_ms": round(wall_ms, 3),
                }
            )
        return {
            "schema": PROTOCOL_SCHEMA,
            "entry": entry,
            "serve": serve_info,
        }

    # -- introspection / lifecycle -----------------------------------------

    def stats(self) -> Dict:
        """The ``GET /healthz`` payload."""
        with self._lock:
            inflight = self._inflight
        stats: Dict = {
            "schema": PROTOCOL_SCHEMA,
            "status": "stopping" if self._stopping else "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "inflight": inflight,
            "queue_limit": self.queue_limit,
            "pool": self.pool.stats(),
        }
        if self.memory_cache is not None:
            stats["memory_cache"] = self.memory_cache.snapshot()
        return stats

    def metrics_snapshot(self) -> Dict:
        snapshot = self.metrics.snapshot()
        if self.memory_cache is not None:
            memory = self.memory_cache.snapshot()
            counters = snapshot["counters"]
            counters["serve.memcache.hits"] = memory["hits"]
            counters["serve.memcache.misses"] = memory["misses"]
            counters["serve.memcache.evictions"] = memory["evictions"]
            gauges = snapshot["gauges"]
            gauges["serve.memcache.entries"] = memory["entries"]
            gauges["serve.memcache.bytes"] = memory["bytes"]
        pool = self.pool.stats()
        snapshot["gauges"]["serve.pool.alive"] = pool["alive"]
        for name in ("crashes", "respawns", "retries", "discarded"):
            snapshot["counters"][f"serve.pool.{name}"] = pool[name]
        return snapshot

    def begin_shutdown(self) -> None:
        """Start rejecting new work (``shutting_down``); in-flight
        requests drain normally."""
        with self._lock:
            self._stopping = True

    def close(self) -> None:
        self.begin_shutdown()
        self.pool.close()
