"""JSON-over-HTTP transport for the serving daemon (stdlib only).

A :class:`ThreadingHTTPServer` bound to localhost; one handler thread
per connection blocks inside :meth:`CompileService.compile` while the
worker pool does the work, so concurrency is bounded by the service's
admission control, not by the HTTP layer.

Endpoints::

    POST /compile       {"source": ..., "config": ..., ...} -> entry
    POST /shutdown      begin graceful shutdown
    GET  /healthz       daemon/pool/cache status
    GET  /metrics       Prometheus text exposition (repro.obs.sinks)
    GET  /metrics.json  the canonical JSON metrics document

Protocol errors map to HTTP statuses via :func:`repro.serve.protocol.
http_status_for`; ``queue_full`` additionally carries a ``Retry-After``
header.  Malformed and oversized bodies are answered (400/413) without
ever reaching the pool -- and an oversized body is never even read."""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.obs.sinks import metrics_json, prometheus_text
from repro.serve.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    ERR_BAD_REQUEST,
    ERR_INTERNAL,
    ERR_OVERSIZED,
    ERR_UNKNOWN_METHOD,
    BadRequest,
    ServeRejection,
    error_body,
    http_status_for,
)
from repro.serve.service import CompileService

__all__ = ["ServeHTTPServer", "serve_http"]


class ServeHTTPServer(ThreadingHTTPServer):
    """The daemon's HTTP listener; holds the shared service."""

    daemon_threads = True
    allow_reuse_address = True
    # The admission queue, not the TCP accept backlog, is the
    # backpressure mechanism: a thundering herd must reach the service
    # and get its typed 429, not a kernel connection reset.
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        service: CompileService,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ):
        super().__init__(address, _ServeHandler)
        self.service = service
        self.max_body_bytes = max_body_bytes

    @property
    def port(self) -> int:
        return self.server_address[1]


class _ServeHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    sys_version = ""
    # Responses go out as two sends (header block, then body); without
    # TCP_NODELAY, Nagle against the client's delayed ACK turns every
    # warm hit into a ~40 ms stall -- 40x the actual service time.
    disable_nagle_algorithm = True

    # The daemon's request log replaces access logging; stderr noise
    # per request would swamp the terminal under load tests.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # -- plumbing ---------------------------------------------------------

    def _send_json(
        self, status: int, payload: Dict, headers: Optional[Dict] = None
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_body(
        self, code: str, message: str, retry_after: Optional[float] = None
    ) -> None:
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = f"{max(retry_after, 0.0):.3f}"
        self._send_json(
            http_status_for(code),
            error_body(code, message, retry_after=retry_after),
            headers=headers,
        )

    def _read_body(self) -> Optional[bytes]:
        """The request body, or None after an error was answered."""
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length)
        except (TypeError, ValueError):
            self._send_error_body(
                ERR_BAD_REQUEST, "missing or invalid Content-Length"
            )
            return None
        if length < 0:
            self._send_error_body(ERR_BAD_REQUEST, "negative Content-Length")
            return None
        if length > self.server.max_body_bytes:
            # Reject without reading: an oversized body costs nothing.
            self.close_connection = True
            self._send_error_body(
                ERR_OVERSIZED,
                f"request body of {length} bytes exceeds the "
                f"{self.server.max_body_bytes}-byte limit",
            )
            return None
        return self.rfile.read(length)

    # -- endpoints --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            service = self.server.service
            if self.path == "/metrics":
                self._send_text(
                    200,
                    prometheus_text(service.metrics_snapshot()),
                    "text/plain; version=0.0.4",
                )
            elif self.path == "/metrics.json":
                # metrics_json returns the canonical serialized document.
                self._send_text(
                    200,
                    metrics_json(service.metrics_snapshot()),
                    "application/json",
                )
            elif self.path == "/healthz":
                self._send_json(200, service.stats())
            else:
                self._send_error_body(
                    ERR_UNKNOWN_METHOD, f"no such endpoint: {self.path}"
                )
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            self._try_send_internal(exc)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            body = self._read_body()
            if body is None:
                return
            if self.path == "/compile":
                self._compile(body)
            elif self.path == "/shutdown":
                self.server.service.begin_shutdown()
                self._send_json(200, {"ok": True, "status": "stopping"})
                # shutdown() must come from another thread: it joins the
                # serve_forever loop this handler is running under.
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
            else:
                self._send_error_body(
                    ERR_UNKNOWN_METHOD, f"no such endpoint: {self.path}"
                )
        except (BrokenPipeError, ConnectionResetError):
            pass
        except Exception as exc:  # noqa: BLE001 - daemon must survive
            self._try_send_internal(exc)

    def _compile(self, body: bytes) -> None:
        try:
            try:
                params = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise BadRequest(f"body is not valid JSON: {exc}")
            response = self.server.service.compile(params)
        except BadRequest as exc:
            self._send_error_body(ERR_BAD_REQUEST, str(exc))
            return
        except ServeRejection as exc:
            self._send_error_body(
                exc.code, str(exc), retry_after=exc.retry_after
            )
            return
        self._send_json(200, response)

    def _try_send_internal(self, exc: Exception) -> None:
        try:
            self._send_error_body(
                ERR_INTERNAL, f"{exc.__class__.__name__}: {exc}"
            )
        except OSError:
            pass


def serve_http(
    service: CompileService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> ServeHTTPServer:
    """Bind (``port=0`` picks a free port) and return the server; the
    caller runs ``serve_forever`` on its thread of choice."""
    return ServeHTTPServer((host, port), service, max_body_bytes)
