"""The pre-forked, pre-warmed worker pool behind ``repro serve``.

Worker lifecycle reuses the batch layer's claim-slot machinery
(:mod:`repro.batch.lifecycle`): each worker process advertises the
request id it is working on through a lock-free shared-memory slot, so
a hard death (segfault, ``os._exit``) is always attributed to the
right request.  The differences from the one-shot batch pool:

* **Pre-warmed.**  :func:`prime_process` is called in the daemon
  *before* forking: it imports the whole pipeline and compiles a tiny
  warm-up program, so every forked worker starts with hot module state
  and never pays import cost on a request.  Workers additionally
  re-prime the config presets post-fork (cheap) and report ``ready``.
* **Long-lived.**  Workers loop on the task queue indefinitely; one
  process amortizes its fork cost over thousands of requests -- the
  warm-path/cold-path discipline the cost model applies to fork/commit
  overheads, applied to the compiler itself.
* **Crash-isolated with retry.**  A request whose worker dies is
  resubmitted once on a respawned worker; a second death resolves it
  as a structured ``status: "crashed"`` entry (a contained
  degradation, never a stranded client).

Fault injection for the resilience battery:

* ``$REPRO_SERVE_CRASH_ON=<substr>`` -- a worker hard-exits (code 13)
  right after claiming any request whose path contains the substring,
  every time.  The retry also crashes, so the client observes the
  contained ``crashed`` entry.
* ``$REPRO_SERVE_CRASH_TOKENS=<dir>:<N>`` -- bounds the crashes: each
  crash first claims one token file (``O_CREAT|O_EXCL``) under
  ``dir``; once ``N`` tokens are claimed the fault stops firing, so a
  *retried* request succeeds and the test observes respawn + retry.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
import time
from typing import Dict, Optional

from repro.batch.cache import ResultCache
from repro.batch.lifecycle import (
    NO_CLAIM,
    ClaimedWorker,
    drain_queue,
    start_heartbeat_thread,
)
from repro.batch.worker import CRASH_EXIT_CODE, compile_program_task

__all__ = [
    "SERVE_CRASH_ENV_VAR",
    "SERVE_CRASH_TOKENS_ENV_VAR",
    "WARMUP_SOURCE",
    "PendingRequest",
    "WarmPool",
    "prime_process",
    "serve_worker_main",
]

SERVE_CRASH_ENV_VAR = "REPRO_SERVE_CRASH_ON"
SERVE_CRASH_TOKENS_ENV_VAR = "REPRO_SERVE_CRASH_TOKENS"

#: The tiny MiniC program the daemon compiles before forking workers:
#: touches the frontend, SSA construction, profiling, the cost model
#: and the partition search, so forked children inherit every lazily
#: imported module already hot.
WARMUP_SOURCE = """\
int main(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += (s ^ i) & 7;
    }
    return s;
}
"""


def prime_process() -> None:
    """Import the pipeline and compile the warm-up program once.

    Called in the daemon process before the pool forks, and harmless
    to call again (a few milliseconds once everything is hot)."""
    from repro.core.config import (
        anticipated_config,
        basic_config,
        best_config,
    )
    from repro.core.pipeline import Workload, compile_spt
    from repro.frontend import compile_minic

    for factory in (basic_config, best_config, anticipated_config):
        factory()
    module = compile_minic(WARMUP_SOURCE, name="warmup")
    compile_spt(
        module,
        best_config(),
        Workload(entry="main", args=(8,), fuel=100_000),
    )


def _maybe_crash(path: str) -> None:
    """Honor the serve-layer crash-injection environment hooks."""
    crash_on = os.environ.get(SERVE_CRASH_ENV_VAR)
    if not crash_on or crash_on not in path:
        return
    tokens = os.environ.get(SERVE_CRASH_TOKENS_ENV_VAR)
    if tokens:
        directory, _, raw_limit = tokens.rpartition(":")
        try:
            limit = int(raw_limit)
        except ValueError:
            directory, limit = tokens, 1
        claimed = False
        for index in range(limit):
            token = os.path.join(directory, f"crash-token-{index}")
            try:
                os.close(os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                claimed = True
                break
            except FileExistsError:
                continue
            except OSError:
                return
        if not claimed:
            return
    os._exit(CRASH_EXIT_CODE)


def serve_worker_main(
    task_queue,
    result_queue,
    worker_id: int,
    cache_dir: Optional[str],
    claim,
    heartbeat_s: Optional[float] = None,
) -> None:
    """Body of one serving worker process.

    Protocol mirrors the batch worker's, keyed by request id instead of
    task index: ``ready`` once at startup, then ``start``/``done`` per
    request.  Each request runs under a fresh
    :class:`~repro.core.config.SptConfig` rebuilt from the task, so no
    configuration state can leak between requests sharing a process."""
    cache = ResultCache(cache_dir) if cache_dir else None
    stop_heartbeat = None
    if heartbeat_s:
        stop_heartbeat = start_heartbeat_thread(
            result_queue, worker_id, claim, heartbeat_s
        )
    result_queue.put(
        {"kind": "ready", "worker": worker_id, "pid": os.getpid()}
    )
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            rid = task["rid"]
            claim.value = rid
            result_queue.put(
                {"kind": "start", "worker": worker_id, "rid": rid}
            )
            _maybe_crash(task["path"])
            entry, stats = compile_program_task(task, cache)
            result_queue.put(
                {
                    "kind": "done",
                    "worker": worker_id,
                    "rid": rid,
                    "entry": entry,
                    "stats": stats,
                }
            )
            claim.value = NO_CLAIM
    finally:
        if stop_heartbeat is not None:
            stop_heartbeat.set()


class PendingRequest:
    """One in-flight request: the task, its completion event, and the
    result slots the dispatcher fills."""

    __slots__ = (
        "rid", "task", "event", "entry", "stats", "attempts", "shutdown",
    )

    def __init__(self, rid: int, task: Dict):
        self.rid = rid
        self.task = task
        self.event = threading.Event()
        self.entry: Optional[Dict] = None
        self.stats: Optional[Dict] = None
        #: Compile attempts consumed (1 = first dispatch).
        self.attempts = 1
        #: True when the pool shut down before the request resolved.
        self.shutdown = False

    def wait(self, timeout: Optional[float]) -> bool:
        return self.event.wait(timeout)


def _crashed_entry(task: Dict, exitcode: Optional[int], attempts: int) -> Dict:
    return {
        "path": task["path"],
        "sha256": hashlib.sha256(task["source"].encode("utf-8")).hexdigest(),
        "status": "crashed",
        "error": {
            "exitcode": exitcode if exitcode is not None else -1,
            "message": (
                f"worker process died (exit code {exitcode}) while "
                f"compiling this request ({attempts} attempt(s))"
            ),
        },
    }


class WarmPool:
    """The long-lived worker pool plus its dispatcher thread.

    ``submit`` enqueues a task and returns a :class:`PendingRequest`
    whose event fires when the dispatcher routes the matching ``done``
    message (or gives up after ``max_attempts`` worker deaths).
    ``abandon`` detaches a request whose client stopped waiting (missed
    deadline); its late result is counted and discarded.
    """

    #: Dispatcher idle sleep and liveness-check cadence (seconds).
    POLL_S = 0.002
    LIVENESS_S = 0.05

    def __init__(
        self,
        workers: int = 4,
        cache_dir: Optional[str] = None,
        heartbeat_s: Optional[float] = None,
        max_attempts: int = 2,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.size = workers
        self.cache_dir = cache_dir
        self.heartbeat_s = heartbeat_s
        self.max_attempts = max_attempts
        self._ctx = multiprocessing.get_context()
        self._task_queue = self._ctx.Queue()
        # SimpleQueue for results: put() writes the pipe synchronously,
        # so a worker dying right after put() cannot strand a finished
        # result in an unflushed feeder buffer (see the batch driver).
        self._result_queue = self._ctx.SimpleQueue()
        self._workers: Dict[int, ClaimedWorker] = {}
        self._pending: Dict[int, PendingRequest] = {}
        self._lock = threading.Lock()
        self._next_worker_id = 0
        self._next_rid = 0
        self._stopping = False
        self._thread: Optional[threading.Thread] = None
        self.ready = threading.Event()
        self._ready_count = 0
        self.crashes = 0
        self.respawns = 0
        self.retries = 0
        self.discarded = 0
        self.completed = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        for _ in range(self.size):
            self._spawn()
        self._thread = threading.Thread(
            target=self._dispatch_loop,
            daemon=True,
            name="repro-serve-dispatcher",
        )
        self._thread.start()

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until every initial worker reported ``ready``."""
        return self.ready.wait(timeout)

    def close(self, grace_s: float = 2.0) -> None:
        """Stop the dispatcher, drain workers, unblock any waiters."""
        if self._stopping:
            return
        self._stopping = True
        for _ in range(len(self._workers)):
            self._task_queue.put(None)
        if self._thread is not None:
            self._thread.join(timeout=grace_s)
        for handle in self._workers.values():
            handle.stop(grace_s=grace_s)
        self._workers.clear()
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for pending in leftovers:
            pending.shutdown = True
            pending.event.set()
        self._task_queue.cancel_join_thread()
        self._result_queue.close()

    def _spawn(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        self._workers[worker_id] = ClaimedWorker(
            self._ctx,
            worker_id,
            serve_worker_main,
            self._task_queue,
            self._result_queue,
            self.cache_dir,
            extra_args=(self.heartbeat_s,),
            name_prefix="repro-serve-worker",
        )

    # -- request interface (handler threads) ------------------------------

    def submit(self, task: Dict) -> PendingRequest:
        if self._stopping:
            raise RuntimeError("pool is shutting down")
        with self._lock:
            rid = self._next_rid
            self._next_rid += 1
            pending = PendingRequest(rid, dict(task, rid=rid))
            self._pending[rid] = pending
        self._task_queue.put(pending.task)
        return pending

    def abandon(self, rid: int) -> None:
        """Detach a request whose client stopped waiting."""
        with self._lock:
            self._pending.pop(rid, None)

    def inflight(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- dispatcher --------------------------------------------------------

    def _dispatch_loop(self) -> None:
        last_liveness = 0.0
        while not self._stopping:
            progressed = False
            if not self._result_queue.empty():
                self._handle(self._result_queue.get())
                progressed = True
            now = time.monotonic()
            if now - last_liveness >= self.LIVENESS_S:
                last_liveness = now
                self._check_liveness()
            if not progressed:
                time.sleep(self.POLL_S)

    def _handle(self, message: Dict) -> None:
        kind = message.get("kind")
        if kind == "done":
            with self._lock:
                pending = self._pending.pop(message["rid"], None)
            if pending is None:
                # Client already gave up (deadline) or was retried and
                # both attempts eventually answered: drop the orphan.
                self.discarded += 1
                return
            pending.entry = message["entry"]
            pending.stats = message["stats"]
            self.completed += 1
            pending.event.set()
        elif kind == "ready":
            self._ready_count += 1
            if self._ready_count >= self.size:
                self.ready.set()
        # "start"/"heartbeat" carry liveness information the claim
        # slots already provide; nothing to do.

    def _check_liveness(self) -> None:
        for worker_id, handle in list(self._workers.items()):
            if handle.is_alive():
                continue
            # Absorb whatever the dead worker flushed before charging
            # its claimed request (it may in fact have completed).
            for late in drain_queue(self._result_queue):
                self._handle(late)
            claimed = handle.claimed
            exitcode = handle.exitcode
            del self._workers[worker_id]
            if exitcode == 0:
                # Clean sentinel exit: only happens during shutdown.
                continue
            self.crashes += 1
            if not self._stopping:
                self._spawn()
                self.respawns += 1
            with self._lock:
                pending = (
                    self._pending.get(claimed)
                    if claimed != NO_CLAIM
                    else None
                )
            if pending is None:
                continue
            if pending.attempts < self.max_attempts and not self._stopping:
                pending.attempts += 1
                self.retries += 1
                self._task_queue.put(pending.task)
                continue
            with self._lock:
                self._pending.pop(claimed, None)
            pending.entry = _crashed_entry(
                pending.task, exitcode, pending.attempts
            )
            pending.stats = None
            pending.event.set()

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict:
        return {
            "size": self.size,
            "alive": sum(
                1 for handle in self._workers.values() if handle.is_alive()
            ),
            "ready": self._ready_count,
            "inflight": self.inflight(),
            "completed": self.completed,
            "crashes": self.crashes,
            "respawns": self.respawns,
            "retries": self.retries,
            "discarded": self.discarded,
        }

    def __repr__(self) -> str:
        return (
            f"WarmPool({self.size} workers, "
            f"inflight={self.inflight()}, crashes={self.crashes})"
        )
