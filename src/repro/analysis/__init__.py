"""Classic compiler analyses: CFG, dominators, loops, def-use, aliasing,
and the loop data-dependence graph used by the SPT cost model."""

from repro.analysis.cfg import CFG, split_edge
from repro.analysis.defuse import DefUse
from repro.analysis.dominators import DominatorTree
from repro.analysis.loops import (
    InductionVariable,
    Loop,
    LoopNest,
    ensure_preheader,
    find_basic_induction_variables,
)

__all__ = [
    "CFG",
    "DefUse",
    "DominatorTree",
    "InductionVariable",
    "Loop",
    "LoopNest",
    "ensure_preheader",
    "find_basic_induction_variables",
    "split_edge",
]
