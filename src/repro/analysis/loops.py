"""Natural loop detection and the loop-nest tree.

The SPT framework works per loop: pass 1 evaluates *every* nesting level
of every loop nest as a speculative-parallelization candidate (paper
§3.2), so this module provides the full nest tree plus the per-loop
structural facts later phases need (header, latches, exits, preheader,
basic induction variables).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG, split_edge
from repro.analysis.dominators import DominatorTree
from repro.ir.block import Block
from repro.ir.function import Function
from repro.ir.instr import BinOp, Copy, Jump, Phi
from repro.ir.values import Const, Var


class Loop:
    """A natural loop: header plus the set of body blocks."""

    def __init__(self, header: str, body: Set[str]):
        self.header = header
        #: All block labels in the loop, including the header.
        self.body = body
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []
        #: Stable identifier assigned by :class:`LoopNest` (outer-first).
        self.loop_id: int = -1

    # -- structure -------------------------------------------------------

    def contains(self, label: str) -> bool:
        return label in self.body

    @property
    def depth(self) -> int:
        depth = 1
        cursor = self.parent
        while cursor is not None:
            depth += 1
            cursor = cursor.parent
        return depth

    def latches(self, cfg: CFG) -> List[str]:
        """Blocks inside the loop that branch back to the header."""
        return [p for p in cfg.preds[self.header] if p in self.body]

    def exit_edges(self, cfg: CFG) -> List[Tuple[str, str]]:
        """Edges leaving the loop (source inside, target outside)."""
        edges = []
        for label in sorted(self.body):
            for succ in cfg.succs[label]:
                if succ not in self.body:
                    edges.append((label, succ))
        return edges

    def entry_edges(self, cfg: CFG) -> List[Tuple[str, str]]:
        """Edges entering the header from outside the loop."""
        return [
            (p, self.header)
            for p in cfg.preds[self.header]
            if p not in self.body
        ]

    def blocks(self, func: Function) -> List[Block]:
        """Body blocks in function order."""
        return [blk for blk in func.blocks if blk.label in self.body]

    def body_size(self, func: Function) -> int:
        """Static loop body size in non-trivial instructions.

        This is the "loop body size" of the paper's selection criteria
        (§6.1): phis, jumps and SPT markers cost nothing.
        """
        return sum(
            instr.cost for blk in self.blocks(func) for instr in blk.instrs
        )

    def __repr__(self) -> str:
        return f"Loop(header={self.header}, blocks={len(self.body)})"


class LoopNest:
    """All natural loops of a function, arranged into a nest tree."""

    def __init__(self, func: Function, loops: List[Loop], cfg: CFG):
        self.func = func
        self.loops = loops
        self.cfg = cfg

    @classmethod
    def build(cls, func: Function) -> "LoopNest":
        cfg = CFG.build(func)
        domtree = DominatorTree.build(func, cfg=cfg)

        # Collect natural loops per header (merging multiple back edges).
        by_header: Dict[str, Set[str]] = {}
        for src, dst in cfg.edges():
            if domtree.dominates(dst, src):
                body = _natural_loop_body(cfg, src, dst)
                by_header.setdefault(dst, set()).update(body)

        loops = [Loop(header, body) for header, body in by_header.items()]

        # Nest: a loop is a child of the smallest strictly-containing loop.
        loops.sort(key=lambda lp: len(lp.body))
        for inner_index, inner in enumerate(loops):
            for outer in loops[inner_index + 1:]:
                if inner.header in outer.body and inner.body <= outer.body:
                    inner.parent = outer
                    outer.children.append(inner)
                    break

        # Deterministic outer-first ordering and ids.
        loops.sort(key=lambda lp: (lp.depth, lp.header))
        for loop_id, loop in enumerate(loops):
            loop.loop_id = loop_id
        return cls(func, loops, cfg)

    def top_level(self) -> List[Loop]:
        return [loop for loop in self.loops if loop.parent is None]

    def loop_of_block(self, label: str) -> Optional[Loop]:
        """The innermost loop containing ``label``, if any."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if label in loop.body:
                if best is None or len(loop.body) < len(best.body):
                    best = loop
        return best

    def innermost(self) -> List[Loop]:
        return [loop for loop in self.loops if not loop.children]


def _natural_loop_body(cfg: CFG, latch: str, header: str) -> Set[str]:
    """The natural loop of back edge ``latch -> header``."""
    body = {header, latch}
    stack = [latch]
    while stack:
        label = stack.pop()
        if label == header:
            continue
        for pred in cfg.preds[label]:
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return body


def ensure_preheader(func: Function, loop: Loop) -> str:
    """Guarantee the loop has a unique preheader block; return its label.

    A preheader is the single out-of-loop predecessor of the header whose
    only successor is the header.  The SPT transformation and loop
    unrolling both need one as an insertion point.
    """
    cfg = CFG.build(func)
    entries = loop.entry_edges(cfg)
    if len(entries) == 1:
        pred_label = entries[0][0]
        pred = func.block(pred_label)
        if cfg.succs[pred_label] == [loop.header] and isinstance(
            pred.terminator, Jump
        ):
            return pred_label
    if not entries:
        raise ValueError(f"loop at {loop.header} has no entry edge")

    # Split each entry edge onto a common new preheader.
    preheader = split_edge(func, entries[0][0], loop.header, "preheader")
    header_block = func.block(loop.header)
    for src, _ in entries[1:]:
        src_block = func.block(src)
        term = src_block.terminator
        for attr in ("target", "iftrue", "iffalse"):
            if getattr(term, attr, None) == loop.header:
                setattr(term, attr, preheader.label)
        for phi in header_block.phis():
            if src in phi.incomings:
                # Multiple entries funneling through one preheader need a
                # phi there; this framework only requires single-entry
                # loops (the frontend emits them), so reject instead.
                raise ValueError(
                    f"loop at {loop.header} has multiple entries with phis"
                )
    return preheader.label


class InductionVariable:
    """A basic induction variable ``iv = phi(init, iv + step)``."""

    def __init__(self, phi: Phi, init, step, update: BinOp):
        self.phi = phi
        self.init = init
        self.step = step
        self.update = update

    @property
    def var(self) -> Var:
        return self.phi.dest

    def __repr__(self) -> str:
        return f"IV({self.var} += {self.step})"


def find_basic_induction_variables(
    func: Function, loop: Loop, cfg: CFG = None
) -> List[InductionVariable]:
    """Find ``i = phi(init, i +/- const)`` patterns in the loop header.

    These are the variables the SPT transformation most wants in the
    pre-fork region (the paper's Figure 2 example moves the induction
    update of ``i`` before the fork).
    """
    cfg = cfg or CFG.build(func)
    header = func.block(loop.header)
    latch_labels = set(loop.latches(cfg))
    defs: Dict[Var, object] = {}
    for blk in loop.blocks(func):
        for instr in blk.instrs:
            if instr.dest is not None:
                defs[instr.dest] = instr

    ivs: List[InductionVariable] = []
    for phi in header.phis():
        inits = [v for lbl, v in phi.incomings.items() if lbl not in latch_labels]
        updates = [v for lbl, v in phi.incomings.items() if lbl in latch_labels]
        if len(inits) != 1 or len(set(map(str, updates))) != 1:
            continue
        update_val = updates[0]
        if not isinstance(update_val, Var):
            continue
        update = defs.get(update_val)
        # Chase a trailing copy (SSA cleanup can leave one).
        while isinstance(update, Copy) and isinstance(update.src, Var):
            update = defs.get(update.src)
        if not isinstance(update, BinOp) or update.op not in ("add", "sub"):
            continue
        lhs, rhs = update.lhs, update.rhs
        if lhs == phi.dest and isinstance(rhs, Const):
            step = rhs.value if update.op == "add" else -rhs.value
        elif rhs == phi.dest and isinstance(lhs, Const) and update.op == "add":
            step = lhs.value
        else:
            continue
        ivs.append(InductionVariable(phi, inits[0], step, update))
    return ivs
