"""Dominator tree and dominance frontiers.

Implements the Cooper-Harvey-Kennedy iterative algorithm ("A Simple,
Fast Dominance Algorithm"), which is near-linear in practice and easy to
audit -- a good fit for the loop-scale functions this framework handles.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.analysis.cfg import CFG
from repro.ir.function import Function


class DominatorTree:
    """Immediate dominators, dominance queries, and frontiers."""

    def __init__(self, func: Function, cfg: CFG, idom: Dict[str, Optional[str]]):
        self.func = func
        self.cfg = cfg
        #: Immediate dominator per label (entry maps to None).
        self.idom = idom
        self._depth: Dict[str, int] = {}
        self._compute_depths()

    @classmethod
    def build(cls, func: Function, cfg: CFG = None) -> "DominatorTree":
        cfg = cfg or CFG.build(func)
        rpo = cfg.reverse_postorder()
        order_index = {label: i for i, label in enumerate(rpo)}
        entry = func.entry.label

        idom: Dict[str, Optional[str]] = {label: None for label in rpo}
        idom[entry] = entry

        def intersect(a: str, b: str) -> str:
            while a != b:
                while order_index[a] > order_index[b]:
                    a = idom[a]
                while order_index[b] > order_index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == entry:
                    continue
                preds = [p for p in cfg.preds[label] if idom.get(p) is not None]
                if not preds:
                    continue
                new_idom = preds[0]
                for pred in preds[1:]:
                    new_idom = intersect(pred, new_idom)
                if idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True

        idom[entry] = None
        return cls(func, cfg, idom)

    def _compute_depths(self) -> None:
        for label in self.idom:
            depth = 0
            cursor = label
            while self.idom.get(cursor) is not None:
                cursor = self.idom[cursor]
                depth += 1
            self._depth[label] = depth

    # -- queries ---------------------------------------------------------

    def dominates(self, a: str, b: str) -> bool:
        """Whether block ``a`` dominates block ``b`` (reflexive)."""
        cursor: Optional[str] = b
        while cursor is not None:
            if cursor == a:
                return True
            cursor = self.idom.get(cursor)
        return False

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def children(self, label: str) -> List[str]:
        """Dominator-tree children of ``label``."""
        return [c for c, parent in self.idom.items() if parent == label]

    def depth(self, label: str) -> int:
        return self._depth[label]

    # -- frontiers ---------------------------------------------------------

    def dominance_frontiers(self) -> Dict[str, Set[str]]:
        """Dominance frontier per block (Cooper-Harvey-Kennedy)."""
        frontiers: Dict[str, Set[str]] = {label: set() for label in self.idom}
        for label in self.idom:
            preds = self.cfg.preds.get(label, [])
            if len(preds) < 2:
                continue
            for pred in preds:
                if self.idom.get(pred) is None and pred != self.func.entry.label:
                    continue  # unreachable predecessor
                runner = pred
                while runner is not None and runner != self.idom[label]:
                    frontiers[runner].add(label)
                    runner = self.idom.get(runner)
        return frontiers
