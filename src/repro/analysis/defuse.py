"""Def-use chains over SSA-form functions."""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.ir.block import Block
from repro.ir.function import Function
from repro.ir.instr import Instr
from repro.ir.values import Var


class DefSite(NamedTuple):
    """Where a register is defined."""

    block: str
    index: int
    instr: Instr


class UseSite(NamedTuple):
    """Where a register is read."""

    block: str
    index: int
    instr: Instr


class DefUse:
    """Definition and use sites for every register of an SSA function."""

    def __init__(self, func: Function):
        self.func = func
        self.defs: Dict[Var, DefSite] = {}
        self.uses: Dict[Var, List[UseSite]] = {}
        self._build()

    def _build(self) -> None:
        for blk in self.func.blocks:
            for index, instr in enumerate(blk.instrs):
                dest = instr.dest
                if dest is not None:
                    if dest in self.defs:
                        raise ValueError(
                            f"{dest} defined twice; function not in SSA form"
                        )
                    self.defs[dest] = DefSite(blk.label, index, instr)
                for value in instr.uses():
                    if isinstance(value, Var):
                        self.uses.setdefault(value, []).append(
                            UseSite(blk.label, index, instr)
                        )

    def def_of(self, var: Var) -> Optional[DefSite]:
        return self.defs.get(var)

    def uses_of(self, var: Var) -> List[UseSite]:
        return self.uses.get(var, [])

    def is_dead(self, var: Var) -> bool:
        """Whether ``var`` has no uses."""
        return not self.uses.get(var)
