"""Interprocedural mod/ref summaries.

The paper's *anticipated best compilation* manually applied "the export
of global variables beyond their visible scopes" -- making the memory a
callee touches visible to the caller's dependence analysis instead of
assuming a call clobbers everything.  This module automates the
equivalent: a bottom-up fixpoint over the call graph computes, per
function, the canonical symbol sets it may read and write; calls to
summarized functions then participate in alias queries with those sets
rather than as universal clobbers.

Canonical symbol names are ``sym`` for globals and ``func.sym`` for
function-local (static) arrays, matching the interpreter's symbol
table.  ``None`` in a set marks unknown memory (raw pointers, escaped
arrays, intrinsics).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.analysis import alias as alias_mod
from repro.ir.function import Function, Module
from repro.ir.instr import Call, Instr, Load, LoadAddr, Store
from repro.ir.values import Const

SymSet = Set[Optional[str]]


class ModRefSummaries:
    """Per-function read/write symbol sets."""

    def __init__(self, module: Module):
        self.module = module
        self.reads: Dict[str, SymSet] = {}
        self.writes: Dict[str, SymSet] = {}
        self._compute()

    # -- construction ------------------------------------------------------

    def _canon(self, func: Function, sym: Optional[str]) -> Optional[str]:
        if sym is None:
            return None
        if sym in func.arrays:
            return f"{func.name}.{sym}"
        return sym

    def _compute(self) -> None:
        for name in self.module.functions:
            self.reads[name] = set()
            self.writes[name] = set()

        changed = True
        while changed:
            changed = False
            for name, func in self.module.functions.items():
                new_reads: SymSet = set()
                new_writes: SymSet = set()
                for instr in func.instructions():
                    if isinstance(instr, Load):
                        new_reads.add(self._canon(func, instr.sym))
                    elif isinstance(instr, Store):
                        new_writes.add(self._canon(func, instr.sym))
                    elif isinstance(instr, Call) and not instr.pure:
                        if instr.callee in self.module.functions:
                            new_reads |= self.reads[instr.callee]
                            new_writes |= self.writes[instr.callee]
                        else:
                            # Unknown external/intrinsic call.
                            new_reads.add(None)
                            new_writes.add(None)
                if new_reads - self.reads[name] or new_writes - self.writes[name]:
                    self.reads[name] |= new_reads
                    self.writes[name] |= new_writes
                    changed = True

    # -- queries -------------------------------------------------------------

    def call_reads(self, call: Call) -> bool:
        if call.pure:
            return False
        if call.callee in self.module.functions:
            return bool(self.reads[call.callee])
        return True

    def call_writes(self, call: Call) -> bool:
        if call.pure:
            return False
        if call.callee in self.module.functions:
            return bool(self.writes[call.callee])
        return True

    def _node_syms(self, func: Function, instr: Instr) -> SymSet:
        """Canonical symbols ``instr`` may access (reads or writes)."""
        if isinstance(instr, Call):
            if instr.pure:
                return set()
            if instr.callee in self.module.functions:
                return self.reads[instr.callee] | self.writes[instr.callee]
            return {None}
        raw = alias_mod.access_syms(instr)
        return {self._canon(func, sym) for sym in raw}

    def _escapes(self, canonical: Optional[str]) -> bool:
        if canonical is None:
            return True
        if "." in canonical:
            func_name, sym = canonical.split(".", 1)
            func = self.module.functions.get(func_name)
            decl = func.arrays.get(sym) if func is not None else None
        else:
            decl = self.module.globals.get(canonical)
        return decl is None or decl.escapes

    def may_alias(self, func: Function, a: Instr, b: Instr) -> bool:
        """Alias query using call summaries where available."""
        syms_a = self._node_syms(func, a)
        syms_b = self._node_syms(func, b)
        if not syms_a or not syms_b:
            return False
        if any(self._escapes(s) for s in syms_a) or any(
            self._escapes(s) for s in syms_b
        ):
            return True
        if not (syms_a & syms_b):
            return False
        if (
            isinstance(a, (Load, Store))
            and isinstance(b, (Load, Store))
            and a.base == b.base
            and isinstance(a.offset, Const)
            and isinstance(b.offset, Const)
        ):
            return a.offset.value == b.offset.value
        return True
