"""Inner-loop summary nodes.

When pass 1 evaluates an *outer* loop of a nest as an SPT candidate
(paper §3.2 evaluates "each nested level of a loop nest"), the inner
loops in its body are collapsed into opaque summary nodes so the body's
dependence graph stays acyclic:

* the summary's ``cost`` is the inner loop's static body size times its
  (profiled or assumed) trip count;
* it *uses* every live-in register and *defines* every register that
  escapes the inner loop;
* it reads/writes memory if anything inside does, with the union of the
  accessed symbols for alias queries.

Summary nodes are never moved into the pre-fork region in practice:
their cost makes any closure containing them blow the pre-fork size
threshold immediately.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.analysis.loops import Loop
from repro.ir.function import Function
from repro.ir.instr import Call, Instr, Load, Phi, Store
from repro.ir.values import Value, Var

#: Trip count assumed for inner loops with no profile data.
DEFAULT_INNER_TRIP = 10.0


class LoopSummary(Instr):
    """An inner loop collapsed to a single dependence-graph node."""

    opcode = "loop_summary"

    def __init__(self, loop: Loop, func: Function, trip_count: float):
        super().__init__()
        self.loop = loop
        self.trip_count = trip_count
        self.defs: List[Var] = []
        self._uses: List[Var] = []
        self._reads_memory = False
        self._writes_memory = False
        #: Symbols the inner loop may access; ``None`` in the set marks
        #: an unknown access (raw pointer or impure call).
        self.syms: Set[Optional[str]] = set()
        self._static_size = 0.0
        self._collect(func)

    def _collect(self, func: Function) -> None:
        inner_defs: Set[Var] = set()
        inner_instrs: List[Instr] = []
        for blk in self.loop.blocks(func):
            for instr in blk.instrs:
                inner_instrs.append(instr)
                if instr.dest is not None:
                    inner_defs.add(instr.dest)
                self._static_size += instr.cost

        for instr in inner_instrs:
            if instr.reads_memory:
                self._reads_memory = True
            if instr.writes_memory:
                self._writes_memory = True
            if isinstance(instr, (Load, Store)):
                self.syms.add(instr.sym)
            elif isinstance(instr, Call) and not instr.pure:
                self.syms.add(None)
            for value in instr.uses():
                if isinstance(value, Var) and value not in inner_defs:
                    self._uses.append(value)

        self.defs = sorted(inner_defs, key=lambda v: v.name)
        # Deduplicate live-ins, preserving order.
        seen: Set[Var] = set()
        unique: List[Var] = []
        for var in self._uses:
            if var not in seen:
                seen.add(var)
                unique.append(var)
        self._uses = unique

    # -- Instr interface --------------------------------------------------

    @property
    def dest(self) -> None:
        return None  # multiple defs; exposed via self.defs

    def uses(self) -> List[Value]:
        return list(self._uses)

    @property
    def cost(self) -> float:
        return self._static_size * max(self.trip_count, 1.0)

    @property
    def has_side_effects(self) -> bool:
        return True

    @property
    def reads_memory(self) -> bool:
        return self._reads_memory

    @property
    def writes_memory(self) -> bool:
        return self._writes_memory

    def contained_mem_instrs(self, func: Function) -> List[Instr]:
        """Memory-touching instructions inside the inner loop (used by
        the dependence profile to aggregate probabilities)."""
        result = []
        for blk in self.loop.blocks(func):
            for instr in blk.instrs:
                if instr.reads_memory or instr.writes_memory:
                    result.append(instr)
        return result

    def __repr__(self) -> str:
        return f"<loop_summary {self.loop.header} x{self.trip_count:.0f}>"
