"""Type-based memory disambiguation.

ORC's SPT framework relies on "static type-based memory disambiguation
analysis" (paper §7.3) as the baseline the dependence profiler refines.
Our equivalent reasons about *symbol sets*: every memory-touching node
(load, store, impure call, inner-loop summary) exposes the set of array
symbols it may access, with ``None`` marking an unknown access (raw
pointer arithmetic, escaped array, or impure call):

* nodes whose symbol sets are disjoint -- and fully known, and made of
  non-escaping arrays -- never alias;
* same-symbol accesses are disambiguated by constant offsets off the
  same base register when possible;
* anything involving an unknown may alias everything.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.ir.function import Function, Module
from repro.ir.instr import Call, Instr, Load, Store
from repro.ir.values import Const


def access_syms(instr: Instr) -> Set[Optional[str]]:
    """Symbols ``instr`` may access; ``None`` means unknown memory."""
    if isinstance(instr, (Load, Store)):
        return {instr.sym}
    if isinstance(instr, Call):
        if instr.pure:
            return set()
        return {None}
    syms = getattr(instr, "syms", None)
    if syms is not None:  # LoopSummary and other aggregate nodes
        return set(syms)
    return {None} if (instr.reads_memory or instr.writes_memory) else set()


def _escapes(module: Module, func: Function, sym: Optional[str]) -> bool:
    if sym is None:
        return True
    decl = module.lookup_array(func, sym)
    if decl is None:
        return True
    return decl.escapes


def may_alias(module: Module, func: Function, a: Instr, b: Instr) -> bool:
    """Whether memory nodes ``a`` and ``b`` may touch the same location."""
    syms_a = access_syms(a)
    syms_b = access_syms(b)
    if not syms_a or not syms_b:
        return False

    unknown_a = any(_escapes(module, func, s) for s in syms_a)
    unknown_b = any(_escapes(module, func, s) for s in syms_b)
    if unknown_a or unknown_b:
        return True
    if not (syms_a & syms_b):
        return False

    # Same symbol: try constant-offset disambiguation on plain accesses.
    if (
        isinstance(a, (Load, Store))
        and isinstance(b, (Load, Store))
        and a.base == b.base
        and isinstance(a.offset, Const)
        and isinstance(b.offset, Const)
    ):
        return a.offset.value == b.offset.value
    return True


def same_location(a: Instr, b: Instr) -> bool:
    """Whether two memory ops provably access the *same* location
    (same symbol, same base register, identical offset operand)."""
    if not isinstance(a, (Load, Store)) or not isinstance(b, (Load, Store)):
        return False
    return (
        a.sym is not None
        and a.sym == b.sym
        and a.base == b.base
        and a.offset == b.offset
    )
