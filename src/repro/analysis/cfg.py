"""Control-flow graph utilities over :class:`~repro.ir.function.Function`.

The IR stores control flow implicitly in block terminators; this module
derives the explicit graph plus the orderings (reverse postorder) that
the dominator and loop analyses need.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.ir.block import Block
from repro.ir.function import Function
from repro.ir.instr import Branch, Jump, Phi

Edge = Tuple[str, str]


class CFG:
    """An explicit CFG snapshot of a function.

    The snapshot does not auto-update; rebuild after mutating control
    flow (`CFG.build(func)` is cheap).
    """

    def __init__(
        self,
        func: Function,
        succs: Dict[str, List[str]],
        preds: Dict[str, List[str]],
    ):
        self.func = func
        self.succs = succs
        self.preds = preds

    @classmethod
    def build(cls, func: Function) -> "CFG":
        succs: Dict[str, List[str]] = {blk.label: [] for blk in func.blocks}
        preds: Dict[str, List[str]] = {blk.label: [] for blk in func.blocks}
        for blk in func.blocks:
            for target in blk.successors():
                succs[blk.label].append(target)
                preds[target].append(blk.label)
        return cls(func, succs, preds)

    # -- orderings -----------------------------------------------------

    def reverse_postorder(self) -> List[str]:
        """Block labels in reverse postorder from the entry."""
        visited: Set[str] = set()
        order: List[str] = []

        def visit(label: str) -> None:
            # Iterative DFS to avoid recursion limits on long chains.
            stack: List[Tuple[str, int]] = [(label, 0)]
            visited.add(label)
            while stack:
                current, index = stack[-1]
                succs = self.succs[current]
                if index < len(succs):
                    stack[-1] = (current, index + 1)
                    nxt = succs[index]
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(current)
                    stack.pop()

        visit(self.func.entry.label)
        order.reverse()
        return order

    def reachable(self) -> Set[str]:
        """Labels reachable from the entry block."""
        return set(self.reverse_postorder())

    def edges(self) -> List[Edge]:
        return [(src, dst) for src, targets in self.succs.items() for dst in targets]

    # -- edge classification --------------------------------------------

    def back_edges(self) -> List[Edge]:
        """Edges ``u -> v`` where ``v`` dominates ``u`` (natural back edges)."""
        from repro.analysis.dominators import DominatorTree

        domtree = DominatorTree.build(self.func, cfg=self)
        result = []
        for src, dst in self.edges():
            if domtree.dominates(dst, src):
                result.append((src, dst))
        return result


def split_edge(func: Function, src_label: str, dst_label: str, label_hint: str = None) -> Block:
    """Insert a fresh block on the edge ``src -> dst``.

    Updates the source terminator and the destination's phi incomings.
    Returns the new block (already terminated with a jump to ``dst``).
    """
    src = func.block(src_label)
    dst = func.block(dst_label)
    new_label = func.fresh_label(label_hint or f"{src_label}_{dst_label}")
    # Insert the new block right before the destination to keep a
    # roughly topological textual order.
    new_block = Block(new_label)
    new_block.append(Jump(dst_label))
    dst_index = func.blocks.index(dst)
    func.blocks.insert(dst_index, new_block)

    term = src.terminator
    if isinstance(term, Jump):
        if term.target != dst_label:
            raise ValueError(f"{src_label} does not jump to {dst_label}")
        term.target = new_label
    elif isinstance(term, Branch):
        hit = False
        if term.iftrue == dst_label:
            term.iftrue = new_label
            hit = True
        if term.iffalse == dst_label:
            term.iffalse = new_label
            hit = True
        if not hit:
            raise ValueError(f"{src_label} does not branch to {dst_label}")
    else:
        raise ValueError(f"{src_label} has no edge to redirect")

    for phi in dst.phis():
        if src_label in phi.incomings:
            phi.incomings[new_label] = phi.incomings.pop(src_label)
    return new_block


def retarget_phis(block: Block, old_pred: str, new_pred: str) -> None:
    """Rename a predecessor label in all of ``block``'s phi nodes."""
    for phi in block.phis():
        if old_pred in phi.incomings:
            phi.incomings[new_pred] = phi.incomings.pop(old_pred)
