"""Post-dominators and control dependence over a loop-body sub-CFG.

Control dependence matters twice in the SPT framework:

* the *legality closure*: moving a statement into the pre-fork region
  drags along the branch conditions it is control-dependent on (paper
  Figure 12 replicates ``if (x<y)`` into the pre-fork region);
* the *pre-fork CFG simplification*: duplicated branches guarding no
  moved statement are elided.

The computation is Ferrante-Ottenstein-Warren on the body sub-CFG, with
a virtual exit node collecting the latch->header edge and any loop-exit
edges so post-dominance is well-defined.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.loops import Loop
from repro.ir.function import Function

_VIRTUAL_EXIT = "$exit"


class BodyControlDeps:
    """Control dependences among the blocks of one loop body."""

    def __init__(self, deps: Dict[str, Set[Tuple[str, str]]]):
        #: label -> set of (branch_block, taken_successor) pairs that the
        #: label's execution depends on.
        self.deps = deps

    def controlling_branches(self, label: str) -> List[str]:
        """Blocks whose branch decides whether ``label`` executes.

        Sorted: callers iterate this while building dependence edges,
        and set order would vary per process (PYTHONHASHSEED), making
        the same seed mean a different analysis in every run.
        """
        return sorted({branch for branch, _ in self.deps.get(label, ())})

    def is_conditional(self, label: str) -> bool:
        """Whether ``label`` executes only on some iterations."""
        return bool(self.deps.get(label))


def _postdominators(
    nodes: List[str], succs: Dict[str, List[str]], exit_node: str
) -> Dict[str, Optional[str]]:
    """Immediate post-dominators via the CHK algorithm on the reverse graph."""
    preds: Dict[str, List[str]] = {n: [] for n in nodes}
    for src, targets in succs.items():
        for dst in targets:
            preds[dst].append(src)

    # Reverse postorder of the reversed graph, starting from the exit.
    visited: Set[str] = set()
    order: List[str] = []
    stack: List[Tuple[str, int]] = [(exit_node, 0)]
    visited.add(exit_node)
    while stack:
        current, index = stack[-1]
        nxts = preds[current]
        if index < len(nxts):
            stack[-1] = (current, index + 1)
            nxt = nxts[index]
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, 0))
        else:
            order.append(current)
            stack.pop()
    order.reverse()
    order_index = {label: i for i, label in enumerate(order)}

    ipdom: Dict[str, Optional[str]] = {n: None for n in nodes}
    ipdom[exit_node] = exit_node

    def intersect(a: str, b: str) -> str:
        while a != b:
            while order_index[a] > order_index[b]:
                a = ipdom[a]
            while order_index[b] > order_index[a]:
                b = ipdom[b]
        return a

    changed = True
    while changed:
        changed = False
        for label in order:
            if label == exit_node:
                continue
            known = [s for s in succs[label] if ipdom.get(s) is not None]
            if not known:
                continue
            new = known[0]
            for succ in known[1:]:
                new = intersect(succ, new)
            if ipdom[label] != new:
                ipdom[label] = new
                changed = True
    ipdom[exit_node] = None
    return ipdom


def body_subgraph(
    func: Function, loop: Loop, cfg: CFG = None
) -> Tuple[List[str], Dict[str, List[str]]]:
    """The loop-body CFG with a virtual exit.

    Edges back to the header (from latches) and edges leaving the loop
    both retarget to the virtual exit; the header's in-loop successors
    are kept so the body is rooted at the header.
    """
    cfg = cfg or CFG.build(func)
    nodes = sorted(loop.body) + [_VIRTUAL_EXIT]
    succs: Dict[str, List[str]] = {n: [] for n in nodes}
    for label in loop.body:
        for succ in cfg.succs[label]:
            if succ == loop.header or succ not in loop.body:
                succs[label].append(_VIRTUAL_EXIT)
            else:
                succs[label].append(succ)
    return nodes, succs


def compute_control_deps(func: Function, loop: Loop, cfg: CFG = None) -> BodyControlDeps:
    """Control dependences of every body block (FOW via post-dominators)."""
    nodes, succs = body_subgraph(func, loop, cfg)
    ipdom = _postdominators(nodes, succs, _VIRTUAL_EXIT)

    deps: Dict[str, Set[Tuple[str, str]]] = {n: set() for n in nodes}
    for branch_label in loop.body:
        targets = succs[branch_label]
        if len(set(targets)) < 2:
            continue
        for taken in targets:
            if taken == _VIRTUAL_EXIT:
                continue
            # Walk the post-dominator tree from the taken successor up to
            # (but not including) the branch's immediate post-dominator.
            runner: Optional[str] = taken
            stop = ipdom.get(branch_label)
            while runner is not None and runner != stop:
                deps[runner].add((branch_label, taken))
                runner = ipdom.get(runner)
    deps.pop(_VIRTUAL_EXIT, None)
    return BodyControlDeps(deps)


def immediate_postdominators(
    func: Function, loop: Loop, cfg: CFG = None
) -> Dict[str, Optional[str]]:
    """Immediate post-dominator of each body block (virtual exit as None)."""
    nodes, succs = body_subgraph(func, loop, cfg)
    ipdom = _postdominators(nodes, succs, _VIRTUAL_EXIT)
    return {
        label: (None if parent == _VIRTUAL_EXIT else parent)
        for label, parent in ipdom.items()
        if label != _VIRTUAL_EXIT
    }
