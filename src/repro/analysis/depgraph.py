"""The annotated loop data-dependence graph (paper §4.1).

For one loop body (in SSA form) we build a graph whose nodes are the
body's instructions (header phis included) and whose edges are:

* **register true** dependences from SSA def-use chains;
* **memory** dependences (true/anti/output) from the type-based alias
  analysis, optionally sharpened by a dependence profile;
* **control** dependences from branch blocks to the statements they
  guard (used for the legality closure and branch replication, not for
  misspeculation cost);
* **cross-iteration true** dependences: register values flowing around
  the back edge into header phis, and may-alias store->load pairs
  across iterations.

Inner loops of the candidate's body are collapsed into
:class:`~repro.analysis.loopsummary.LoopSummary` nodes so the graph
stays a DAG and the paper's pass-1 evaluation of *every* nesting level
works uniformly.

Every true edge carries a probability ``prob``: for every N executions
of the source, ``prob*N`` executions of the destination read the value
the source produced (paper §4.1).  Static construction estimates it
from reaching probabilities; a dependence profile replaces the estimate
with measured frequencies (§7.3 -- "there was no change to the
underlying cost computation module": only this annotation step consumes
the profile).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.analysis import alias as alias_mod
from repro.analysis.cfg import CFG
from repro.analysis.controldep import compute_control_deps
from repro.analysis.loops import Loop
from repro.analysis.loopsummary import DEFAULT_INNER_TRIP, LoopSummary
from repro.ir.block import Block
from repro.ir.function import Function, Module
from repro.ir.instr import Branch, Call, Instr, Load, Phi, Store
from repro.ir.values import Const, Var

#: Default probability for a may-alias (but unproven) memory dependence,
#: used when no dependence profile is available.  Deliberately
#: conservative -- the paper's "basic compilation" (static deps only)
#: suffers exactly this conservatism.
STATIC_MEM_PROB = 0.5

#: Static probability of an impure call clobbering any given location.
STATIC_CALL_PROB = 0.5


class DepEdge:
    """One dependence edge ``src -> dst``."""

    __slots__ = ("src", "dst", "kind", "cross", "prob", "carrier", "var")

    def __init__(
        self,
        src: Instr,
        dst: Instr,
        kind: str,
        cross: bool,
        prob: float,
        carrier: str,
        var: Optional[Var] = None,
    ):
        self.src = src
        self.dst = dst
        #: "true" | "anti" | "output" | "control"
        self.kind = kind
        #: Whether the dependence crosses the loop back edge.
        self.cross = cross
        #: Realization probability (paper §4.1).
        self.prob = prob
        #: "reg" | "mem" | "ctrl"
        self.carrier = carrier
        #: Register carrying the value (register dependences only).
        self.var = var

    def __repr__(self) -> str:
        span = "cross" if self.cross else "intra"
        return (
            f"DepEdge({self.src!r} -> {self.dst!r}, {self.kind}/{span}, "
            f"p={self.prob:.2f})"
        )


class StmtInfo:
    """Placement metadata for one loop-body node."""

    __slots__ = ("instr", "block", "index", "order", "reach")

    def __init__(self, instr: Instr, block: str, index: int, order: int, reach: float):
        self.instr = instr
        self.block = block
        self.index = index
        #: Global topological position within the iteration.
        self.order = order
        #: Probability the statement executes in an iteration.
        self.reach = reach


class LoopDepGraph:
    """Annotated dependence graph of one loop body."""

    def __init__(self, module: Module, func: Function, loop: Loop):
        self.module = module
        self.func = func
        self.loop = loop
        self.edges: List[DepEdge] = []
        #: instr -> StmtInfo for every body node.
        self.info: Dict[Instr, StmtInfo] = {}
        #: Inner-loop summary nodes, by child header label.
        self.summaries: Dict[str, LoopSummary] = {}
        #: Outgoing/incoming adjacency over *all* edge kinds.
        self.out_edges: Dict[Instr, List[DepEdge]] = {}
        self.in_edges: Dict[Instr, List[DepEdge]] = {}

    # -- queries -------------------------------------------------------

    @property
    def nodes(self) -> List[Instr]:
        return [
            info.instr
            for info in sorted(self.info.values(), key=lambda s: s.order)
        ]

    def reach(self, instr: Instr) -> float:
        return self.info[instr].reach

    def order(self, instr: Instr) -> int:
        return self.info[instr].order

    def cross_true_edges(self) -> List[DepEdge]:
        return [e for e in self.edges if e.cross and e.kind == "true"]

    def intra_edges(self, kinds: Iterable[str] = ("true",)) -> List[DepEdge]:
        kind_set = set(kinds)
        return [e for e in self.edges if not e.cross and e.kind in kind_set]

    def intra_preds(self, instr: Instr, kinds: Iterable[str]) -> List[DepEdge]:
        kind_set = set(kinds)
        return [
            e
            for e in self.in_edges.get(instr, ())
            if not e.cross and e.kind in kind_set
        ]

    def intra_succs(self, instr: Instr, kinds: Iterable[str]) -> List[DepEdge]:
        kind_set = set(kinds)
        return [
            e
            for e in self.out_edges.get(instr, ())
            if not e.cross and e.kind in kind_set
        ]

    def _add_edge(self, edge: DepEdge) -> None:
        self.edges.append(edge)
        self.out_edges.setdefault(edge.src, []).append(edge)
        self.in_edges.setdefault(edge.dst, []).append(edge)


Unit = Union[Block, Loop]


def _contracted_units(
    func: Function, loop: Loop, cfg: CFG
) -> Tuple[List[Unit], Dict[str, Loop], Dict[str, List[str]]]:
    """The loop body with immediate inner loops contracted to one unit.

    Returns (units in topological order, block->child map, contracted
    successor map keyed by representative label).
    """
    child_of: Dict[str, Loop] = {}
    for child in loop.children:
        for label in child.body:
            child_of[label] = child

    def rep(label: str) -> Optional[str]:
        """Representative label of the contracted node, or None if the
        label leaves the loop or returns to the header."""
        if label == loop.header or label not in loop.body:
            return None
        child = child_of.get(label)
        return child.header if child is not None else label

    succs: Dict[str, Set[str]] = {}
    reps: Dict[str, Unit] = {}
    block_map = func.block_map()

    def unit_for(rep_label: str) -> Unit:
        child = child_of.get(rep_label)
        return child if child is not None else block_map[rep_label]

    # Seed with the header itself (always a plain block unit).
    reps[loop.header] = block_map[loop.header]
    succs[loop.header] = set()

    worklist = [loop.header]
    while worklist:
        current = worklist.pop()
        if current == loop.header:
            out_labels = cfg.succs[current]
        else:
            unit = unit_for(current)
            if isinstance(unit, Loop):
                out_labels = [dst for _, dst in unit.exit_edges(cfg)]
            else:
                out_labels = cfg.succs[current]
        for target in out_labels:
            target_rep = rep(target)
            if target_rep is None or target_rep == current:
                continue
            succs.setdefault(current, set()).add(target_rep)
            if target_rep not in reps:
                reps[target_rep] = unit_for(target_rep)
                succs.setdefault(target_rep, set())
                worklist.append(target_rep)

    # Topological order via DFS postorder (the contracted graph is a DAG).
    visited: Set[str] = set()
    post: List[str] = []

    def visit(label: str) -> None:
        stack = [(label, iter(sorted(succs.get(label, ()))))]
        visited.add(label)
        while stack:
            current, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, iter(sorted(succs.get(nxt, ())))))
                    advanced = True
                    break
            if not advanced:
                post.append(current)
                stack.pop()

    visit(loop.header)
    ordered = [reps[label] for label in reversed(post)]
    succ_lists = {label: sorted(targets) for label, targets in succs.items()}
    return ordered, child_of, succ_lists


def _static_edge_prob(func: Function, loop: Loop):
    """Static branch probabilities: even split, except that edges
    staying inside the loop win over loop exits (an exit is taken at
    most once per loop invocation, so per-iteration its probability is
    ~1/trip-count; we round it to 0)."""

    def prob(src: str, dst: str) -> float:
        if not func.has_block(src):
            return 1.0
        term = func.block(src).terminator
        if isinstance(term, Branch):
            targets = set(term.targets())
            if dst not in targets:
                return 0.0
            in_loop = {t for t in targets if t in loop.body}
            if dst in in_loop and in_loop != targets:
                return 1.0 if len(in_loop) == 1 else 1.0 / len(in_loop)
            if dst not in in_loop and in_loop:
                return 0.0
            return 1.0 / len(targets)
        return 1.0

    return prob


def _unit_label(unit: Unit) -> str:
    return unit.header if isinstance(unit, Loop) else unit.label


def _contracted_edge_prob(child_of: Dict[str, Loop], base_prob):
    """Edge probability between contracted units.

    An edge out of an inner-loop unit is the inner loop's exit edge; per
    outer iteration the inner loop eventually exits, so such edges get
    probability 1 (split evenly over multiple exits).
    """

    def prob(src_rep: str, dst_rep: str) -> float:
        if src_rep in child_of:
            return 1.0
        return base_prob(src_rep, dst_rep)

    return prob


def _reach_probabilities(
    loop: Loop,
    units: List[Unit],
    succ_lists: Dict[str, List[str]],
    edge_prob,
) -> Dict[str, float]:
    """Per-unit probability of executing in one iteration."""
    preds: Dict[str, List[str]] = {}
    for src, targets in succ_lists.items():
        for dst in targets:
            preds.setdefault(dst, []).append(src)

    reach: Dict[str, float] = {loop.header: 1.0}
    for unit in units:
        label = _unit_label(unit)
        if label == loop.header:
            continue
        total = 0.0
        for pred in preds.get(label, ()):
            total += reach.get(pred, 0.0) * edge_prob(pred, label)
        reach[label] = min(total, 1.0)
    return reach


def build_dep_graph(
    module: Module,
    func: Function,
    loop: Loop,
    edge_profile=None,
    dep_profile=None,
    static_mem_prob: float = STATIC_MEM_PROB,
    static_call_prob: float = STATIC_CALL_PROB,
    modref=None,
) -> LoopDepGraph:
    """Build the annotated dependence graph for ``loop``.

    ``edge_profile`` (optional) supplies branch probabilities and inner
    trip counts; ``dep_profile`` is a
    :class:`~repro.profiling.dep_profile.LoopDepView` for this loop;
    ``modref`` (optional) supplies interprocedural call summaries used by
    the anticipated compilation.
    """
    graph = LoopDepGraph(module, func, loop)
    cfg = CFG.build(func)
    units, child_of, succ_lists = _contracted_units(func, loop, cfg)

    if edge_profile is not None:
        def raw_prob(src, dst):
            return edge_profile.branch_prob(func.name, src, dst)
    else:
        raw_prob = _static_edge_prob(func, loop)

    def base_prob(src, dst):
        # Pass-inserted branch hints (e.g. SVP's misprediction rate)
        # override both static estimates and stale profiles.
        if func.has_block(src):
            hint = func.block(src).annotations.get("branch_hint")
            if hint is not None and dst in hint:
                return hint[dst]
        return raw_prob(src, dst)

    edge_prob = _contracted_edge_prob(child_of, base_prob)
    unit_reach = _reach_probabilities(loop, units, succ_lists, edge_prob)

    # -- enumerate nodes ------------------------------------------------
    order = 0
    defs: Dict[Var, Instr] = {}
    for unit in units:
        label = _unit_label(unit)
        reach = unit_reach.get(label, 0.0)
        if isinstance(unit, Loop):
            trip = DEFAULT_INNER_TRIP
            if edge_profile is not None:
                measured = edge_profile.trip_count(func, unit, cfg)
                if measured > 0:
                    trip = measured
            summary = LoopSummary(unit, func, trip)
            graph.summaries[unit.header] = summary
            graph.info[summary] = StmtInfo(summary, label, -1, order, reach)
            order += 1
            for var in summary.defs:
                defs[var] = summary
        else:
            for index, instr in enumerate(unit.instrs):
                graph.info[instr] = StmtInfo(instr, label, index, order, reach)
                order += 1
                if instr.dest is not None:
                    defs[instr.dest] = instr

    header_block = func.block(loop.header)
    header_phis = list(header_block.phis())
    header_phi_ids = set(map(id, header_phis))
    latch_labels = set(loop.latches(cfg))

    # -- register true dependences --------------------------------------
    for info in list(graph.info.values()):
        instr = info.instr
        if id(instr) in header_phi_ids:
            continue  # handled below as cross-iteration carriers
        if isinstance(instr, Phi):
            # The edge probability is the chance the phi *selects* this
            # incoming: P(control arrived via pred | phi block executes).
            for pred_label, value in instr.incomings.items():
                if not isinstance(value, Var):
                    continue
                src = defs.get(value)
                if src is None or src not in graph.info or src is instr:
                    continue
                pred_reach = unit_reach.get(pred_label, info.reach)
                flow = pred_reach * edge_prob(pred_label, info.block)
                if info.reach > 0:
                    flow /= info.reach
                prob = max(0.0, min(1.0, flow))
                graph._add_edge(
                    DepEdge(src, instr, "true", False, prob, "reg", value)
                )
            continue
        for value in instr.uses():
            if not isinstance(value, Var):
                continue
            src = defs.get(value)
            if src is None or src not in graph.info or src is instr:
                continue  # loop-invariant input (or internal to a summary)
            src_info = graph.info[src]
            prob = _conditional_prob(src_info.reach, info.reach)
            graph._add_edge(DepEdge(src, instr, "true", False, prob, "reg", value))

    # -- cross-iteration register dependences ---------------------------
    for phi in header_phis:
        for pred_label, value in phi.incomings.items():
            if pred_label not in latch_labels or not isinstance(value, Var):
                continue
            src = defs.get(value)
            if src is None or src not in graph.info:
                continue
            if id(src) in header_phi_ids:
                # The carried value is the unmodified iteration-start
                # value; nothing modifies it, so no violation.
                continue
            graph._add_edge(DepEdge(src, phi, "true", True, 1.0, "reg", value))

    # -- memory dependences ----------------------------------------------
    mem_ops = [
        info.instr
        for info in sorted(graph.info.values(), key=lambda s: s.order)
        if _touches_memory(info.instr, modref)
    ]

    def measured_prob(writer: Instr, reader: Instr, cross: bool) -> Optional[float]:
        if dep_profile is None:
            return None
        writers = _concrete_mem_instrs(writer, func)
        readers = _concrete_mem_instrs(reader, func)
        return dep_profile.mem_prob_agg(writers, readers, cross)

    def offset_invariant(node: Instr) -> bool:
        """Whether a memory op's address is the same every iteration."""
        offset = getattr(node, "offset", None)
        if isinstance(offset, Const):
            return True
        if isinstance(offset, Var):
            # Defined outside the loop body => loop-invariant.
            for info in graph.info:
                if getattr(info, "dest", None) == offset:
                    return False
            return True
        return False

    def mem_prob(writer: Instr, reader: Instr, cross: bool) -> float:
        measured = measured_prob(writer, reader, cross)
        if measured is not None:
            return measured
        if alias_mod.same_location(writer, reader):
            # "Same offset register" only means same address across
            # iterations when the offset does not vary with the
            # iteration.
            if not cross or offset_invariant(writer):
                return 1.0
        if isinstance(writer, Call) or isinstance(reader, Call):
            return static_call_prob
        return static_mem_prob

    def node_may_alias(a: Instr, b: Instr) -> bool:
        if modref is not None:
            return modref.may_alias(func, a, b)
        return alias_mod.may_alias(module, func, a, b)

    for i, first in enumerate(mem_ops):
        for second in mem_ops[i:]:
            if not node_may_alias(first, second):
                continue
            intra = graph.order(first) < graph.order(second)
            first_writes = _writes_memory(first, modref)
            first_reads = _reads_memory(first, modref)
            second_writes = _writes_memory(second, modref)
            second_reads = _reads_memory(second, modref)

            if intra:
                if first_writes and second_reads:
                    prob = mem_prob(first, second, cross=False)
                    if prob > 0:
                        graph._add_edge(
                            DepEdge(first, second, "true", False, prob, "mem")
                        )
                if first_reads and second_writes:
                    graph._add_edge(DepEdge(first, second, "anti", False, 1.0, "mem"))
                if first_writes and second_writes:
                    graph._add_edge(
                        DepEdge(first, second, "output", False, 1.0, "mem")
                    )

            if first_writes and second_reads:
                prob = mem_prob(first, second, cross=True)
                if prob > 0:
                    graph._add_edge(DepEdge(first, second, "true", True, prob, "mem"))
            if second is not first and second_writes and first_reads:
                prob = mem_prob(second, first, cross=True)
                if prob > 0:
                    graph._add_edge(DepEdge(second, first, "true", True, prob, "mem"))

    # -- control dependences ----------------------------------------------
    ctrl = compute_control_deps(func, loop, cfg)
    block_map = func.block_map()
    retained_labels = {
        _unit_label(u) for u in units if not isinstance(u, Loop)
    }
    for info in list(graph.info.values()):
        for branch_label in ctrl.controlling_branches(info.block):
            if branch_label == loop.header:
                # The pre-fork region sits after the header test, so the
                # header branch guards it naturally; no replication (and
                # hence no ordering constraint) is needed.
                continue
            if branch_label not in retained_labels:
                continue  # decision internal to a contracted inner loop
            branch_instr = block_map[branch_label].terminator
            if branch_instr is info.instr or branch_instr not in graph.info:
                continue
            graph._add_edge(
                DepEdge(branch_instr, info.instr, "control", False, 1.0, "ctrl")
            )

    return graph


def _touches_memory(instr: Instr, modref) -> bool:
    return _reads_memory(instr, modref) or _writes_memory(instr, modref)


def _reads_memory(instr: Instr, modref) -> bool:
    if modref is not None and isinstance(instr, Call):
        return modref.call_reads(instr)
    return instr.reads_memory


def _writes_memory(instr: Instr, modref) -> bool:
    if modref is not None and isinstance(instr, Call):
        return modref.call_writes(instr)
    return instr.writes_memory


def _concrete_mem_instrs(node: Instr, func: Function) -> List[Instr]:
    """Expand a summary node to the memory instructions it contains."""
    if isinstance(node, LoopSummary):
        return node.contained_mem_instrs(func)
    return [node]


def _conditional_prob(src_reach: float, dst_reach: float) -> float:
    """P(dst executes | src executed), approximated from reach ratios."""
    if src_reach <= 0.0:
        return 0.0
    return max(0.0, min(1.0, dst_reach / src_reach))
