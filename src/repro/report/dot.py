"""Graphviz (dot) dumps of the framework's graphs.

Handy for inspecting what the compiler sees:

* :func:`cfg_to_dot` -- a function's control-flow graph;
* :func:`depgraph_to_dot` -- one loop's annotated dependence graph
  (cross-iteration edges dashed, like the paper's Figure 5);
* :func:`costgraph_to_dot` -- the cost graph with pseudo nodes
  (the paper's Figure 6);
* :func:`vcdep_to_dot` -- the violation-candidate dependence graph
  (the paper's Figure 7).

Render with ``dot -Tsvg out.dot -o out.svg``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.depgraph import LoopDepGraph
from repro.core.costgraph import CostGraph, PseudoNode
from repro.core.vcdep import VCDepGraph
from repro.ir.function import Function
from repro.ir.instr import Instr
from repro.ir.printer import format_instr


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def _instr_label(instr: Instr, limit: int = 40) -> str:
    try:
        text = format_instr(instr)
    except TypeError:
        text = repr(instr)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def cfg_to_dot(func: Function) -> str:
    """The function's CFG; each node lists its instructions."""
    lines: List[str] = [f"digraph {_quote('cfg_' + func.name)} {{"]
    lines.append("  node [shape=box, fontname=monospace, fontsize=9];")
    for block in func.blocks:
        body = "\\l".join(
            [block.label + ":"] + [_instr_label(i, 60) for i in block.instrs]
        )
        lines.append(f"  {_quote(block.label)} [label={_quote(body + chr(92) + 'l')}];")
    for block in func.blocks:
        for succ in block.successors():
            lines.append(f"  {_quote(block.label)} -> {_quote(succ)};")
    lines.append("}")
    return "\n".join(lines)


def depgraph_to_dot(graph: LoopDepGraph, kinds=("true", "anti", "output")) -> str:
    """One loop's dependence graph.  Cross-iteration edges are dashed
    and red; anti/output edges dotted."""
    lines: List[str] = [f"digraph {_quote('dep_' + graph.loop.header)} {{"]
    lines.append("  node [shape=box, fontname=monospace, fontsize=9];")
    node_ids: Dict[int, str] = {}
    for index, instr in enumerate(graph.nodes):
        node_id = f"n{index}"
        node_ids[id(instr)] = node_id
        label = _instr_label(instr)
        lines.append(f"  {node_id} [label={_quote(label)}];")
    for edge in graph.edges:
        if edge.kind not in kinds:
            continue
        src = node_ids.get(id(edge.src))
        dst = node_ids.get(id(edge.dst))
        if src is None or dst is None:
            continue
        attrs = [f"label={_quote(f'{edge.prob:.2f}')}"]
        if edge.cross:
            attrs.append("style=dashed")
            attrs.append("color=red")
        elif edge.kind in ("anti", "output"):
            attrs.append("style=dotted")
        lines.append(f"  {src} -> {dst} [{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines)


def costgraph_to_dot(cg: CostGraph) -> str:
    """The cost graph: pseudo nodes as ellipses (D' in the paper),
    operation nodes as boxes annotated with their cost."""
    lines: List[str] = ['digraph costgraph {']
    lines.append("  node [fontname=monospace, fontsize=9];")
    ids: Dict[object, str] = {}
    for index, (key, pseudo) in enumerate(cg.pseudos.items()):
        node_id = f"p{index}"
        ids[pseudo] = node_id
        label = _node_key_label(key) + f"'\\nv0={pseudo.violation_prob:.2f}"
        lines.append(f"  {node_id} [shape=ellipse, label={_quote(label)}];")
    for index, key in enumerate(cg.topo_nodes):
        node_id = f"o{index}"
        ids[key] = node_id
        label = _node_key_label(key) + f"\\ncost={cg.costs[key]:.1f}"
        lines.append(f"  {node_id} [shape=box, label={_quote(label)}];")
    for dst, preds in cg.in_edges.items():
        dst_id = ids.get(dst)
        if dst_id is None:
            continue
        for pred, prob in preds:
            src_id = ids.get(pred)
            if src_id is None:
                continue
            lines.append(
                f"  {src_id} -> {dst_id} [label={_quote(f'{prob:.2f}')}];"
            )
    lines.append("}")
    return "\n".join(lines)


def vcdep_to_dot(vcdep: VCDepGraph) -> str:
    """The violation-candidate dependence graph (paper Figure 7)."""
    lines: List[str] = ["digraph vcdep {"]
    lines.append("  node [shape=box, fontname=monospace, fontsize=9];")
    for index, vc in enumerate(vcdep.candidates):
        label = _instr_label(vc.instr) + f"\\np={vc.violation_prob:.2f}"
        lines.append(f"  v{index} [label={_quote(label)}];")
    for index in range(len(vcdep)):
        for pred in sorted(vcdep.preds[index]):
            lines.append(f"  v{pred} -> v{index};")
    lines.append("}")
    return "\n".join(lines)


def _node_key_label(key) -> str:
    if isinstance(key, Instr):
        return _instr_label(key)
    return str(key)
