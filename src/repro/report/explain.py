"""Decision-provenance reports: why each loop was (not) selected.

Backs the ``repro explain`` CLI command.  For every loop candidate the
report reconstructs the §6.1 selection decision from recorded evidence:
the measured value and threshold of the failed criterion, the optimal
partition's cost breakdown per violation candidate, the pre-fork region
contents, the branch-and-bound pruning statistics, and any transform
failure.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import SptConfig
from repro.core.pipeline import CompilationResult
from repro.core.selection import (
    CATEGORY_VALID,
    LoopCandidate,
    estimated_benefit,
)
from repro.ir.printer import format_instr

__all__ = ["cache_probe_text", "explain_loop_text", "explain_text"]


def _describe_instr(instr) -> str:
    try:
        return format_instr(instr)
    except Exception:
        return repr(instr)


def explain_loop_text(
    candidate: LoopCandidate, config: SptConfig, verbose: bool = True
) -> str:
    """The provenance report for one loop candidate."""
    lines: List[str] = []
    verdict = "SELECTED" if candidate.selected else "rejected"
    lines.append(f"loop {candidate.key} — {candidate.category} ({verdict})")

    lines.append(
        f"  body size      {candidate.dynamic_body_size:10.2f} ops/iter"
        f"   (selectable range [{config.min_body_size}, "
        f"{config.max_body_size}])"
    )
    lines.append(
        f"  trip count     {candidate.trip_count:10.2f} iter/entry"
        f"   (minimum {config.min_trip_count:g})"
    )
    lines.append(
        f"  iterations     {candidate.total_iterations:10d} profiled"
    )
    if candidate.svp_applied:
        lines.append("  svp            applied (loop re-analyzed after SVP)")

    partition = candidate.partition
    if partition is not None and not partition.skipped_too_many_vcs:
        size = candidate.dynamic_body_size
        lines.append(
            f"  misspec cost   {partition.cost:10.4f}"
            f"   (threshold {config.cost_threshold(size):.4f}"
            f" = {config.cost_fraction:g} × body size)"
        )
        lines.append(
            f"  prefork size   {partition.prefork_size:10.2f}"
            f"   (threshold {config.prefork_size_threshold(size):.2f}"
            f" = {config.prefork_fraction:g} × body size)"
        )
        lines.append(
            "  search         "
            f"{partition.search_nodes} nodes, "
            f"{partition.evaluations} cost evaluations "
            f"({partition.cache_hit_rate:.0%} cache hits), "
            f"{partition.cost_node_visits} node visits"
        )
        lines.append(
            "  pruning        "
            f"{partition.pruned_size} subtrees cut by size bound, "
            f"{partition.pruned_bound} by cost lower bound"
        )
        if not partition.optimal:
            causes = []
            if partition.budget_exhausted:
                causes.append(
                    f"node budget ({config.max_search_nodes}) exhausted"
                )
            if partition.deadline_exhausted:
                causes.append(
                    f"anytime deadline ({config.search_deadline_ms:g} ms)"
                    " expired"
                )
            lines.append(
                "  optimality     best-so-far, NOT proven optimal: "
                + "; ".join(causes)
            )
        else:
            lines.append("  optimality     proven optimal (search completed)")
        if partition.vc_breakdown:
            lines.append(
                f"  violation candidates ({len(partition.vc_breakdown)}):"
            )
            for vc, in_prefork, marginal in partition.vc_breakdown:
                placement = "pre-fork " if in_prefork else "post-fork"
                impact = (
                    f"evicting costs +{marginal:.4f}"
                    if in_prefork
                    else f"admitting saves {marginal:.4f}"
                )
                lines.append(
                    f"    [{placement}] p_violate={vc.violation_prob:.3f}"
                    f"  {impact}   {_describe_instr(vc.instr)}"
                )
        if verbose and partition.prefork_stmts:
            lines.append(
                f"  prefork region ({len(partition.prefork_stmts)} statements):"
            )
            for instr in sorted(
                partition.prefork_stmts, key=lambda i: _describe_instr(i)
            ):
                lines.append(f"    {_describe_instr(instr)}")
    elif partition is not None:
        lines.append(
            f"  partition      skipped: {len(partition.candidates)} violation"
            f" candidates exceed the limit of"
            f" {config.max_violation_candidates} (§5.2)"
        )

    if candidate.category == CATEGORY_VALID or candidate.selected:
        benefit = estimated_benefit(candidate, config)
        lines.append(
            f"  est. benefit   {benefit:10.1f} cycles saved over the run"
        )
    if candidate.rejection is not None:
        lines.append(f"  rejection      {candidate.rejection}")
    if candidate.transform_error is not None:
        lines.append(f"  transform err  {candidate.transform_error}")
    if candidate.degradation is not None:
        lines.append(f"  degradation    {candidate.degradation}")
    verdict_line = (
        "selected as SPT loop and transformed"
        if candidate.selected
        else f"not selected ({candidate.category})"
    )
    lines.append(f"  verdict        {verdict_line}")
    return "\n".join(lines)


def explain_text(
    result: CompilationResult,
    config: SptConfig,
    loop: Optional[str] = None,
    verbose: bool = True,
) -> str:
    """Provenance reports for every candidate (or just ``loop``,
    given as ``func:header``)."""
    candidates = result.candidates
    if loop is not None:
        candidates = [c for c in candidates if c.key == loop]
        if not candidates:
            known = ", ".join(c.key for c in result.candidates) or "<none>"
            return f"no loop candidate {loop!r} (known: {known})"
    sections = [
        explain_loop_text(candidate, config, verbose=verbose)
        for candidate in candidates
    ]
    histogram = result.category_histogram()
    summary = ", ".join(
        f"{category}={count}"
        for category, count in histogram.items()
        if count
    )
    header = (
        f"{len(result.candidates)} loop candidates, "
        f"{len(result.selected)} selected  [{summary}]"
    )
    if result.degradations:
        degradation_lines = [
            f"{len(result.degradations)} contained degradation(s):"
        ] + [f"  {record}" for record in result.degradations]
        sections.append("\n".join(degradation_lines))
    if loop is None and result.trace_stats:
        sections.append(trace_stats_text(result.trace_stats))
    return "\n\n".join([header] + sections)


def trace_stats_text(trace_stats: dict) -> str:
    """Render the profiling run's hot-trace compilation statistics
    (``CompilationResult.trace_stats``): per-trace compile counts,
    guard-failure rates, and the fraction of dynamic ops that retired
    inside compiled traces."""
    traces = trace_stats.get("traces", {})
    executed = trace_stats.get("executed", 0)
    lines = [f"hot-trace compilation ({len(traces)} trace(s) in profiling run):"]
    on_trace = 0
    for key in sorted(traces):
        entry = traces[key]
        on_trace += entry["ops_on_trace"]
        shape = "cyclic" if entry["cyclic"] else "linear"
        lines.append(
            f"  {key:<28} {shape:<6} {len(entry['path'])} blocks"
            f"  compiles={entry['compiles']}"
            f"  passes={entry['passes']}"
            f"  guard-fail={entry['guard_failure_rate'] * 100:.1f}%"
            f"  ops={entry['ops_on_trace']}"
        )
    if executed:
        lines.append(
            f"  {on_trace}/{executed} dynamic ops"
            f" ({on_trace / executed * 100:.1f}%) retired on traces"
        )
    return "\n".join(lines)


def cache_probe_text(probe: dict) -> str:
    """Render a batch-cache probe (``repro explain --cache-dir``).

    ``probe`` is the dict :func:`repro.batch.worker.probe_cache`
    produces: whether this exact (program, config, workload) is warm in
    the persistent result cache, and how complete its per-loop records
    are."""
    lines = [f"result cache ({probe['cache_dir']}):"]
    lines.append(f"  program key    {probe['program_key'][:16]}…")
    if probe["program_hit"]:
        lines.append(
            f"  program entry  HIT ({probe['loops_present']}/"
            f"{probe['loops_total']} loop records present)"
        )
        if probe["loops_present"] < probe["loops_total"]:
            lines.append(
                "  note           incomplete loop records: the next batch"
                " run recomputes this program"
            )
        else:
            lines.append(
                "  note           a batch run would serve this result warm"
            )
    else:
        lines.append(
            "  program entry  MISS (a batch run would compile this"
            " program cold)"
        )
    return "\n".join(lines)
