"""Experiment drivers: regenerate every table and figure of the paper's
evaluation section (§8) from the workload suite.

The heavy part -- compiling and simulating all ten benchmarks under the
three compiler configurations -- is done once per process by
:func:`evaluate_suite` and cached; each ``table_*``/``figure_*``
function below just reshapes the cached measurements into the rows the
paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.benchsuite.programs import SUITE, Benchmark
from repro.benchsuite.runner import BenchmarkRun, run_benchmark
from repro.core.config import (
    SptConfig,
    anticipated_config,
    basic_config,
    best_config,
)
from repro.core.selection import ALL_CATEGORIES
from repro.report.tables import arithmetic_mean, format_table

#: The three compiler configurations of Figure 14.
CONFIGS: Dict[str, SptConfig] = {
    "basic": basic_config(),
    "best": best_config(),
    "anticipated": anticipated_config(),
}

#: Paper reference values (for side-by-side reporting).
PAPER_IPC = {
    "bzip2": 1.69,
    "crafty": 1.49,
    "gap": 1.30,
    "gcc": 1.33,
    "gzip": 1.77,
    "mcf": 0.44,
    "parser": 1.30,
    "twolf": 1.05,
    "vortex": 0.56,
    "vpr": 1.22,
}
PAPER_AVG_SPEEDUP = {"basic": 1.01, "best": 1.08, "anticipated": 1.156}

_CACHE: Dict[Tuple[str, str], BenchmarkRun] = {}


def evaluate(bench: Benchmark, config_name: str) -> BenchmarkRun:
    """Compile and simulate one benchmark under one configuration
    (memoized per process)."""
    key = (bench.name, config_name)
    if key not in _CACHE:
        _CACHE[key] = run_benchmark(bench, CONFIGS[config_name], config_name)
    return _CACHE[key]


def evaluate_suite(config_name: str) -> List[BenchmarkRun]:
    """All ten benchmarks under one configuration (memoized)."""
    return [evaluate(bench, config_name) for bench in SUITE]


# ---------------------------------------------------------------------------
# Table 1: IPC (excluding nops) of the non-SPT base reference.
# ---------------------------------------------------------------------------


def table1_rows() -> List[Tuple[str, float, float]]:
    rows = []
    for run in evaluate_suite("basic"):
        rows.append((run.name, run.base_ipc, PAPER_IPC[run.name]))
    return rows


def table1_text() -> str:
    from repro.report.charts import bar_chart

    rows = table1_rows()
    body = format_table(
        ["program", "IPC (measured)", "IPC (paper)"],
        rows,
        title="Table 1: IPC of the non-SPT base reference",
    )
    chart = bar_chart(
        [(name, measured) for name, measured, _ in rows],
        title="(measured IPC)",
        fmt="{:.2f}",
    )
    return body + "\n\n" + chart


# ---------------------------------------------------------------------------
# Figure 14: program speedups under basic / best / anticipated compilation.
# ---------------------------------------------------------------------------


def figure14_rows() -> List[Tuple[str, float, float, float]]:
    runs = {name: evaluate_suite(name) for name in CONFIGS}
    rows = []
    for index, bench in enumerate(SUITE):
        rows.append(
            (
                bench.name,
                runs["basic"][index].program_speedup,
                runs["best"][index].program_speedup,
                runs["anticipated"][index].program_speedup,
            )
        )
    rows.append(
        (
            "average",
            arithmetic_mean([r[1] for r in rows]),
            arithmetic_mean([r[2] for r in rows]),
            arithmetic_mean([r[3] for r in rows]),
        )
    )
    return rows


def figure14_text() -> str:
    from repro.report.charts import grouped_bar_chart

    rows = figure14_rows()
    body = format_table(
        ["program", "basic", "best", "anticipated"],
        rows,
        title="Figure 14: program speedup by compilation",
    )
    chart = grouped_bar_chart(
        [(name, values) for name, *values in rows],
        series=["basic", "best", "anticipated"],
        title="(bars show speedup over the 1.0 base)",
        baseline=1.0,
    )
    paper = (
        "paper averages: basic "
        f"{PAPER_AVG_SPEEDUP['basic']:.3f}, best "
        f"{PAPER_AVG_SPEEDUP['best']:.3f}, anticipated "
        f"{PAPER_AVG_SPEEDUP['anticipated']:.3f}"
    )
    return body + "\n\n" + chart + "\n" + paper


# ---------------------------------------------------------------------------
# Figure 15: breakdown of loops by transformability.
# ---------------------------------------------------------------------------


def figure15_rows(config_name: str = "best") -> List[Tuple[str, int, float]]:
    histogram: Dict[str, int] = {category: 0 for category in ALL_CATEGORIES}
    total = 0
    for run in evaluate_suite(config_name):
        for category, count in run.compilation.category_histogram().items():
            histogram[category] += count
            total += count
    rows = []
    for category in ALL_CATEGORIES:
        count = histogram[category]
        share = count / total if total else 0.0
        rows.append((category, count, share))
    return rows


def figure15_text(config_name: str = "best") -> str:
    return format_table(
        ["category", "loops", "fraction"],
        figure15_rows(config_name),
        title=f"Figure 15: loop breakdown ({config_name} compilation)",
    )


# ---------------------------------------------------------------------------
# Figure 16: runtime coverage of SPT loops and loop counts.
# ---------------------------------------------------------------------------


def figure16_rows(config_name: str = "best"):
    rows = []
    config = CONFIGS[config_name]
    for run in evaluate_suite(config_name):
        max_cov = run.max_loop_coverage(
            getattr(run, "_spt_loop_cycles", {}), config
        )
        rows.append((run.name, run.coverage, max_cov, run.spt_loop_count))
    rows.append(
        (
            "average",
            arithmetic_mean([r[1] for r in rows]),
            arithmetic_mean([r[2] for r in rows]),
            arithmetic_mean([float(r[3]) for r in rows]),
        )
    )
    return rows


def figure16_text(config_name: str = "best") -> str:
    body = format_table(
        ["program", "SPT coverage", "max loop coverage", "#SPT loops"],
        figure16_rows(config_name),
        title=f"Figure 16: runtime coverage of SPT loops ({config_name})",
    )
    return body + "\npaper: ~30% SPT coverage of 68% max; ~30 loops/benchmark"


# ---------------------------------------------------------------------------
# Figure 17: SPT loop body size and pre-fork characteristics.
# ---------------------------------------------------------------------------


def figure17_rows(config_name: str = "best"):
    rows = []
    for run in evaluate_suite(config_name):
        if not run.loops:
            rows.append((run.name, 0.0, 0.0, 0.0))
            continue
        body = arithmetic_mean([lr.stats.avg_body_ops for lr in run.loops])
        pre = arithmetic_mean([lr.stats.prefork_fraction for lr in run.loops])
        static_pre = arithmetic_mean(
            [lr.prefork_size / lr.body_size for lr in run.loops if lr.body_size]
        )
        rows.append((run.name, body, pre, static_pre))
    return rows


def figure17_text(config_name: str = "best") -> str:
    body = format_table(
        ["program", "dyn ops/iter", "pre-fork cycle frac", "pre-fork size frac"],
        figure17_rows(config_name),
        title=f"Figure 17: SPT loop body and pre-fork size ({config_name})",
    )
    return body + "\npaper: ~400 instructions/iteration, small pre-fork regions"


# ---------------------------------------------------------------------------
# Figure 18: SPT loop misspeculation ratio and loop speedup.
# ---------------------------------------------------------------------------


def figure18_rows(config_name: str = "best"):
    rows = []
    misspecs = []
    speedups = []
    for run in evaluate_suite(config_name):
        for lr in run.loops:
            rows.append(
                (
                    f"{run.name}:{lr.header}",
                    lr.stats.misspeculation_ratio,
                    lr.stats.loop_speedup,
                )
            )
            misspecs.append(lr.stats.misspeculation_ratio)
            speedups.append(lr.stats.loop_speedup)
    rows.append(
        ("average", arithmetic_mean(misspecs), arithmetic_mean(speedups))
    )
    return rows


def figure18_text(config_name: str = "best") -> str:
    body = format_table(
        ["SPT loop", "misspec ratio", "loop speedup"],
        figure18_rows(config_name),
        title=f"Figure 18: SPT loop performance ({config_name})",
    )
    return body + "\npaper: ~3% average misspeculation, ~26% average loop speedup"


# ---------------------------------------------------------------------------
# Figure 19: estimated misspeculation cost vs. measured re-execution ratio.
# ---------------------------------------------------------------------------


def figure19_points(config_name: str = "best") -> List[Tuple[str, float, float]]:
    points = []
    for run in evaluate_suite(config_name):
        for lr in run.loops:
            points.append(
                (
                    f"{run.name}:{lr.header}",
                    lr.estimated_cost_ratio,
                    lr.stats.reexecution_ratio,
                )
            )
    return points


def figure19_correlation(config_name: str = "best") -> float:
    """Pearson correlation between estimate and measurement."""
    points = figure19_points(config_name)
    xs = [p[1] for p in points]
    ys = [p[2] for p in points]
    n = len(points)
    if n < 2:
        return 0.0
    mx, my = sum(xs) / n, sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx <= 0 or vy <= 0:
        return 0.0
    return cov / (vx**0.5 * vy**0.5)


def figure19_text(config_name: str = "best") -> str:
    body = format_table(
        ["SPT loop", "estimated cost ratio", "measured re-exec ratio"],
        figure19_points(config_name),
        title=f"Figure 19: estimated cost vs. actual re-execution ({config_name})",
    )
    corr = figure19_correlation(config_name)
    return (
        body
        + f"\nPearson correlation: {corr:.3f}"
        + "\npaper: well-correlated; estimates conservative (above measurement)"
    )
