"""Terminal bar charts for the figure reproductions.

The paper presents Figures 14-18 as bar charts; these helpers render
the same series as unicode bars so `repro report` output reads like the
figures, not just their data tables.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, scale: float, width: int) -> str:
    if scale <= 0:
        return ""
    filled = max(0.0, value) / scale * width
    whole = int(filled)
    frac = filled - whole
    bar = "█" * whole
    partial_index = int(frac * (len(_BLOCKS) - 1))
    if partial_index > 0 and whole < width:
        bar += _BLOCKS[partial_index]
    return bar


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    title: str = None,
    width: int = 40,
    fmt: str = "{:.3f}",
    baseline: float = 0.0,
) -> str:
    """One bar per row; values measured from ``baseline`` (e.g. 1.0 for
    speedups so the bar shows the gain)."""
    if not rows:
        return title or ""
    label_width = max(len(label) for label, _ in rows)
    scale = max(value - baseline for _, value in rows)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in rows:
        bar = _bar(value - baseline, scale, width)
        lines.append(
            f"{label.rjust(label_width)} | {bar.ljust(width)} {fmt.format(value)}"
        )
    return "\n".join(lines)


def grouped_bar_chart(
    rows: Sequence[Tuple[str, Sequence[float]]],
    series: Sequence[str],
    title: str = None,
    width: int = 36,
    fmt: str = "{:.3f}",
    baseline: float = 0.0,
) -> str:
    """Grouped bars (one group per row, one bar per series) -- the shape
    of the paper's Figure 14."""
    if not rows:
        return title or ""
    label_width = max(
        [len(label) for label, _ in rows] + [len(name) for name in series]
    )
    scale = max(
        (value - baseline for _, values in rows for value in values),
        default=0.0,
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, values in rows:
        for name, value in zip(series, values):
            bar = _bar(value - baseline, scale, width)
            prefix = label if name == series[0] else ""
            lines.append(
                f"{prefix.rjust(label_width)} {name:>12s} | "
                f"{bar.ljust(width)} {fmt.format(value)}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
