"""Table formatting shared by the benchmark harness and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], title: str = None
) -> str:
    """Render an ASCII table with right-aligned numeric columns."""
    materialized: List[List[str]] = []
    for row in rows:
        materialized.append([_cell(value) for value in row])
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    for row in materialized:
        out.append(line(row))
    return "\n".join(out)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.0f}"
    return str(value)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= max(value, 1e-12)
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0
